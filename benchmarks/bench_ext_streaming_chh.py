"""Extension — streaming CHH accuracy vs memory budget.

The exact CHH recommender of Figures 3/4 keeps full count tables; the CHH
literature's motivation is bounded-memory streams.  This benchmark sweeps
the SpaceSaving context capacity and measures how far the streamed
conditional estimates drift from the exact ones on the strongest rules.
"""

from repro.experiments.extensions import run_streaming_chh_accuracy


def test_streaming_chh_accuracy(benchmark, bench_data):
    rows = benchmark.pedantic(
        run_streaming_chh_accuracy, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nExtension — streaming CHH error vs context capacity")
    print(f"{'capacity':>8} {'mean_abs_err':>12} {'max_abs_err':>11}")
    for row in rows:
        print(
            f"{row['capacity']:>8.0f} {row['mean_abs_error']:>12.4f} "
            f"{row['max_abs_error']:>11.4f}"
        )

    by_capacity = {row["capacity"]: row for row in rows}
    # Error must shrink as the budget grows, and the largest budget must be
    # essentially exact (depth-1 context space is tiny next to it).
    errors = [by_capacity[c]["mean_abs_error"] for c in sorted(by_capacity)]
    assert errors[-1] <= errors[0] + 1e-12
    assert errors[-1] < 0.02
