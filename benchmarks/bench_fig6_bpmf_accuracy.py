"""Figure 6 — BPMF precision/recall/F1 vs recommendation-score threshold.

Paper: for thresholds below ~0.94 the full product set is recommended
regardless of history (precision flat at the base rate, recall ~1); the
curves barely move across [0.90, 0.99] — BPMF carries no ranking signal on
this data.
"""

from repro.experiments.fig56_bpmf import run_bpmf_analysis


def _get_result(bench_data, shared_cache):
    if "bpmf_result" not in shared_cache:
        shared_cache["bpmf_result"] = run_bpmf_analysis(bench_data)
    return shared_cache["bpmf_result"]


def test_fig6_bpmf_threshold_sweep(benchmark, bench_data, shared_cache):
    result = benchmark.pedantic(
        _get_result, args=(bench_data, shared_cache), rounds=1, iterations=1
    )
    rows = result["threshold_rows"]
    print("\nFigure 6 — BPMF accuracy vs score threshold")
    print(f"{'threshold':>9} {'precision':>9} {'recall':>7} {'f1':>7} {'retrieved':>10}")
    for row in rows:
        print(
            f"{row['threshold']:>9.2f} {row['precision']:>9.3f} "
            f"{row['recall']:>7.3f} {row['f1']:>7.3f} {row['retrieved']:>10.0f}"
        )

    by_threshold = {row["threshold"]: row for row in rows}
    # Shape 1: at the low end of the sweep nearly everything is retrieved
    # (recall close to 1) and precision sits at the base rate.
    low = by_threshold[0.9]
    assert low["recall"] > 0.9
    assert low["precision"] < 0.2
    # Shape 2: the low-threshold half of the sweep is essentially flat —
    # the scores do not discriminate.
    recalls = [by_threshold[t]["recall"] for t in (0.9, 0.91, 0.92, 0.93)]
    assert max(recalls) - min(recalls) < 0.1
    # Shape 3: even the best F1 across the sweep stays poor compared to the
    # hidden-layer models' operating points (paper Section 5.2 conclusion).
    import numpy as np

    best_f1 = np.nanmax([row["f1"] for row in rows])
    assert best_f1 < 0.35
