"""Ablation — how much of Table 1's LDA-over-LSTM gap is the training recipe.

The paper's LSTM is trained with the 2016-era TensorFlow PTB recipe
(concatenated stream, truncated BPTT across company boundaries, SGD with a
decaying learning rate, 14 epochs).  Re-training the same architecture with
per-company batching and Adam closes — and can invert — the gap to LDA,
supporting the paper's own hypothesis that the LSTM was limited by its
training budget rather than by the sequence-model idea.
"""

from repro.experiments.ablations import run_lstm_training_ablation
from repro.models.lda import LatentDirichletAllocation


def test_lstm_training_regime(benchmark, bench_data):
    results = benchmark.pedantic(
        run_lstm_training_ablation, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    lda = LatentDirichletAllocation(
        n_topics=4, inference="variational", n_iter=100, seed=0
    ).fit(bench_data.split.train)
    lda_perplexity = lda.perplexity(bench_data.split.test)

    print("\nAblation — LSTM training regime (1 layer x 200 nodes)")
    print(f"  paper recipe (PTB stream + SGD): {results['ptb_sgd_stream']:.2f}")
    print(f"  modern (per-company + Adam):     {results['adam_per_company']:.2f}")
    print(f"  LDA4 reference:                  {lda_perplexity:.2f}")

    # The modern recipe must improve on the paper recipe by a clear margin.
    assert results["adam_per_company"] < results["ptb_sgd_stream"] * 0.95
    # And it closes most of the gap to LDA (ratio to LDA below the paper
    # recipe's ratio).
    assert (
        results["adam_per_company"] / lda_perplexity
        < results["ptb_sgd_stream"] / lda_perplexity
    )
