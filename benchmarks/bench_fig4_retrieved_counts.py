"""Figure 4 — retrieved / correctly retrieved / relevant counts vs phi.

Paper: CHH retrieves far more products than LDA at the same threshold while
finding a similar number of *true* products (hence its precision gap);
counts collapse past phi ~ 0.2 and nothing is recommended past phi = 0.5.

Shares the sliding-window computation with the Figure 3 benchmark through
the session cache; when run in isolation it recomputes the curves.
"""

from repro.experiments.fig34_recommendation import run_recommendation_accuracy


def _get_curves(bench_data, shared_cache):
    if "fig34_curves" not in shared_cache:
        shared_cache["fig34_curves"] = run_recommendation_accuracy(
            bench_data, lstm_hidden=200
        )
    return shared_cache["fig34_curves"]


def test_fig4_retrieved_counts(benchmark, bench_data, shared_cache):
    curves = benchmark.pedantic(
        _get_curves, args=(bench_data, shared_cache), rounds=1, iterations=1
    )
    print("\nFigure 4 — average per-window product counts vs threshold phi")
    lda_name = next(n for n in curves if n.startswith("LDA"))
    print(f"{'phi':>5}  " + "  ".join(f"{n:>18}" for n in (lda_name, "LSTM", "CHH")))
    for phi in curves[lda_name].thresholds:
        cells = []
        for name in (lda_name, "LSTM", "CHH"):
            retrieved = curves[name].retrieved(phi)[0]
            correct = curves[name].correct(phi)[0]
            cells.append(f"{retrieved:>9.0f}/{correct:>7.0f}")
        relevant = curves[lda_name].relevant(phi)[0]
        print(f"{phi:>5.2f}  " + "  ".join(cells) + f"   relevant {relevant:.0f}")

    lda, lstm, chh = curves[lda_name], curves["LSTM"], curves["CHH"]
    # Shape 1: CHH over-retrieves relative to LDA in the operating region.
    assert chh.retrieved(0.1)[0] > lda.retrieved(0.1)[0]
    # Shape 2: ...while finding a comparable number of true products to the
    # LSTM (the paper: "the recall [of] LSTM and CHH is similar").
    chh_correct = chh.correct(0.05)[0]
    lstm_correct = lstm.correct(0.05)[0]
    assert 0.3 < (chh_correct + 1.0) / (lstm_correct + 1.0) < 3.0
    # Shape 3: counts die out at high thresholds.
    for curve in (lda, lstm, chh):
        assert curve.retrieved(0.5)[0] <= curve.retrieved(0.05)[0] * 0.05 + 10
    # Shape 4: at phi = 0 every unowned product is retrieved, so retrieved
    # counts are maximal and equal across models.
    assert lda.retrieved(0.0)[0] == chh.retrieved(0.0)[0]
