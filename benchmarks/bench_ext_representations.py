"""Extension — the representation families the paper discusses but skips.

Sections 3.4/3.5 consider word2vec-with-Fisher-kernel aggregation and
LSI-family topic models as alternatives to LDA, without evaluating them.
This benchmark completes the comparison on the Figure-7-style clustering
task: silhouette quality plus purity against the true latent profiles.
"""

from repro.experiments.extensions import run_representation_families


def test_representation_families(benchmark, bench_data):
    results = benchmark.pedantic(
        run_representation_families, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nExtension — representation families (silhouette / profile purity)")
    for name, metrics in sorted(
        results.items(), key=lambda kv: -kv[1]["silhouette"]
    ):
        print(
            f"  {name:<8} silhouette {metrics['silhouette']:.3f}  "
            f"purity {metrics['profile_purity']:.3f}"
        )

    # The paper's choice must hold against the unevaluated alternatives:
    # LDA features cluster better than raw, TF-IDF, LSI and Fisher vectors.
    lda = results["lda"]
    assert lda["silhouette"] == max(m["silhouette"] for m in results.values())
    assert lda["profile_purity"] >= results["raw"]["profile_purity"] - 0.02
    assert lda["profile_purity"] > 0.8
    # Every learned representation must beat raw binary on silhouette.
    assert results["lsi"]["silhouette"] > results["raw"]["silhouette"]
