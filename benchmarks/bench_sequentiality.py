"""In-text result — binomial sequentiality of the product series.

Paper: "69% of the bigrams and 43% of the trigrams have frequencies that
are statistically significantly higher than in the case of independent
identically distributed products."  The test's significant fraction grows
with corpus size (at 860k companies tiny deviations become significant), so
the benchmark asserts the qualitative claim — a substantial share of
n-grams rejects the i.i.d. hypothesis — rather than the exact fractions.
"""

from repro.experiments.sequentiality import PAPER_FRACTIONS, run_sequentiality


def test_sequentiality_binomial_test(benchmark, bench_data):
    reports = benchmark.pedantic(
        run_sequentiality, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nBinomial sequentiality test (Section 5)")
    print(f"{'order':>5} {'significant':>11} {'distinct':>8} {'fraction':>8} {'paper':>6}")
    for order, report in reports.items():
        print(
            f"{order:>5} {report.n_significant:>11} {report.n_distinct:>8} "
            f"{report.significant_fraction:>8.2f} {PAPER_FRACTIONS[order]:>6.2f}"
        )

    # Shape: a substantial fraction of both bigrams and trigrams deviates
    # from i.i.d. — far more than the 5% false-positive rate of the test.
    assert reports[2].significant_fraction > 0.15
    assert reports[3].significant_fraction > 0.15
    assert reports[2].n_distinct > 100
