"""Extension — top-k ranking evaluation of the recommenders.

The paper evaluates thresholded recommendations; production recommenders
serve ranked top-k lists.  This benchmark scores LDA, CHH, the LSTM and the
random baseline with precision@5 / recall@5 / MRR / nDCG@5 against the
post-2013 ground truth, confirming the paper's model choice under the
modern metric set as well.
"""

from repro.models.chh import ConditionalHeavyHitters
from repro.models.lda import LatentDirichletAllocation
from repro.models.lstm import LSTMModel
from repro.recommend.baselines import RandomRecommender
from repro.recommend.ranking import evaluate_ranking


def test_ranking_metrics(benchmark, bench_data):
    corpus = bench_data.corpus
    factories = {
        "LDA3": lambda: LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=80, seed=0
        ),
        "CHH": lambda: ConditionalHeavyHitters(depth=2),
        "LSTM": lambda: LSTMModel(hidden=200, n_layers=1, n_epochs=10, seed=0),
        "random": lambda: RandomRecommender(),
    }

    def run_all():
        return {
            name: evaluate_ranking(corpus, factory, k=5)
            for name, factory in factories.items()
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nExtension — top-5 ranking metrics (cutoff 2013, horizon 2016)")
    print(f"{'model':<8} {'P@5':>6} {'R@5':>6} {'MRR':>6} {'nDCG@5':>7}")
    for name, report in reports.items():
        print(
            f"{name:<8} {report.precision:>6.3f} {report.recall:>6.3f} "
            f"{report.mrr:>6.3f} {report.ndcg:>7.3f}"
        )

    # LDA must beat the random baseline decisively on every metric and stay
    # competitive with (or ahead of) the sequence recommenders.
    lda, random = reports["LDA3"], reports["random"]
    assert lda.precision > 2 * random.precision
    assert lda.ndcg > 2.5 * random.ndcg
    best_ndcg = max(r.ndcg for r in reports.values())
    assert lda.ndcg >= best_ndcg - 0.08
