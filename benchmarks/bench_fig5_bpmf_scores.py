"""Figure 5 — boxplot of BPMF recommendation scores.

Paper: the whole distribution sits in [0.9, 1.0] — BPMF trained on the
dense positives-only ranking matrix produces indiscriminately high scores.
"""

from repro.experiments.fig56_bpmf import run_bpmf_analysis


def test_fig5_bpmf_score_distribution(benchmark, bench_data, shared_cache):
    result = benchmark.pedantic(
        run_bpmf_analysis, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    shared_cache["bpmf_result"] = result
    quantiles = result["score_quantiles"]
    print("\nFigure 5 — BPMF recommendation score distribution")
    for key, value in quantiles.items():
        print(f"  {key:>12}: {value:.4f}")

    # Shape: the box (q1..q3) lies inside [0.9, 1.0] and the bulk of all
    # scores is above 0.9, reproducing the paper's degenerate boxplot.
    assert quantiles["q1"] >= 0.9
    assert quantiles["median"] >= 0.95
    assert quantiles["q3"] >= 0.97
    assert quantiles["frac_ge_0.9"] > 0.85
