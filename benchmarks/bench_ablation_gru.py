"""Ablation — GRU vs LSTM cells.

The paper's related work cites the GRU as "a simpler version of LSTMs" that
does "not outperform LSTM in general" (Greff et al.).  The benchmark trains
both cell types at the same grid point and budget.
"""

from repro.experiments.ablations import run_gru_ablation


def test_gru_vs_lstm(benchmark, bench_data):
    results = benchmark.pedantic(
        run_gru_ablation, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nAblation — GRU vs LSTM test perplexity (1 layer x 200 nodes)")
    for cell, perplexity in results.items():
        print(f"  {cell:<6} {perplexity:.2f}")

    # Both cells must train to a sane band; the two architectures should
    # land in the same neighbourhood (neither dominating by a wide margin).
    assert 1.0 < results["lstm"] < 38.0
    assert 1.0 < results["gru"] < 38.0
    ratio = results["gru"] / results["lstm"]
    assert 0.6 < ratio < 1.7
