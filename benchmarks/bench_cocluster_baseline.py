"""Section 3.1 — the co-clustering baseline the paper abandoned.

Paper: co-clustering the raw company-product matrix gave no meaningful
co-clusters (only a popular-products block), which motivated LDA features.
On the synthetic corpus a correct spectral co-clustering recovers more
structure than the paper's attempts did on real data, so the robust form of
the comparison is: k-means on LDA features aligns with the true latent
profiles at least as well as raw-matrix co-clustering.
"""

from repro.experiments.cocluster_baseline import run_cocluster_baseline


def test_cocluster_baseline(benchmark, bench_data):
    result = benchmark.pedantic(
        run_cocluster_baseline, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nSection 3.1 — spectral co-clustering on the raw matrix")
    for summary in result["summaries"]:
        print(
            f"  cluster {summary['cluster']:.0f}: {summary['n_rows']:.0f} x "
            f"{summary['n_cols']:.0f}, density {summary['density']:.3f}"
        )
    print(f"  densest-cluster overlap with popular products: {result['popular_overlap']:.2f}")
    print(f"  raw co-clustering profile purity:              {result['profile_purity']:.2f}")
    print(f"  k-means on LDA features profile purity:        {result['lda_feature_purity']:.2f}")

    # Shape: LDA features match or beat raw co-clustering on profile purity.
    assert result["lda_feature_purity"] >= result["profile_purity"] - 0.02
    assert result["lda_feature_purity"] > 0.8
