"""Columnar corpus gate: build/stream throughput and bounded-memory runs.

The data-layer counterpart of the serve gates: builds an on-disk columnar
corpus at scale, then proves the memmap-backed path holds its contract
end to end:

* **build determinism** — two same-seed builds produce byte-identical
  manifest fingerprints, and a single-chunk build's fingerprint matches
  the in-memory simulator exactly;
* **stream throughput** — full passes over ``iter_matrix_chunks`` and
  ``sequences()`` clear conservative rows/s floors (recorded as
  ``bench.corpus.*`` gauges in ``BENCH_METRICS.json``);
* **bounded memory** — ``repro table1 --corpus-dir`` (unigram/ngram/lda
  rows) and the serve bootstrap each complete in a subprocess whose peak
  RSS stays under 2 GB, at 1M companies in the full run.

``REPRO_BENCH_SMOKE=1`` shrinks the corpus to CI scale (20k companies);
the RSS ceiling is never relaxed.  Run under pytest along with the other
benchmarks, or directly::

    REPRO_BENCH_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/bench_corpus.py -q
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.data.columnar import manifest_fingerprint, open_corpus, simulate_to_columnar
from repro.experiments import make_experiment_data
from repro.obs import metrics as obs_metrics
from repro.runtime import fingerprint_corpus

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Corpus scale for the build/stream/memory gates.  The paper's corpus is
#: 860k companies; the full bench rounds up to 1M.
CORPUS_COMPANIES = 20_000 if SMOKE else 1_000_000
CORPUS_SEED = 7
CHUNK_SIZE = 10_000 if SMOKE else 50_000

#: Peak-RSS ceiling for the end-to-end subprocess gates, in MiB.  This is
#: the tentpole claim — 1M companies, table1 and serve bootstrap, < 2 GB —
#: and smoke mode keeps the same ceiling rather than a proportional one.
RSS_LIMIT_MIB = 2048

#: Conservative throughput floors (rows per second).  The vectorized
#: streaming path clears these by an order of magnitude on a laptop; the
#: floors only catch catastrophic regressions (per-row Python loops).
BUILD_FLOOR_ROWS_S = 500.0
STREAM_FLOOR_ROWS_S = 5_000.0

_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Wrapper that runs a child command and reports the child's peak RSS as a
#: JSON line.  ``RUSAGE_CHILDREN`` inside the wrapper covers exactly its
#: own children, so other subprocesses of the bench session cannot leak in.
_RSS_WRAPPER = """\
import json, resource, subprocess, sys
code = subprocess.call(sys.argv[1:])
usage = resource.getrusage(resource.RUSAGE_CHILDREN)
print(json.dumps({"code": code, "peak_kb": usage.ru_maxrss}))
"""


def _run_with_peak_rss(command: list[str]) -> dict:
    """Run ``command`` in a subprocess; return its exit code and peak RSS."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (_SRC, env.get("PYTHONPATH")) if part
    )
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_WRAPPER, *command],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, (proc.returncode, proc.stdout[-2000:], proc.stderr[-2000:])
    report = json.loads(proc.stdout.strip().splitlines()[-1])
    report["peak_mib"] = report["peak_kb"] / 1024.0
    report["stdout"] = proc.stdout
    return report


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """Build the bench corpus once, recording build throughput gauges."""
    target = tmp_path_factory.mktemp("columnar") / "corpus"
    started = time.perf_counter()
    manifest = simulate_to_columnar(
        str(target),
        n_companies=CORPUS_COMPANIES,
        seed=CORPUS_SEED,
        chunk_size=CHUNK_SIZE,
    )
    elapsed = time.perf_counter() - started
    rate = manifest["n_companies"] / elapsed
    registry = obs_metrics.get_registry()
    registry.gauge("bench.corpus.build.companies").set(float(manifest["n_companies"]))
    registry.gauge("bench.corpus.build.wall_s").set(round(elapsed, 3))
    registry.gauge("bench.corpus.build.rows_per_s").set(round(rate, 1))
    assert rate >= BUILD_FLOOR_ROWS_S, (
        f"corpus build too slow: {rate:,.0f} rows/s < floor {BUILD_FLOOR_ROWS_S}"
    )
    return str(target)


def test_build_fingerprint_stability(tmp_path):
    """Two same-seed builds fingerprint identically; single-chunk builds
    match the in-memory simulator bit for bit."""
    scale = min(CORPUS_COMPANIES, 5_000)
    first, second = tmp_path / "a", tmp_path / "b"
    simulate_to_columnar(str(first), n_companies=scale, seed=11, chunk_size=1_000)
    simulate_to_columnar(str(second), n_companies=scale, seed=11, chunk_size=1_000)
    assert manifest_fingerprint(first) == manifest_fingerprint(second)

    single = tmp_path / "single"
    simulate_to_columnar(str(single), n_companies=1_000, seed=11, chunk_size=1_000)
    in_memory = make_experiment_data(1_000, seed=11).corpus
    assert manifest_fingerprint(single) == fingerprint_corpus(in_memory)


def test_stream_throughput(corpus_dir):
    """Full matrix-chunk and sequence passes clear the rows/s floors."""
    corpus = open_corpus(corpus_dir)
    registry = obs_metrics.get_registry()

    started = time.perf_counter()
    rows = tokens = 0
    for offset, chunk in corpus.iter_matrix_chunks(chunk_size=16_384):
        rows += chunk.shape[0]
        tokens += int(chunk.sum())
    matrix_elapsed = time.perf_counter() - started
    assert rows == corpus.n_companies
    matrix_rate = rows / matrix_elapsed
    registry.gauge("bench.corpus.stream.matrix_rows_per_s").set(round(matrix_rate, 1))

    started = time.perf_counter()
    n_tokens = 0
    for sequence in corpus.sequences():
        n_tokens += len(sequence)
    seq_elapsed = time.perf_counter() - started
    seq_rate = corpus.n_companies / seq_elapsed
    registry.gauge("bench.corpus.stream.sequence_rows_per_s").set(round(seq_rate, 1))
    registry.gauge("bench.corpus.stream.tokens").set(float(n_tokens))

    assert matrix_rate >= STREAM_FLOOR_ROWS_S, (
        f"matrix streaming too slow: {matrix_rate:,.0f} rows/s"
    )
    assert seq_rate >= STREAM_FLOOR_ROWS_S, (
        f"sequence streaming too slow: {seq_rate:,.0f} rows/s"
    )


def test_table1_memory_gate(corpus_dir):
    """`repro table1 --corpus-dir` end to end under the 2 GB RSS ceiling.

    The LSTM row is excluded (``--methods``): its training cost scales
    with epochs × corpus and is gated by its own benchmark; the memory
    claim concerns the data path, which unigram/ngram/lda already walk in
    full (binary matrices, sequence scans, perplexity passes).
    """
    started = time.perf_counter()
    report = _run_with_peak_rss(
        [
            sys.executable,
            "-m",
            "repro",
            "table1",
            "--corpus-dir",
            corpus_dir,
            "--methods",
            "unigram,ngram,lda",
        ]
    )
    elapsed = time.perf_counter() - started
    registry = obs_metrics.get_registry()
    registry.gauge("bench.corpus.table1.peak_mib").set(round(report["peak_mib"], 1))
    registry.gauge("bench.corpus.table1.wall_s").set(round(elapsed, 3))
    assert report["peak_mib"] < RSS_LIMIT_MIB, (
        f"table1 --corpus-dir peak RSS {report['peak_mib']:.0f} MiB "
        f">= {RSS_LIMIT_MIB} MiB"
    )
    assert "unigram" in report["stdout"]


def test_serve_bootstrap_memory_gate(corpus_dir):
    """Serve bootstrap from the published corpus under the RSS ceiling."""
    bootstrap = (
        "from repro.serve import build_demo_service\n"
        f"service = build_demo_service(corpus_dir={corpus_dir!r})\n"
        "response = service.handle('GET', '/readyz', b'')\n"
        "assert response.status == 200, response.status\n"
        "print('bootstrap-ok', service.corpus.n_companies)\n"
    )
    started = time.perf_counter()
    report = _run_with_peak_rss([sys.executable, "-c", bootstrap])
    elapsed = time.perf_counter() - started
    registry = obs_metrics.get_registry()
    registry.gauge("bench.corpus.serve.peak_mib").set(round(report["peak_mib"], 1))
    registry.gauge("bench.corpus.serve.wall_s").set(round(elapsed, 3))
    assert report["peak_mib"] < RSS_LIMIT_MIB, (
        f"serve bootstrap peak RSS {report['peak_mib']:.0f} MiB "
        f">= {RSS_LIMIT_MIB} MiB"
    )
    assert "bootstrap-ok" in report["stdout"]
