"""Kernel-level perf claims of the numpy neural substrate.

Three claims from the fused-kernel PR, each timed with plain
``time.perf_counter`` (no pytest-benchmark — the CI smoke job runs this
file with only numpy/scipy/pytest installed):

* **Fused float32 training**: one time-fused input GEMM per layer plus
  preallocated BPTT workspaces train a 1300-node LSTM epoch >= 3x faster
  than the historical per-step float64 recurrence, with test perplexity
  within 1% on the same seed (the dropout rng stream is shared across
  dtypes).
* **Length-bucketed scoring**: scoring ragged recommendation histories in
  length order pads each chunk to its own maximum, >= 2x faster than
  caller-order padding on the sliding-window prefix workload.
* **Batch simulator kernel**: the array-wise universe generator is >= 5x
  faster than the per-company loop at 100k companies (the scale band where
  ``generate`` picks it automatically).

``REPRO_BENCH_SMOKE=1`` shrinks every configuration to CI size and relaxes
the ratio asserts to sanity checks; the claims above are only asserted in
full runs.  All timings land in the ``BENCH_METRICS.json`` artifact as
``bench.nn.*`` gauges.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig
from repro.experiments import make_experiment_data
from repro.models.lstm import LSTMModel
from repro.obs import metrics, trace

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: (corpus size, hidden nodes) per mode; full mode matches the grid's
#: largest useful layer width where the float64 working set leaves cache.
N_COMPANIES = 150 if SMOKE else 400
HIDDEN = 64 if SMOKE else 1300
SCORING_HIDDEN = 64 if SMOKE else 650
SIM_COMPANIES = 3_000 if SMOKE else 100_000


@pytest.fixture(scope="module")
def kernel_data():
    """A small corpus matching the kernel-timing methodology (seed 7)."""
    return make_experiment_data(N_COMPANIES, seed=7)


def _fit_epoch_seconds(label: str, model: LSTMModel, corpus) -> float:
    """Fit ``model`` and return its mean per-epoch wall seconds."""
    with trace.span(f"bench.nn.fit.{label}") as span:
        model.fit(corpus)
    fit_span = next(c for c in span.children if c.name == "model.lstm.fit")
    epoch = next(c for c in fit_span.children if c.name == "model.lstm.epoch")
    return epoch.wall / epoch.n_calls


def test_fused_float32_epoch_throughput(kernel_data):
    split = kernel_data.split
    kwargs = dict(hidden=HIDDEN, n_layers=1, n_epochs=2, seed=0)
    # Warm-up: first-touch BLAS/allocator costs stay out of the timings.
    LSTMModel(hidden=HIDDEN, n_layers=1, n_epochs=1, seed=0).fit(split.train)

    fused = LSTMModel(dtype="float32", kernel="fused", **kwargs)
    fused_s = _fit_epoch_seconds("fused_f32", fused, split.train)
    fused_ppl = fused.perplexity(split.test)

    reference = LSTMModel(dtype="float64", kernel="reference", **kwargs)
    reference_s = _fit_epoch_seconds("reference_f64", reference, split.train)
    reference_ppl = reference.perplexity(split.test)

    speedup = reference_s / fused_s
    rel_ppl = abs(fused_ppl - reference_ppl) / reference_ppl
    metrics.set_gauge("bench.nn.epoch_fused_f32_s", fused_s)
    metrics.set_gauge("bench.nn.epoch_reference_f64_s", reference_s)
    metrics.set_gauge("bench.nn.epoch_speedup", speedup)
    print(f"\nLSTM epoch, hidden={HIDDEN}, {N_COMPANIES} companies")
    print(f"  reference float64: {reference_s:7.3f} s/epoch  ppl {reference_ppl:.4f}")
    print(f"  fused float32:     {fused_s:7.3f} s/epoch  ppl {fused_ppl:.4f}")
    print(f"  speedup: {speedup:.2f}x  ppl drift {rel_ppl:.4%}")

    assert rel_ppl < (0.05 if SMOKE else 0.01)
    assert speedup >= (0.7 if SMOKE else 3.0)


def test_bucketed_scoring_throughput(kernel_data):
    split = kernel_data.split
    kwargs = dict(
        hidden=SCORING_HIDDEN, n_epochs=1, seed=0, dtype="float32", batch_size=128
    )
    bucketed = LSTMModel(bucketed=True, **kwargs).fit(split.train)
    padded = LSTMModel(bucketed=False, **kwargs)
    # Scoring only: share the fitted network instead of refitting.
    padded._network = bucketed.network
    padded._vocab_size = bucketed._vocab_size

    # The sliding-window workload: every proper prefix of every test
    # sequence — many short histories, a ragged long tail.
    repeats = 2 if SMOKE else 4
    histories = [
        seq[:k] for seq in split.test.sequences() for k in range(len(seq))
    ] * repeats

    def best_of(model: LSTMModel, reps: int = 3):
        model.batch_next_product_proba(histories[:64])  # warm
        best, result = np.inf, None
        for __ in range(reps):
            start = time.perf_counter()
            result = model.batch_next_product_proba(histories)
            best = min(best, time.perf_counter() - start)
        return best, result

    bucketed_s, scores_b = best_of(bucketed)
    padded_s, scores_p = best_of(padded)
    speedup = padded_s / bucketed_s
    metrics.set_gauge("bench.nn.scoring_bucketed_s", bucketed_s)
    metrics.set_gauge("bench.nn.scoring_padded_s", padded_s)
    metrics.set_gauge("bench.nn.scoring_speedup", speedup)
    print(f"\nBatch scoring, {len(histories)} prefix histories, "
          f"hidden={SCORING_HIDDEN}")
    print(f"  caller-order padding: {padded_s:7.3f} s")
    print(f"  length-bucketed:      {bucketed_s:7.3f} s")
    print(f"  speedup: {speedup:.2f}x")

    np.testing.assert_allclose(scores_b, scores_p, rtol=1e-4, atol=1e-6)
    assert speedup >= (0.7 if SMOKE else 2.0)


def test_simulator_batch_kernel():
    simulator = InstallBaseSimulator(SimulatorConfig(n_companies=SIM_COMPANIES))

    def timed(method: str):
        start = time.perf_counter()
        universe = simulator.generate(seed=7, method=method)
        return time.perf_counter() - start, universe

    batch_s, batch_universe = timed("batch")
    loop_s, loop_universe = timed("loop")
    speedup = loop_s / batch_s
    metrics.set_gauge("bench.nn.simulator_batch_s", batch_s)
    metrics.set_gauge("bench.nn.simulator_loop_s", loop_s)
    metrics.set_gauge("bench.nn.simulator_speedup", speedup)
    print(f"\nSimulator, {SIM_COMPANIES} companies")
    print(f"  per-company loop: {loop_s:7.2f} s")
    print(f"  batch kernel:     {batch_s:7.2f} s")
    print(f"  speedup: {speedup:.1f}x")

    assert len(batch_universe.companies) == len(loop_universe.companies)
    mean_loop = np.mean([len(c) for c in loop_universe.companies])
    mean_batch = np.mean([len(c) for c in batch_universe.companies])
    assert abs(mean_loop - mean_batch) / mean_loop < 0.05
    assert speedup >= (1.2 if SMOKE else 5.0)
