"""Figure 3 — recall and F1 (with 95% CIs) vs threshold phi.

Paper: LDA3's recall is consistently the highest for phi <= 0.2 and its F1
leads over a wide range; LSTM and CHH sit below; the random baseline
retrieves everything only below 1/38.  Thirteen 12-month windows sliding by
two months from January 2013.
"""

from repro.experiments.fig34_recommendation import (
    format_curves,
    run_recommendation_accuracy,
)


def test_fig3_recall_f1_curves(benchmark, bench_data, shared_cache):
    curves = benchmark.pedantic(
        run_recommendation_accuracy,
        kwargs={"data": bench_data, "lstm_hidden": 200},
        rounds=1,
        iterations=1,
    )
    shared_cache["fig34_curves"] = curves
    print("\nFigure 3 — recall / F1 vs threshold phi")
    print(format_curves(curves))

    lda_name = next(n for n in curves if n.startswith("LDA"))
    lda, lstm, chh = curves[lda_name], curves["LSTM"], curves["CHH"]

    # Shape 1: LDA leads on F1 in the operating region and its recall is
    # at worst within noise of the sequence models (the paper's Figure 3
    # shows LDA recall on top; on the synthetic corpus the LSTM recall can
    # tie within a few points while LDA keeps the F1/precision lead).
    # The paper says LDA's F1 is higher "for a large range of phi", not at
    # every grid point; we require a strict lead at the operating threshold
    # and near-parity at the loosest one.
    assert lda.f1(0.1)[0] > lstm.f1(0.1)[0]
    assert lda.f1(0.05)[0] >= lstm.f1(0.05)[0] - 0.02
    for phi in (0.05, 0.1):
        assert lda.f1(phi)[0] > chh.f1(phi)[0]
        assert lda.recall(phi)[0] >= lstm.recall(phi)[0] - 0.07
        assert lda.recall(phi)[0] >= chh.recall(phi)[0] - 0.05
    # LDA precision strictly beats CHH (the paper's false-positive story).
    assert lda.precision(0.1)[0] > chh.precision(0.1)[0]
    # Shape 2: the random baseline has full recall only below 1/38.
    random = curves["random"]
    assert random.recall(0.0)[0] == 1.0
    assert random.recall(0.05)[0] == 0.0
    # Shape 3: recall decays to zero at high thresholds for every method.
    for curve in (lda, lstm, chh):
        assert curve.recall(0.5)[0] <= 0.05
    # Shape 4: accuracies are far above the random base rate (1/38 ~ 0.026).
    assert lda.f1(0.1)[0] > 0.15
