"""Figures 8 and 9 — t-SNE projections of LDA3/LDA4 product embeddings.

Paper: hardware categories ('server_HW', 'storage_HW', 'HW_other') land
close together in the 2-D projection, and so do software/commerce
categories — LDA captures the semantic proximity of products.  The
benchmark quantifies "close together" as the ratio of within-group to
global mean pairwise distance (< 1 means co-located).
"""

from repro.experiments.fig89_tsne import run_tsne_projection


def test_fig8_fig9_product_projections(benchmark, bench_data):
    def run_both():
        return {
            3: run_tsne_projection(bench_data, n_topics=3),
            4: run_tsne_projection(bench_data, n_topics=4),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for n_topics, result in results.items():
        figure = "Figure 8" if n_topics == 3 else "Figure 9"
        print(f"\n{figure} — t-SNE of LDA{n_topics} product embeddings")
        for category, (x, y) in sorted(result["coordinates"].items()):
            print(f"  {category:<26} {x:>8.2f} {y:>8.2f}")
        print(f"  hardware group ratio:     {result['hardware_ratio']:.3f}")
        print(f"  software group ratio:     {result['software_ratio']:.3f}")
        print(f"  profile-core group ratio: {result['profile_core_ratio']:.3f}")

        # Shape: the products that construct each latent profile cluster
        # tightly in the projection (the paper's central observation for
        # these figures), for both the LDA3 and the LDA4 embedding.
        assert result["profile_core_ratio"] < 0.8
