"""Ablation — sliding-window span r (the paper's declared future work).

"As a future work we will study the influence of the sliding window size on
the recommendation accuracy."  The benchmark sweeps r in {6, 12, 18, 24}
months for the LDA recommender.
"""

from repro.experiments.ablations import run_window_size_ablation


def test_window_size_ablation(benchmark, bench_data):
    rows = benchmark.pedantic(
        run_window_size_ablation, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nAblation — LDA recommendation accuracy vs window span r")
    print(f"{'months':>6} {'windows':>7} {'recall':>7} {'f1':>7}")
    for row in rows:
        print(
            f"{row['window_months']:>6.0f} {row['n_windows']:>7.0f} "
            f"{row['recall']:>7.3f} {row['f1']:>7.3f}"
        )

    by_months = {row["window_months"]: row for row in rows}
    # Longer windows accumulate more ground-truth products, so recall at a
    # fixed threshold should not degrade dramatically with r; the marketing
    # takeaway is that the recommender is usable across the 6-24 month span
    # of interest.
    assert all(row["recall"] > 0.05 for row in rows)
    assert by_months[24.0]["recall"] >= by_months[6.0]["recall"] * 0.5
