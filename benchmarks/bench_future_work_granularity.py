"""Future work — modelling at the product-type (leaf) level.

The paper's closing direction: start "from lower levels of product
descriptions".  The benchmark generates the universe at the catalog's leaf
granularity (76 product types instead of 38 categories), fits LDA at both
levels, and compares the learned company structure.
"""

from repro.experiments.future_work import run_type_granularity_study


def test_type_granularity_study(benchmark):
    results = benchmark.pedantic(
        run_type_granularity_study, kwargs={"n_companies": 800}, rounds=1, iterations=1
    )
    print("\nFuture work — LDA at product-type vs category granularity")
    print(f"{'level':<13} {'vocab':>5} {'perplexity':>11} {'purity':>7}")
    for level, metrics in results.items():
        print(
            f"{level:<13} {metrics['vocab_size']:>5.0f} "
            f"{metrics['test_perplexity']:>11.2f} {metrics['profile_purity']:>7.3f}"
        )

    type_level = results["product_type"]
    category_level = results["category"]
    # The leaf vocabulary doubles the token space, so raw perplexity rises...
    assert type_level["vocab_size"] == 2 * category_level["vocab_size"]
    assert type_level["test_perplexity"] > category_level["test_perplexity"]
    # ...but the latent company structure survives at the finer level: the
    # profiles are recovered with comparable purity from leaf-level data.
    assert type_level["profile_purity"] > 0.8
    assert abs(type_level["profile_purity"] - category_level["profile_purity"]) < 0.1
