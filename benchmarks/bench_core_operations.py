"""Micro-benchmarks of the library's hot paths.

Unlike the figure benchmarks (one-shot experiment timings), these run the
classic pytest-benchmark loop so performance regressions in the core
numerical routines are visible across commits.
"""

import numpy as np

from repro.analysis.kmeans import KMeans
from repro.analysis.silhouette import silhouette_score
from repro.models.lda import LatentDirichletAllocation
from repro.models.ngram import NGramModel
from repro.preprocessing.tfidf import TfidfTransform


def test_bench_corpus_binary_matrix(benchmark, bench_data):
    corpus = bench_data.corpus
    matrix = benchmark(corpus.binary_matrix)
    assert matrix.shape == (corpus.n_companies, 38)


def test_bench_tfidf_transform(benchmark, bench_data):
    matrix = bench_data.corpus.binary_matrix()
    transform = TfidfTransform().fit(matrix)
    out = benchmark(transform.transform, matrix)
    assert out.shape == matrix.shape


def test_bench_lda_variational_fit(benchmark, bench_data):
    train = bench_data.split.train

    def fit():
        return LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=30, seed=0
        ).fit(train)

    model = benchmark.pedantic(fit, rounds=3, iterations=1)
    assert model.is_fitted


def test_bench_lda_fold_in(benchmark, bench_data):
    model = LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=30, seed=0
    ).fit(bench_data.split.train)
    matrix = bench_data.split.test.binary_matrix()
    theta = benchmark(model.infer_theta, matrix)
    assert theta.shape == (matrix.shape[0], 3)


def test_bench_ngram_fit(benchmark, bench_data):
    train = bench_data.split.train
    model = benchmark.pedantic(
        lambda: NGramModel(order=2).fit(train), rounds=3, iterations=1
    )
    assert model.is_fitted


def test_bench_kmeans(benchmark, bench_data):
    features = bench_data.corpus.binary_matrix()
    labels = benchmark.pedantic(
        lambda: KMeans(10, seed=0).fit_predict(features), rounds=3, iterations=1
    )
    assert len(np.unique(labels)) == 10


def test_bench_silhouette(benchmark, bench_data):
    features = bench_data.corpus.binary_matrix()
    labels = KMeans(10, seed=0).fit_predict(features)
    score = benchmark.pedantic(
        lambda: silhouette_score(features, labels, sample_size=800, seed=0),
        rounds=3,
        iterations=1,
    )
    assert -1.0 <= score <= 1.0
