"""Figure 7 — silhouette curves of eight company representations.

Paper: LDA on binary input with 2-4 topics produces the best-separated
company clusters across the cluster-count grid; raw binary vectors are the
worst; TF-IDF improves the raw representation; LDA-on-TF-IDF sits between.
"""

from repro.experiments.fig7_silhouette import mean_by_representation, run_silhouette_curves


def test_fig7_silhouette_curves(benchmark, bench_data):
    rows = benchmark.pedantic(
        run_silhouette_curves, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nFigure 7 — silhouette score per representation and cluster count")
    print(f"{'representation':<14} {'clusters':>8} {'silhouette':>11}")
    for row in rows:
        print(
            f"{row['representation']:<14} {row['n_clusters']:>8.0f} "
            f"{row['silhouette']:>11.3f}"
        )
    means = mean_by_representation(rows)
    print("\nmean silhouette per representation:")
    for name, value in sorted(means.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<14} {value:.3f}")

    # Shape 1: raw binary is the worst representation on average.
    assert means["raw"] == min(means.values())
    # Shape 2: TF-IDF improves on raw binary.
    assert means["raw_tfidf"] > means["raw"]
    # Shape 3: the best LDA-binary representation beats both naive ones and
    # the LDA-on-TF-IDF variants (paper: lda_2/3/4 on top).
    best_lda_binary = max(means[f"lda_{k}"] for k in (2, 3, 4))
    assert best_lda_binary > means["raw_tfidf"]
    assert best_lda_binary > means["raw"]
    assert best_lda_binary >= max(means["tfidf_lda_2"], means["tfidf_lda_4"]) - 0.02
