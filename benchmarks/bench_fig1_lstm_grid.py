"""Figure 1 — LSTM test perplexity across the 12-architecture grid.

Paper: layers in {1,2,3} x nodes in {10,100,200,300}, 14 epochs; best test
perplexity 11.6 at 1 layer x 200 nodes; deeper stacks strictly worse; the
10-node model barely beats the unigram.
"""

from repro.experiments.fig1_lstm_grid import best_point, run_lstm_grid


def test_fig1_lstm_architecture_grid(benchmark, bench_data):
    rows = benchmark.pedantic(
        run_lstm_grid,
        kwargs={"data": bench_data, "n_epochs": 14},
        rounds=1,
        iterations=1,
    )
    print("\nFigure 1 — LSTM test perplexity per architecture")
    print(f"{'layers':>6} {'nodes':>6} {'perplexity':>11} {'params':>9}")
    for row in rows:
        print(
            f"{row['n_layers']:>6.0f} {row['nodes']:>6.0f} "
            f"{row['test_perplexity']:>11.2f} {row['n_parameters']:>9.0f}"
        )

    best = best_point(rows)
    by_key = {(r["n_layers"], r["nodes"]): r["test_perplexity"] for r in rows}

    # Shape 1: the best architecture has a single layer (paper: 1 x 200).
    assert best["n_layers"] == 1
    assert best["nodes"] >= 200
    # Shape 2: at the best node count, deeper is worse.
    nodes = best["nodes"]
    assert by_key[(1, nodes)] < by_key[(2, nodes)] < by_key[(3, nodes)]
    # Shape 3: the 10-node model is far worse than the best model.
    assert by_key[(1, 10)] > best["test_perplexity"] * 1.3
