"""Table 1 — minimum perplexity achieved by each method.

Paper (860k companies):  LDA 8.5 < LSTM 11.6 < n-grams 15.5 < unigram 19.5.
The benchmark regenerates the table on the synthetic corpus and asserts the
ranking (the headline result of the paper).
"""

from repro.experiments.table1 import PAPER_TABLE1, format_table, run_perplexity_table


def test_table1_minimum_perplexities(benchmark, bench_data):
    results = benchmark.pedantic(
        run_perplexity_table,
        kwargs={"data": bench_data, "lstm_hidden": 300},
        rounds=1,
        iterations=1,
    )
    print("\nTable 1 — minimum perplexity per method (measured vs paper)")
    print(format_table(results))

    # The paper's ranking must hold exactly.
    assert results["lda"] < results["lstm"] < results["ngram"] < results["unigram"]
    # And the measured values must stay in a sane band.
    for name, value in results.items():
        assert 1.0 < value < 38.0, (name, value)
    # The relative ordering magnitudes: unigram should be roughly twice the
    # best model, as in the paper (19.5 / 8.5 ~ 2.3; we accept >= 1.4).
    assert results["unigram"] / results["lda"] > 1.4
    assert set(results) == set(PAPER_TABLE1)
