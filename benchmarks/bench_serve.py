"""Load harness for the resilient serving layer (``repro.serve``).

Replays seeded traffic mixes — clean installs, malformed payload bursts,
oversized bodies, unknown vocabulary, bad identifiers — against a live
``ThreadingHTTPServer`` instance, then layers on injected faults (a hanging
model tier, a corrupted staged model, an overload burst) and asserts the
service's core contract end to end:

* **zero HTTP 5xx** on the serving endpoints, under every fault;
* **zero uncaught exceptions** (no ``serve.requests`` series with
  ``outcome="error"``);
* every fault is **accounted for** — sheds match 429s, rejections match
  4xx responses and quarantine entries, tier counters match successes;
* a corrupted staged model is **rejected** while the previous model keeps
  serving bit-identical recommendations;
* readiness flips unready → ready across a hot-swap;
* the ``/metrics`` scrape is **valid Prometheus text** (every ``serve_*``
  family labelled), exemplar request ids **round-trip** into the flight
  recorder via ``/admin/debug``, and a crash burst against the primary
  tier trips the **fast-window SLO burn alert** on ``/slo``;
* request-scoped telemetry costs ≤ 10 % of p50 ``/recommend`` latency
  (the overhead gate, recorded into ``BENCH_METRICS.json``).

Run directly (CI's serve-smoke job does)::

    PYTHONPATH=src python benchmarks/bench_serve.py --inject-faults \
        --json serve-summary.json

or under pytest along with the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import statistics
import tempfile
import threading
import time
import urllib.error
import urllib.request
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.data.duns import DunsNumber
from repro.obs import metrics as obs_metrics
from repro.obs import prom as obs_prom
from repro.obs.top import sum_counters
from repro.runtime import faults
from repro.serve import ServiceConfig, build_demo_service, start_server
from repro.serve.service import RecommendationService

#: Sequence far beyond any synthetic corpus size: valid check digit,
#: guaranteed absent from the similarity index.
_UNKNOWN_DUNS = DunsNumber.from_sequence(99_999_990).value


class _Client:
    """Tiny urllib client that returns (status, body, headers) for any code."""

    def __init__(self, base: str) -> None:
        self.base = base

    def _request(self, req: urllib.request.Request) -> tuple[int, dict, dict]:
        try:
            with urllib.request.urlopen(req, timeout=30.0) as resp:
                return resp.status, json.loads(resp.read() or b"{}"), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                body = json.loads(raw or b"{}")
            except ValueError:
                body = {"raw": raw.decode("utf-8", "replace")}
            return exc.code, body, dict(exc.headers)
        except urllib.error.URLError as exc:
            # A server that answers 413 without draining a huge body closes
            # the connection mid-send; urllib surfaces that as a broken
            # pipe.  Report it as status 0 so the ledger can distinguish a
            # connection-level rejection from an HTTP status.
            return 0, {"error": "connection", "detail": str(exc.reason)}, {}

    def get(self, path: str) -> tuple[int, dict, dict]:
        return self._request(urllib.request.Request(self.base + path, method="GET"))

    def get_raw(self, path: str, accept: str | None = None) -> tuple[int, str, dict]:
        """GET returning the body as text — for non-JSON endpoints."""
        headers = {"Accept": accept} if accept else {}
        req = urllib.request.Request(self.base + path, headers=headers, method="GET")
        try:
            with urllib.request.urlopen(req, timeout=30.0) as resp:
                return resp.status, resp.read().decode("utf-8"), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8", "replace"), dict(exc.headers)

    def post(self, path: str, payload) -> tuple[int, dict, dict]:
        data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
        return self._request(
            urllib.request.Request(
                self.base + path,
                data=data,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
        )


class Ledger:
    """Counts every request the harness sent and every status it got back."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.statuses: Counter[int] = Counter()
        self.kinds: Counter[str] = Counter()
        self.tiers: Counter[str] = Counter()
        self.violations: list[str] = []

    def record(self, kind: str, status: int, body: dict, expect: set[int]) -> None:
        with self.lock:
            self.kinds[kind] += 1
            self.statuses[status] += 1
            if isinstance(body, dict) and "tier" in body:
                self.tiers[body["tier"]] += 1
            if status not in expect:
                self.violations.append(
                    f"{kind}: got {status}, expected one of {sorted(expect)}: {body}"
                )


def _traffic(rng, vocabulary: list[str], known_duns: str, max_history: int):
    """One seeded request: (kind, path, payload, expected statuses)."""
    kind = rng.choice(
        ["valid"] * 6
        + ["oov", "badtype", "oversized", "bad_json", "bad_duns", "huge_k", "unknown_company"]
    )
    if kind == "valid":
        history = rng.sample(vocabulary, rng.randint(1, min(6, len(vocabulary))))
        payload = {"history": history, "top_n": rng.randint(1, 10)}
        return kind, "/recommend", payload, {200}
    if kind == "oov":
        payload = {"history": [vocabulary[0], "not-a-real-category"]}
        return kind, "/recommend", payload, {422}
    if kind == "badtype":
        payload = rng.choice([{"history": "not-a-list"}, {"top_n": 3}, [1, 2, 3]])
        return kind, "/recommend", payload, {422}
    if kind == "oversized":
        history = [vocabulary[i % len(vocabulary)] for i in range(max_history + 5)]
        return kind, "/recommend", {"history": history}, {413}
    if kind == "bad_json":
        return kind, "/recommend", b'{"history": [unterminated', {400}
    if kind == "bad_duns":
        return kind, "/similar", {"duns": "12345", "k": 3}, {422}
    if kind == "huge_k":
        return kind, "/similar", {"duns": known_duns, "k": 10_000}, {200}
    return kind, "/similar", {"duns": _UNKNOWN_DUNS, "k": 3}, {404}


def run_harness(
    *,
    companies: int = 200,
    seed: int = 7,
    requests: int = 60,
    inject: bool = True,
    json_path: str | None = None,
) -> dict:
    """Drive the full fault matrix against a live service; returns the summary."""
    rng = random.Random(seed)
    config = ServiceConfig(
        max_inflight=4,
        default_deadline_ms=250.0,
        breaker_failure_threshold=3,
        breaker_recovery_s=0.5,
        # Compressed SLO windows so the burn-alert phase can drain the
        # earlier phases' traffic with a short sleep instead of an hour.
        slo_fast_window_s=1.0,
        slo_slow_window_s=4.0,
    )
    service = build_demo_service(companies, seed=seed, config=config)
    server, _thread = start_server(service)
    host, port = server.server_address[:2]
    client = _Client(f"http://{host}:{port}")
    ledger = Ledger()
    vocabulary = list(service.corpus.vocabulary)
    known_duns = service.corpus.companies[0].duns.value
    saved_env = os.environ.get("REPRO_FAULTS")
    summary: dict = {"phases": {}}

    def fire(kind, path, payload, expect):
        status, body, _headers = client.post(path, payload)
        ledger.record(kind, status, body, expect)
        return status, body

    try:
        # ---- phase 1: seeded clean + malformed traffic mix ----------------
        for _ in range(requests):
            fire(*_traffic(rng, vocabulary, known_duns, config.max_history))
        status, body, _ = client.get("/healthz")
        ledger.record("healthz", status, body, {200})
        summary["phases"]["mixed_traffic"] = {"requests": requests}

        # ---- phase 2: transport-level oversized body ----------------------
        # The handler answers 413 without reading the 2 MiB body and closes
        # the connection; depending on socket buffering the client sees the
        # 413 or a connection reset (status 0) — both are rejections.
        status, body, _ = client.post("/recommend", b" " * (2 << 20))
        ledger.record("huge_body", status, body, {413, 0})

        # ---- phase 3: hanging model tier under deadline -------------------
        if inject:
            os.environ["REPRO_FAULTS"] = "hang:serve/score/lda:seconds=1.0"
            faults.reset_firing_counts()
            hang_tiers: Counter[str] = Counter()
            for _ in range(6):
                status, body = fire(
                    "hang_lda",
                    "/recommend",
                    {"history": [vocabulary[0]], "deadline_ms": 120},
                    {200},
                )
                if status == 200:
                    hang_tiers[body["tier"]] += 1
                    assert body["degraded"], body
            os.environ.pop("REPRO_FAULTS", None)
            breaker_opened = (
                sum_counters(
                    service.metrics_snapshot()["counters"],
                    "serve.breaker.transitions",
                    state="open",
                    tier="lda",
                )
                >= 1
            )
            # Breaker recovery: after the window passes, a half-open probe
            # succeeds (fault cleared) and the ladder answers from LDA again.
            time.sleep(config.breaker_recovery_s + 0.1)
            recovered = False
            for _ in range(4):
                status, body = fire(
                    "recovery", "/recommend", {"history": [vocabulary[0]]}, {200}
                )
                if status == 200 and body["tier"] == "lda":
                    recovered = True
                    break
            summary["phases"]["hang_fault"] = {
                "answering_tiers": dict(hang_tiers),
                "breaker_opened": breaker_opened,
                "recovered_to_lda": recovered,
            }
            assert breaker_opened, "lda breaker never opened under the hang fault"
            assert recovered, "ladder never recovered to the lda tier"
            assert "lda" not in hang_tiers, hang_tiers

        # ---- phase 4: overload burst → load shedding ----------------------
        if inject:
            os.environ["REPRO_FAULTS"] = "hang:serve/score/lda:seconds=0.3"
            faults.reset_firing_counts()
        burst = 24
        with ThreadPoolExecutor(max_workers=burst) as pool:
            futures = [
                pool.submit(
                    fire,
                    "burst",
                    "/recommend",
                    {"history": [vocabulary[i % len(vocabulary)]], "deadline_ms": 400},
                    {200, 429},
                )
                for i in range(burst)
            ]
            burst_statuses = Counter(f.result()[0] for f in futures)
        os.environ.pop("REPRO_FAULTS", None)
        summary["phases"]["overload_burst"] = {
            "requests": burst,
            "statuses": {str(k): v for k, v in burst_statuses.items()},
        }
        if inject:
            assert burst_statuses.get(429, 0) >= 1, (
                f"no load shedding in a {burst}-wide burst: {burst_statuses}"
            )

        # ---- phase 5: hot-swap — corrupt rejected, clean promoted ---------
        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
            probe = {"history": [vocabulary[0], vocabulary[1]], "top_n": 5}
            _, before = fire("probe", "/recommend", probe, {200})

            corrupt_path = Path(tmp) / "staged-lda.npz"
            service.registry.model("lda").save(corrupt_path)
            if inject:
                os.environ["REPRO_FAULTS"] = "corrupt:serve/stage"
                faults.reset_firing_counts()
                faults.corrupt_artifact(corrupt_path, "serve/stage")
                os.environ.pop("REPRO_FAULTS", None)
            else:
                corrupt_path.write_bytes(b"\x00not a model\x00")
            status, body = fire(
                "hotswap_corrupt",
                "/admin/hotswap",
                {"name": "lda", "path": str(corrupt_path)},
                {409},
            )
            assert body.get("status") == "rejected", body

            _, after = fire("probe", "/recommend", probe, {200})
            bit_identical = (
                before["recommendations"] == after["recommendations"]
                and before["model_versions"] == after["model_versions"]
            )
            assert bit_identical, (before, after)

            good_path = Path(tmp) / "good-lda.npz"
            service.registry.model("lda").save(good_path)

            # Readiness must flip ready → unready → ready across the
            # promotion; a hang on the swap site widens the window so the
            # poller reliably samples the unready phase.
            status, ready_before, _ = client.get("/readyz")
            ledger.record("readyz_before", status, ready_before, {200})
            ready_codes: list[int] = []
            stop = threading.Event()

            def poll_ready() -> None:
                while not stop.is_set():
                    ready_codes.append(client.get("/readyz")[0])
                    time.sleep(0.02)

            poller = threading.Thread(target=poll_ready, daemon=True)
            if inject:
                os.environ["REPRO_FAULTS"] = "hang:serve/swap/lda:seconds=0.4"
                faults.reset_firing_counts()
            poller.start()
            status, body = fire(
                "hotswap_good",
                "/admin/hotswap",
                {"name": "lda", "path": str(good_path)},
                {200},
            )
            os.environ.pop("REPRO_FAULTS", None)
            stop.set()
            poller.join(timeout=2.0)
            assert body.get("status") == "promoted", body
            status, ready_body, _ = client.get("/readyz")
            ledger.record("readyz", status, ready_body, {200})
            summary["phases"]["hotswap"] = {
                "corrupt_rejected": True,
                "bit_identical_after_rejection": bit_identical,
                "promoted_version": body.get("version"),
                "readiness_codes_during_swap": sorted(set(ready_codes)),
                "ready_after": ready_body.get("ready"),
            }
            if inject:
                assert 503 in ready_codes, "readiness never dropped during the swap"
            assert ready_before.get("ready") is True and ready_body.get("ready") is True

        # ---- phase 6: telemetry — strict scrape, exemplars, burn alert ----
        # Default Accept: Prometheus text 0.0.4.  The strict parser also
        # proves no serve.* family is exported unlabelled.
        status, text, headers = client.get_raw("/metrics")
        assert status == 200 and headers["Content-Type"].startswith("text/plain"), (
            status,
            headers,
        )
        scrape = obs_prom.parse(text, require_labels_prefix="serve_")
        for family in ("serve_requests", "serve_latency_ms", "serve_inflight"):
            assert family in scrape["families"], sorted(scrape["families"])

        # OpenMetrics carries exemplars; at least one request id attached
        # to a /recommend latency bucket must resolve in the flight
        # recorder (fast requests may have been evicted by slower ones).
        status, om_text, _ = client.get_raw("/metrics", accept="application/openmetrics-text")
        assert status == 200 and om_text.rstrip().endswith("# EOF"), om_text[-200:]
        exemplar_ids = re.findall(
            r'serve_latency_ms_bucket\{[^}]*endpoint="/recommend"[^}]*\}'
            r'[^#\n]*# \{request_id="([0-9a-f]+)"\}',
            om_text,
        )
        assert exemplar_ids, "no exemplars on the /recommend latency histogram"
        resolved = 0
        for rid in exemplar_ids:
            status, body, _ = client.get(f"/admin/debug?request_id={rid}")
            if status == 200:
                assert body["request_id"] == rid, body
                resolved += 1
        assert resolved >= 1, f"no exemplar id resolved in flight: {exemplar_ids}"

        burn_alerted = None
        burn_rates = None
        if inject:
            # Drain the compressed SLO windows, then burn: a crash fault on
            # the primary tier degrades every answer, so the quality error
            # budget burns at 1/0.05 = 20x — over the fast alert threshold.
            time.sleep(config.slo_slow_window_s + 0.2)
            os.environ["REPRO_FAULTS"] = "crash:serve/score/lda"
            faults.reset_firing_counts()
            for _ in range(20):
                status, body = fire(
                    "burn", "/recommend", {"history": [vocabulary[0]]}, {200}
                )
                if status == 200:
                    assert body["degraded"], body
            os.environ.pop("REPRO_FAULTS", None)
            status, slo_body, _ = client.get("/slo")
            ledger.record("slo", status, slo_body, {200})
            quality = slo_body["objectives"]["quality"]
            assert quality["fast"]["burn_rate"] >= slo_body["burn_threshold"], quality
            assert quality["alerting"], slo_body
            assert "quality" in slo_body["alerts"], slo_body["alerts"]
            assert not slo_body["objectives"]["availability"]["alerting"], slo_body
            burn_alerted = True
            burn_rates = {
                "quality_fast": quality["fast"]["burn_rate"],
                "quality_slow": quality["slow"]["burn_rate"],
                "threshold": slo_body["burn_threshold"],
            }
        summary["phases"]["telemetry"] = {
            "prom_families": len(scrape["families"]),
            "exemplars_on_recommend": len(exemplar_ids),
            "exemplars_resolved_in_flight": resolved,
            "burn_alert_tripped": burn_alerted,
            "burn_rates": burn_rates,
        }
    finally:
        if saved_env is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = saved_env
        server.shutdown()
        server.server_close()

    # ---- accounting: every fault shows up in exactly one counter ----------
    counters = service.metrics_snapshot()["counters"]
    assert not ledger.violations, "\n".join(ledger.violations)
    server_errors = [s for s in ledger.statuses if s >= 500 and s != 503]
    assert not server_errors, f"5xx observed: {dict(ledger.statuses)}"
    assert sum_counters(counters, "serve.requests", outcome="error") == 0, counters
    assert sum_counters(counters, "serve.shed") == ledger.statuses.get(429, 0), counters
    # Transport-level 413s (huge_body) never reach admission; every other
    # 4xx on the serving endpoints is an admission rejection + quarantine.
    rejected_kinds = ("oov", "badtype", "oversized", "bad_json", "bad_duns", "unknown_company")
    rejected_4xx = sum(ledger.kinds.get(kind, 0) for kind in rejected_kinds)
    assert sum_counters(counters, "serve.rejected") == rejected_4xx, (counters, ledger.kinds)
    quarantined = service.quarantine.total
    assert quarantined == rejected_4xx, (quarantined, rejected_4xx)
    tier_total = sum_counters(counters, "serve.tier.answers")
    assert tier_total == sum(ledger.tiers.values()), (counters, ledger.tiers)

    summary["statuses"] = {str(k): v for k, v in sorted(ledger.statuses.items())}
    summary["request_kinds"] = dict(ledger.kinds)
    summary["fallback_tiers"] = dict(ledger.tiers)
    summary["counters"] = {k: v for k, v in sorted(counters.items())}
    summary["quarantined"] = quarantined
    summary["server_5xx"] = 0
    if json_path:
        Path(json_path).write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    return summary


def run_overhead_gate(
    *,
    companies: int = 150,
    seed: int = 7,
    rounds: int = 3,
    per_round: int = 120,
    limit: float = 1.10,
    slack_ms: float = 0.25,
) -> dict:
    """Gate: request-scoped telemetry costs ≤ ``limit`` of p50 latency.

    Builds one serving stack and two service shells over the same fitted
    models — full telemetry (span capture, labelled metrics, SLO counting,
    flight recording) versus ``telemetry=False`` — and compares p50
    ``/recommend`` latency via direct ``handle()`` calls.  Rounds are
    interleaved and the best (minimum) round median is kept on each side,
    which discards scheduler noise; ``slack_ms`` absorbs sub-millisecond
    jitter when the handler itself is only a few ms.  The measurements
    are recorded as ``bench.serve.telemetry.*`` gauges so the benchmark
    session's ``BENCH_METRICS.json`` artifact carries them.
    """
    on = build_demo_service(companies, seed=seed)
    off = RecommendationService(
        corpus=on.corpus,
        registry=on.registry,
        tiers=("lda", "ngram"),
        tool=on.tool,
        config=ServiceConfig(telemetry=False, request_spans=False),
    )
    vocabulary = list(on.corpus.vocabulary)
    rng = random.Random(seed)
    payloads = [
        json.dumps(
            {"history": rng.sample(vocabulary, rng.randint(1, min(4, len(vocabulary))))}
        ).encode()
        for _ in range(32)
    ]

    def p50_ms(service: RecommendationService, n: int) -> float:
        latencies = []
        for i in range(n):
            started = time.perf_counter()
            response = service.handle("POST", "/recommend", payloads[i % len(payloads)])
            latencies.append((time.perf_counter() - started) * 1000.0)
            assert response.status == 200, (response.status, response.body)
        return statistics.median(latencies)

    for service in (on, off):  # warm caches before timing
        p50_ms(service, 30)
    on_medians, off_medians = [], []
    for _ in range(rounds):
        on_medians.append(p50_ms(on, per_round))
        off_medians.append(p50_ms(off, per_round))
    p50_on, p50_off = min(on_medians), min(off_medians)
    ratio = p50_on / p50_off if p50_off > 0 else 1.0
    result = {
        "p50_on_ms": round(p50_on, 4),
        "p50_off_ms": round(p50_off, 4),
        "ratio": round(ratio, 4),
        "limit": limit,
        "requests_per_side": rounds * per_round,
    }
    registry = obs_metrics.get_registry()
    for key in ("p50_on_ms", "p50_off_ms", "ratio"):
        registry.gauge(f"bench.serve.telemetry.{key}").set(result[key])
    assert p50_on <= p50_off * limit + slack_ms, (
        f"telemetry overhead over budget: p50 {p50_on:.3f}ms with telemetry vs "
        f"{p50_off:.3f}ms without (ratio {ratio:.3f}, limit {limit})"
    )
    return result


def test_serve_load_harness():
    """Pytest entry point: the full harness at smoke scale."""
    summary = run_harness(companies=150, requests=30, inject=True)
    assert summary["server_5xx"] == 0
    assert summary["phases"]["hotswap"]["bit_identical_after_rejection"]
    assert summary["phases"]["telemetry"]["burn_alert_tripped"]


def test_serve_telemetry_overhead():
    """Pytest entry point: the p50 telemetry-overhead gate."""
    result = run_overhead_gate()
    assert result["ratio"] <= result["limit"] or result["p50_on_ms"] <= (
        result["p50_off_ms"] * result["limit"] + 0.25
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--companies", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--requests", type=int, default=60, help="mixed-traffic phase size")
    parser.add_argument(
        "--inject-faults",
        action="store_true",
        help="arm the hang / corrupt-model / swap-stall fault phases",
    )
    parser.add_argument("--json", metavar="PATH", default=None, help="write the summary here")
    parser.add_argument(
        "--overhead-gate",
        action="store_true",
        help="also run the p50 telemetry-overhead gate (adds ~30s)",
    )
    args = parser.parse_args(argv)
    summary = run_harness(
        companies=args.companies,
        seed=args.seed,
        requests=args.requests,
        inject=args.inject_faults,
        json_path=args.json,
    )
    if args.overhead_gate:
        summary["telemetry_overhead"] = run_overhead_gate(
            companies=args.companies, seed=args.seed
        )
        if args.json:
            Path(args.json).write_text(
                json.dumps(summary, indent=2) + "\n", encoding="utf-8"
            )
    print(json.dumps(summary, indent=2))
    print("\nserve load harness: all contracts held (0 uncaught, 0 server 5xx)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
