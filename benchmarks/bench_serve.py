"""Load harness for the resilient serving layer (``repro.serve``).

Replays seeded traffic mixes — clean installs, malformed payload bursts,
oversized bodies, unknown vocabulary, bad identifiers — against a live
``ThreadingHTTPServer`` instance, then layers on injected faults (a hanging
model tier, a corrupted staged model, an overload burst) and asserts the
service's core contract end to end:

* **zero HTTP 5xx** on the serving endpoints, under every fault;
* **zero uncaught exceptions** (no ``serve.requests`` series with
  ``outcome="error"``);
* every fault is **accounted for** — sheds match 429s, rejections match
  4xx responses and quarantine entries, tier counters match successes;
* a corrupted staged model is **rejected** while the previous model keeps
  serving bit-identical recommendations;
* readiness flips unready → ready across a hot-swap;
* the ``/metrics`` scrape is **valid Prometheus text** (every ``serve_*``
  family labelled), exemplar request ids **round-trip** into the flight
  recorder via ``/admin/debug``, and a crash burst against the primary
  tier trips the **fast-window SLO burn alert** on ``/slo``;
* request-scoped telemetry costs ≤ 10 % of p50 ``/recommend`` latency
  (the overhead gate, recorded into ``BENCH_METRICS.json``);
* micro-batching **coalesces** under 32-way concurrency: batched p50 <
  single-path p50, with the batched path provably taken
  (``serve.path{path="batched"}`` > 0) and zero degraded answers;
* the LSH similarity index hits **recall@10 ≥ 0.95** at a ≥ 10× speedup
  over brute force on a 100k-company vector set (smoke mode shrinks the
  set and relaxes the speedup floor, never the recall floor);
* a hot-swap **invalidates the top-k result cache**: the first request
  after a promotion is recomputed against the new model, then re-cached
  under the new generation;
* the pre-fork **fleet gate**: a sustained closed-loop load phase against
  the shared SO_REUSEPORT port proves fleet RPS ≥ 3× a single worker at
  equal-or-better p99 (the floor derates honestly when the host has
  fewer cores than workers, and smoke mode shortens the phases), every
  worker memory-maps the model artifact (``/proc/<pid>/maps`` evidence),
  a worker SIGKILLed mid-load is restarted with **zero client-visible
  5xx**, a generation published mid-load converges on every worker with
  bit-identical answers, and no worker's flight recorder holds an
  unexplained failed request.

Run directly (CI's serve-smoke job does)::

    PYTHONPATH=src python benchmarks/bench_serve.py --inject-faults \
        --json serve-summary.json

or under pytest along with the other benchmarks.  ``REPRO_BENCH_SMOKE=1``
shrinks the coalescing/ANN phases to CI scale.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import statistics
import tempfile
import threading
import time
import urllib.error
import urllib.request
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.analysis.similarity import top_k_from_scores
from repro.data.duns import DunsNumber
from repro.experiments import make_experiment_data
from repro.models.lda import LatentDirichletAllocation
from repro.scenarios import build_scenario
from repro.obs import metrics as obs_metrics
from repro.obs import prom as obs_prom
from repro.obs.top import sum_counters
from repro.runtime import faults
from repro.serve import LSHIndex, ServiceConfig, build_demo_service, start_server
from repro.serve.ann import unit_rows
from repro.serve.service import RecommendationService

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Sequence far beyond any synthetic corpus size: valid check digit,
#: guaranteed absent from the similarity index.
_UNKNOWN_DUNS = DunsNumber.from_sequence(99_999_990).value


class _Client:
    """Tiny urllib client that returns (status, body, headers) for any code."""

    def __init__(self, base: str) -> None:
        self.base = base

    def _request(self, req: urllib.request.Request) -> tuple[int, dict, dict]:
        try:
            with urllib.request.urlopen(req, timeout=30.0) as resp:
                return resp.status, json.loads(resp.read() or b"{}"), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                body = json.loads(raw or b"{}")
            except ValueError:
                body = {"raw": raw.decode("utf-8", "replace")}
            return exc.code, body, dict(exc.headers)
        except urllib.error.URLError as exc:
            # A server that answers 413 without draining a huge body closes
            # the connection mid-send; urllib surfaces that as a broken
            # pipe.  Report it as status 0 so the ledger can distinguish a
            # connection-level rejection from an HTTP status.
            return 0, {"error": "connection", "detail": str(exc.reason)}, {}

    def get(self, path: str) -> tuple[int, dict, dict]:
        return self._request(urllib.request.Request(self.base + path, method="GET"))

    def get_raw(self, path: str, accept: str | None = None) -> tuple[int, str, dict]:
        """GET returning the body as text — for non-JSON endpoints."""
        headers = {"Accept": accept} if accept else {}
        req = urllib.request.Request(self.base + path, headers=headers, method="GET")
        try:
            with urllib.request.urlopen(req, timeout=30.0) as resp:
                return resp.status, resp.read().decode("utf-8"), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8", "replace"), dict(exc.headers)

    def post(self, path: str, payload) -> tuple[int, dict, dict]:
        data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
        return self._request(
            urllib.request.Request(
                self.base + path,
                data=data,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
        )


class Ledger:
    """Counts every request the harness sent and every status it got back."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.statuses: Counter[int] = Counter()
        self.kinds: Counter[str] = Counter()
        self.tiers: Counter[str] = Counter()
        self.violations: list[str] = []

    def record(self, kind: str, status: int, body: dict, expect: set[int]) -> None:
        with self.lock:
            self.kinds[kind] += 1
            self.statuses[status] += 1
            if isinstance(body, dict) and "tier" in body:
                self.tiers[body["tier"]] += 1
            if status not in expect:
                self.violations.append(
                    f"{kind}: got {status}, expected one of {sorted(expect)}: {body}"
                )


def _traffic(rng, vocabulary: list[str], known_duns: str, max_history: int):
    """One seeded request: (kind, path, payload, expected statuses)."""
    kind = rng.choice(
        ["valid"] * 6
        + ["oov", "badtype", "oversized", "bad_json", "bad_duns", "huge_k", "unknown_company"]
    )
    if kind == "valid":
        history = rng.sample(vocabulary, rng.randint(1, min(6, len(vocabulary))))
        payload = {"history": history, "top_n": rng.randint(1, 10)}
        return kind, "/recommend", payload, {200}
    if kind == "oov":
        payload = {"history": [vocabulary[0], "not-a-real-category"]}
        return kind, "/recommend", payload, {422}
    if kind == "badtype":
        payload = rng.choice([{"history": "not-a-list"}, {"top_n": 3}, [1, 2, 3]])
        return kind, "/recommend", payload, {422}
    if kind == "oversized":
        history = [vocabulary[i % len(vocabulary)] for i in range(max_history + 5)]
        return kind, "/recommend", {"history": history}, {413}
    if kind == "bad_json":
        return kind, "/recommend", b'{"history": [unterminated', {400}
    if kind == "bad_duns":
        return kind, "/similar", {"duns": "12345", "k": 3}, {422}
    if kind == "huge_k":
        return kind, "/similar", {"duns": known_duns, "k": 10_000}, {200}
    return kind, "/similar", {"duns": _UNKNOWN_DUNS, "k": 3}, {404}


def run_harness(
    *,
    companies: int = 200,
    seed: int = 7,
    requests: int = 60,
    inject: bool = True,
    json_path: str | None = None,
) -> dict:
    """Drive the full fault matrix against a live service; returns the summary."""
    rng = random.Random(seed)
    config = ServiceConfig(
        max_inflight=4,
        default_deadline_ms=250.0,
        breaker_failure_threshold=3,
        breaker_recovery_s=0.5,
        # Compressed SLO windows so the burn-alert phase can drain the
        # earlier phases' traffic with a short sleep instead of an hour.
        slo_fast_window_s=1.0,
        slo_slow_window_s=4.0,
    )
    service = build_demo_service(companies, seed=seed, config=config)
    server, _thread = start_server(service)
    host, port = server.server_address[:2]
    client = _Client(f"http://{host}:{port}")
    ledger = Ledger()
    vocabulary = list(service.corpus.vocabulary)
    known_duns = service.corpus.companies[0].duns.value
    saved_env = os.environ.get("REPRO_FAULTS")
    summary: dict = {"phases": {}}

    def fire(kind, path, payload, expect):
        status, body, _headers = client.post(path, payload)
        ledger.record(kind, status, body, expect)
        return status, body

    try:
        # ---- phase 1: seeded clean + malformed traffic mix ----------------
        for _ in range(requests):
            fire(*_traffic(rng, vocabulary, known_duns, config.max_history))
        status, body, _ = client.get("/healthz")
        ledger.record("healthz", status, body, {200})
        summary["phases"]["mixed_traffic"] = {"requests": requests}

        # ---- phase 2: transport-level oversized body ----------------------
        # The handler answers 413 without reading the 2 MiB body and closes
        # the connection; depending on socket buffering the client sees the
        # 413 or a connection reset (status 0) — both are rejections.
        status, body, _ = client.post("/recommend", b" " * (2 << 20))
        ledger.record("huge_body", status, body, {413, 0})

        # ---- phase 3: hanging model tier under deadline -------------------
        if inject:
            os.environ["REPRO_FAULTS"] = "hang:serve/score/lda:seconds=1.0"
            faults.reset_firing_counts()
            hang_tiers: Counter[str] = Counter()
            for _ in range(6):
                status, body = fire(
                    "hang_lda",
                    "/recommend",
                    {"history": [vocabulary[0]], "deadline_ms": 120},
                    {200},
                )
                if status == 200:
                    hang_tiers[body["tier"]] += 1
                    assert body["degraded"], body
            os.environ.pop("REPRO_FAULTS", None)
            breaker_opened = (
                sum_counters(
                    service.metrics_snapshot()["counters"],
                    "serve.breaker.transitions",
                    state="open",
                    tier="lda",
                )
                >= 1
            )
            # Breaker recovery: after the window passes, a half-open probe
            # succeeds (fault cleared) and the ladder answers from LDA again.
            time.sleep(config.breaker_recovery_s + 0.1)
            recovered = False
            for _ in range(4):
                status, body = fire(
                    "recovery", "/recommend", {"history": [vocabulary[0]]}, {200}
                )
                if status == 200 and body["tier"] == "lda":
                    recovered = True
                    break
            summary["phases"]["hang_fault"] = {
                "answering_tiers": dict(hang_tiers),
                "breaker_opened": breaker_opened,
                "recovered_to_lda": recovered,
            }
            assert breaker_opened, "lda breaker never opened under the hang fault"
            assert recovered, "ladder never recovered to the lda tier"
            assert "lda" not in hang_tiers, hang_tiers

        # ---- phase 4: overload burst → load shedding ----------------------
        if inject:
            os.environ["REPRO_FAULTS"] = "hang:serve/score/lda:seconds=0.3"
            faults.reset_firing_counts()
        burst = 24
        with ThreadPoolExecutor(max_workers=burst) as pool:
            futures = [
                pool.submit(
                    fire,
                    "burst",
                    "/recommend",
                    {"history": [vocabulary[i % len(vocabulary)]], "deadline_ms": 400},
                    {200, 429},
                )
                for i in range(burst)
            ]
            burst_statuses = Counter(f.result()[0] for f in futures)
        os.environ.pop("REPRO_FAULTS", None)
        summary["phases"]["overload_burst"] = {
            "requests": burst,
            "statuses": {str(k): v for k, v in burst_statuses.items()},
        }
        if inject:
            assert burst_statuses.get(429, 0) >= 1, (
                f"no load shedding in a {burst}-wide burst: {burst_statuses}"
            )

        # ---- phase 5: hot-swap — corrupt rejected, clean promoted ---------
        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
            probe = {"history": [vocabulary[0], vocabulary[1]], "top_n": 5}
            _, before = fire("probe", "/recommend", probe, {200})

            corrupt_path = Path(tmp) / "staged-lda.npz"
            service.registry.model("lda").save(corrupt_path)
            if inject:
                os.environ["REPRO_FAULTS"] = "corrupt:serve/stage"
                faults.reset_firing_counts()
                faults.corrupt_artifact(corrupt_path, "serve/stage")
                os.environ.pop("REPRO_FAULTS", None)
            else:
                corrupt_path.write_bytes(b"\x00not a model\x00")
            status, body = fire(
                "hotswap_corrupt",
                "/admin/hotswap",
                {"name": "lda", "path": str(corrupt_path)},
                {409},
            )
            assert body.get("status") == "rejected", body

            _, after = fire("probe", "/recommend", probe, {200})
            bit_identical = (
                before["recommendations"] == after["recommendations"]
                and before["model_versions"] == after["model_versions"]
            )
            assert bit_identical, (before, after)

            good_path = Path(tmp) / "good-lda.npz"
            service.registry.model("lda").save(good_path)

            # Readiness must flip ready → unready → ready across the
            # promotion; a hang on the swap site widens the window so the
            # poller reliably samples the unready phase.
            status, ready_before, _ = client.get("/readyz")
            ledger.record("readyz_before", status, ready_before, {200})
            ready_codes: list[int] = []
            stop = threading.Event()

            def poll_ready() -> None:
                while not stop.is_set():
                    ready_codes.append(client.get("/readyz")[0])
                    time.sleep(0.02)

            poller = threading.Thread(target=poll_ready, daemon=True)
            if inject:
                os.environ["REPRO_FAULTS"] = "hang:serve/swap/lda:seconds=0.4"
                faults.reset_firing_counts()
            poller.start()
            status, body = fire(
                "hotswap_good",
                "/admin/hotswap",
                {"name": "lda", "path": str(good_path)},
                {200},
            )
            os.environ.pop("REPRO_FAULTS", None)
            stop.set()
            poller.join(timeout=2.0)
            assert body.get("status") == "promoted", body
            status, ready_body, _ = client.get("/readyz")
            ledger.record("readyz", status, ready_body, {200})
            summary["phases"]["hotswap"] = {
                "corrupt_rejected": True,
                "bit_identical_after_rejection": bit_identical,
                "promoted_version": body.get("version"),
                "readiness_codes_during_swap": sorted(set(ready_codes)),
                "ready_after": ready_body.get("ready"),
            }
            if inject:
                assert 503 in ready_codes, "readiness never dropped during the swap"
            assert ready_before.get("ready") is True and ready_body.get("ready") is True

        # ---- phase 6: telemetry — strict scrape, exemplars, burn alert ----
        # Default Accept: Prometheus text 0.0.4.  The strict parser also
        # proves no serve.* family is exported unlabelled.
        status, text, headers = client.get_raw("/metrics")
        assert status == 200 and headers["Content-Type"].startswith("text/plain"), (
            status,
            headers,
        )
        scrape = obs_prom.parse(text, require_labels_prefix="serve_")
        for family in ("serve_requests", "serve_latency_ms", "serve_inflight"):
            assert family in scrape["families"], sorted(scrape["families"])

        # OpenMetrics carries exemplars; at least one request id attached
        # to a /recommend latency bucket must resolve in the flight
        # recorder (fast requests may have been evicted by slower ones).
        status, om_text, _ = client.get_raw("/metrics", accept="application/openmetrics-text")
        assert status == 200 and om_text.rstrip().endswith("# EOF"), om_text[-200:]
        exemplar_ids = re.findall(
            r'serve_latency_ms_bucket\{[^}]*endpoint="/recommend"[^}]*\}'
            r'[^#\n]*# \{request_id="([0-9a-f]+)"\}',
            om_text,
        )
        assert exemplar_ids, "no exemplars on the /recommend latency histogram"
        resolved = 0
        for rid in exemplar_ids:
            status, body, _ = client.get(f"/admin/debug?request_id={rid}")
            if status == 200:
                assert body["request_id"] == rid, body
                resolved += 1
        assert resolved >= 1, f"no exemplar id resolved in flight: {exemplar_ids}"

        burn_alerted = None
        burn_rates = None
        if inject:
            # Drain the compressed SLO windows, then burn: a crash fault on
            # the primary tier degrades every answer, so the quality error
            # budget burns at 1/0.05 = 20x — over the fast alert threshold.
            time.sleep(config.slo_slow_window_s + 0.2)
            os.environ["REPRO_FAULTS"] = "crash:serve/score/lda"
            faults.reset_firing_counts()
            for _ in range(20):
                status, body = fire(
                    "burn", "/recommend", {"history": [vocabulary[0]]}, {200}
                )
                if status == 200:
                    assert body["degraded"], body
            os.environ.pop("REPRO_FAULTS", None)
            status, slo_body, _ = client.get("/slo")
            ledger.record("slo", status, slo_body, {200})
            quality = slo_body["objectives"]["quality"]
            assert quality["fast"]["burn_rate"] >= slo_body["burn_threshold"], quality
            assert quality["alerting"], slo_body
            assert "quality" in slo_body["alerts"], slo_body["alerts"]
            assert not slo_body["objectives"]["availability"]["alerting"], slo_body
            burn_alerted = True
            burn_rates = {
                "quality_fast": quality["fast"]["burn_rate"],
                "quality_slow": quality["slow"]["burn_rate"],
                "threshold": slo_body["burn_threshold"],
            }
        summary["phases"]["telemetry"] = {
            "prom_families": len(scrape["families"]),
            "exemplars_on_recommend": len(exemplar_ids),
            "exemplars_resolved_in_flight": resolved,
            "burn_alert_tripped": burn_alerted,
            "burn_rates": burn_rates,
        }
    finally:
        if saved_env is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = saved_env
        server.shutdown()
        server.server_close()

    # ---- accounting: every fault shows up in exactly one counter ----------
    counters = service.metrics_snapshot()["counters"]
    assert not ledger.violations, "\n".join(ledger.violations)
    server_errors = [s for s in ledger.statuses if s >= 500 and s != 503]
    assert not server_errors, f"5xx observed: {dict(ledger.statuses)}"
    assert sum_counters(counters, "serve.requests", outcome="error") == 0, counters
    assert sum_counters(counters, "serve.shed") == ledger.statuses.get(429, 0), counters
    # Transport-level 413s (huge_body) never reach admission; every other
    # 4xx on the serving endpoints is an admission rejection + quarantine.
    rejected_kinds = ("oov", "badtype", "oversized", "bad_json", "bad_duns", "unknown_company")
    rejected_4xx = sum(ledger.kinds.get(kind, 0) for kind in rejected_kinds)
    assert sum_counters(counters, "serve.rejected") == rejected_4xx, (counters, ledger.kinds)
    quarantined = service.quarantine.total
    assert quarantined == rejected_4xx, (quarantined, rejected_4xx)
    tier_total = sum_counters(counters, "serve.tier.answers")
    assert tier_total == sum(ledger.tiers.values()), (counters, ledger.tiers)

    summary["statuses"] = {str(k): v for k, v in sorted(ledger.statuses.items())}
    summary["request_kinds"] = dict(ledger.kinds)
    summary["fallback_tiers"] = dict(ledger.tiers)
    summary["counters"] = {k: v for k, v in sorted(counters.items())}
    summary["quarantined"] = quarantined
    summary["server_5xx"] = 0
    if json_path:
        Path(json_path).write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    return summary


def run_overhead_gate(
    *,
    companies: int = 150,
    seed: int = 7,
    rounds: int = 3,
    per_round: int = 120,
    limit: float = 1.10,
    slack_ms: float = 0.25,
) -> dict:
    """Gate: request-scoped telemetry costs ≤ ``limit`` of p50 latency.

    Builds one serving stack and two service shells over the same fitted
    models — full telemetry (span capture, labelled metrics, SLO counting,
    flight recording) versus ``telemetry=False`` — and compares p50
    ``/recommend`` latency via direct ``handle()`` calls.  Rounds are
    interleaved and the best (minimum) round median is kept on each side,
    which discards scheduler noise; ``slack_ms`` absorbs sub-millisecond
    jitter when the handler itself is only a few ms.  The measurements
    are recorded as ``bench.serve.telemetry.*`` gauges so the benchmark
    session's ``BENCH_METRICS.json`` artifact carries them.
    """
    on = build_demo_service(companies, seed=seed)
    off = RecommendationService(
        corpus=on.corpus,
        registry=on.registry,
        tiers=("lda", "ngram"),
        tool=on.tool,
        config=ServiceConfig(telemetry=False, request_spans=False),
    )
    vocabulary = list(on.corpus.vocabulary)
    rng = random.Random(seed)
    payloads = [
        json.dumps(
            {"history": rng.sample(vocabulary, rng.randint(1, min(4, len(vocabulary))))}
        ).encode()
        for _ in range(32)
    ]

    def p50_ms(service: RecommendationService, n: int) -> float:
        latencies = []
        for i in range(n):
            started = time.perf_counter()
            response = service.handle("POST", "/recommend", payloads[i % len(payloads)])
            latencies.append((time.perf_counter() - started) * 1000.0)
            assert response.status == 200, (response.status, response.body)
        return statistics.median(latencies)

    for service in (on, off):  # warm caches before timing
        p50_ms(service, 30)
    on_medians, off_medians = [], []
    for _ in range(rounds):
        on_medians.append(p50_ms(on, per_round))
        off_medians.append(p50_ms(off, per_round))
    p50_on, p50_off = min(on_medians), min(off_medians)
    ratio = p50_on / p50_off if p50_off > 0 else 1.0
    result = {
        "p50_on_ms": round(p50_on, 4),
        "p50_off_ms": round(p50_off, 4),
        "ratio": round(ratio, 4),
        "limit": limit,
        "requests_per_side": rounds * per_round,
    }
    registry = obs_metrics.get_registry()
    for key in ("p50_on_ms", "p50_off_ms", "ratio"):
        registry.gauge(f"bench.serve.telemetry.{key}").set(result[key])
    assert p50_on <= p50_off * limit + slack_ms, (
        f"telemetry overhead over budget: p50 {p50_on:.3f}ms with telemetry vs "
        f"{p50_off:.3f}ms without (ratio {ratio:.3f}, limit {limit})"
    )
    return result


def run_coalescing_gate(
    *,
    companies: int = 150,
    seed: int = 7,
    concurrency: int = 32,
    rounds: int = 3,
    per_round: int = 256,
    window_ms: float = 4.0,
    slack_ms: float = 0.0,
) -> dict:
    """Gate: micro-batched p50 beats the single path at high concurrency.

    One fitted stack, two service shells: batching off versus a
    ``window_ms`` coalescing window sized to the concurrency.  Each side
    serves ``per_round`` ``/recommend`` requests from a ``concurrency``-
    wide pool via direct ``handle()`` calls; rounds are interleaved and
    the best (minimum) round median is kept per side.  Besides the
    latency gate, the phase proves coalescing actually happened
    (``serve.path{path="batched"}`` > 0) and that batching never degraded
    an answer — the no-degradable-5xx contract extends to batches.
    """
    if SMOKE:
        rounds, per_round = 2, 128
    base = build_demo_service(companies, seed=seed)
    quiet = dict(telemetry=False, request_spans=False, max_inflight=4 * concurrency)

    def shell(config: ServiceConfig) -> RecommendationService:
        return RecommendationService(
            corpus=base.corpus,
            registry=base.registry,
            tiers=("lda", "ngram"),
            config=config,
        )

    single = shell(ServiceConfig(**quiet))
    batched = shell(
        ServiceConfig(
            **quiet, batch_window_ms=window_ms, batch_max=concurrency
        )
    )
    vocabulary = list(base.corpus.vocabulary)
    rng = random.Random(seed)
    payloads = [
        json.dumps(
            {
                "history": rng.sample(
                    vocabulary, rng.randint(1, min(5, len(vocabulary)))
                ),
                "deadline_ms": 4000,
            }
        ).encode()
        for _ in range(64)
    ]

    def p50_ms(service: RecommendationService, n: int) -> float:
        def one(i: int) -> float:
            started = time.perf_counter()
            response = service.handle(
                "POST", "/recommend", payloads[i % len(payloads)]
            )
            elapsed = (time.perf_counter() - started) * 1000.0
            assert response.status == 200, (response.status, response.body)
            assert response.body["degraded"] is False, response.body
            return elapsed

        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            return statistics.median(pool.map(one, range(n)))

    try:
        for service in (single, batched):  # warm model/instrument caches
            p50_ms(service, concurrency)
        single_medians, batched_medians = [], []
        for _ in range(rounds):
            single_medians.append(p50_ms(single, per_round))
            batched_medians.append(p50_ms(batched, per_round))
    finally:
        batched.close()
    p50_single, p50_batched = min(single_medians), min(batched_medians)
    counters = batched.metrics_snapshot()["counters"]
    batched_answers = sum_counters(counters, "serve.path", path="batched")
    total_answers = sum_counters(counters, "serve.path", endpoint="/recommend")
    result = {
        "concurrency": concurrency,
        "requests_per_side": rounds * per_round,
        "window_ms": window_ms,
        "p50_single_ms": round(p50_single, 4),
        "p50_batched_ms": round(p50_batched, 4),
        "speedup": round(p50_single / p50_batched, 4) if p50_batched else 1.0,
        "batched_answers": int(batched_answers),
        "batched_fraction": round(batched_answers / total_answers, 4)
        if total_answers
        else 0.0,
        "smoke": SMOKE,
    }
    registry = obs_metrics.get_registry()
    for key in ("p50_single_ms", "p50_batched_ms", "speedup", "batched_fraction"):
        registry.gauge(f"bench.serve.batch.{key}").set(result[key])
    assert batched_answers > 0, "no request was ever answered by a batch"
    assert p50_batched < p50_single + slack_ms, (
        f"coalescing gate failed: batched p50 {p50_batched:.3f}ms vs "
        f"single p50 {p50_single:.3f}ms at {concurrency}-way concurrency"
    )
    return result


def run_ann_gate(
    *,
    n_vectors: int = 250_000,
    dim: int = 32,
    cluster_size: int = 256,
    seed: int = 7,
    k: int = 10,
    n_queries: int = 50,
    min_recall: float = 0.95,
    min_speedup: float = 10.0,
) -> dict:
    """Gate: LSH recall@k ≥ 0.95 at ≥ ``min_speedup``× over brute force.

    Indexes a clustered synthetic vector set well past the 100k-company
    scale the exact path stops being sub-millisecond at, then measures
    per-query wall time of the full brute-force ranking (one
    matrix–vector product over every company + argpartition top-k)
    against the LSH probe path.  The number of clusters scales with the
    corpus (fixed ~``cluster_size`` companies per segment) so candidate
    pools stay bounded as the universe grows, mirroring real segment
    density.  Recall is computed against the exact answer on the same
    queries.  Smoke mode shrinks the set and relaxes the speedup floor —
    never the recall floor.
    """
    if SMOKE:
        n_vectors, min_speedup, n_queries = 40_000, 2.0, 25
    rng = np.random.default_rng(seed)
    n_centers = max(64, n_vectors // cluster_size)
    centers = rng.normal(size=(n_centers, dim))
    assignments = rng.integers(0, n_centers, size=n_vectors)
    features = centers[assignments] + 0.25 * rng.normal(size=(n_vectors, dim))

    build_started = time.perf_counter()
    index = LSHIndex.build(
        features,
        n_tables=12,
        n_bits=14,
        seed=seed,
        min_candidates=96,
        check_recall_queries=0,
    )
    build_s = time.perf_counter() - build_started
    unit = unit_rows(features)
    queries = rng.choice(n_vectors, size=n_queries, replace=False)

    def brute(q: int) -> set[int]:
        scores = unit @ unit[q]
        return {int(i) for i in top_k_from_scores(scores, k, exclude=int(q))}

    def approx(q: int) -> set[int]:
        return {i for i, _ in index.search(unit[q], k, exclude=int(q))}

    # Timing: best-of-2 sweeps per path, recall from the final sweep.
    brute_s = min(
        _timed(lambda: [brute(int(q)) for q in queries]) for _ in range(2)
    )
    ann_s = min(
        _timed(lambda: [approx(int(q)) for q in queries]) for _ in range(2)
    )
    hits = sum(len(brute(int(q)) & approx(int(q))) for q in queries)
    recall = hits / (n_queries * k)
    speedup = brute_s / ann_s if ann_s else float("inf")
    result = {
        "n_vectors": n_vectors,
        "dim": dim,
        "k": k,
        "n_queries": n_queries,
        "build_s": round(build_s, 3),
        "bruteforce_ms_per_query": round(brute_s / n_queries * 1000.0, 4),
        "ann_ms_per_query": round(ann_s / n_queries * 1000.0, 4),
        "speedup": round(speedup, 2),
        "recall_at_k": round(recall, 4),
        "min_recall": min_recall,
        "min_speedup": min_speedup,
        "smoke": SMOKE,
    }
    registry = obs_metrics.get_registry()
    for key in (
        "recall_at_k",
        "speedup",
        "bruteforce_ms_per_query",
        "ann_ms_per_query",
    ):
        registry.gauge(f"bench.serve.ann.{key}").set(result[key])
    assert recall >= min_recall, (
        f"ANN recall@{k} {recall:.4f} below the {min_recall} floor"
    )
    assert speedup >= min_speedup, (
        f"ANN speedup {speedup:.2f}x below the {min_speedup}x floor "
        f"(brute {result['bruteforce_ms_per_query']}ms vs "
        f"ann {result['ann_ms_per_query']}ms per query)"
    )
    return result


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def run_cache_swap_contract(*, companies: int = 120, seed: int = 7) -> dict:
    """Contract: a promoted hot-swap invalidates the top-k result cache.

    The same payload is served three times around a promotion: computed,
    then cached, then — after the swap bumps the registry generation —
    recomputed against the new model and re-cached under the new
    generation.  Also checks the similarity tool's features were
    refreshed to the promoted model's generation.
    """
    service = build_demo_service(
        companies, seed=seed, config=ServiceConfig(topk_cache_size=64)
    )
    vocabulary = list(service.corpus.vocabulary)
    payload = {"history": [vocabulary[0], vocabulary[1]], "top_n": 5}

    first = service.handle("POST", "/recommend", payload)
    second = service.handle("POST", "/recommend", payload)
    assert first.status == second.status == 200
    assert first.body["path"] == "single", first.body
    assert second.body["path"] == "cached", second.body
    assert second.body["recommendations"] == first.body["recommendations"]

    with tempfile.TemporaryDirectory(prefix="repro-serve-cache-") as tmp:
        path = Path(tmp) / "promoted-lda.npz"
        service.registry.model("lda").save(path)
        swap = service.handle(
            "POST", "/admin/hotswap", {"name": "lda", "path": str(path)}
        )
        assert swap.status == 200 and swap.body["status"] == "promoted", swap.body

    third = service.handle("POST", "/recommend", payload)
    fourth = service.handle("POST", "/recommend", payload)
    assert third.body["path"] == "single", (
        f"stale cache served across a hot-swap: {third.body['path']}"
    )
    assert third.body["model_versions"]["lda"] == 2, third.body
    assert fourth.body["path"] == "cached", fourth.body
    assert service.tool.model_version == service.registry.generation
    counters = service.metrics_snapshot()["counters"]
    result = {
        "paths": [r.body["path"] for r in (first, second, third, fourth)],
        "promoted_version": swap.body["version"],
        "generation": service.registry.generation,
        "cache": service.topk_cache.stats(),
        "invalidated": sum_counters(counters, "serve.cache.invalidate"),
    }
    assert result["invalidated"] >= 1, counters
    return result


def run_canary_gate(*, companies: int = 300, seed: int = 7, windows: int = 3) -> dict:
    """Contract + cost of replay-gated promotion.

    A canary-enabled service shadow-scores every hot-swap candidate over
    ``windows`` replay windows.  The phase stages a drift-corrupted
    candidate (must come back 409 with a machine-readable canary verdict
    while /recommend keeps serving bit-identically) and a clean refit
    (must promote, with the passing verdict attached), and times both
    gate evaluations — the price of a guarded promotion, recorded as
    ``bench.serve.canary.*`` gauges.
    """
    config = ServiceConfig(
        canary_windows=windows,
        # Loose perplexity gate so the canary is the deciding check.
        swap_tolerance=6.0,
        batch_window_ms=0.0,
        topk_cache_size=0,
    )
    service = build_demo_service(companies, seed=seed, config=config)
    vocabulary = list(service.corpus.vocabulary)
    payload = {"history": [vocabulary[0], vocabulary[1]], "top_n": 5}

    def stable_fields(response) -> dict:
        return {
            key: response.body[key]
            for key in ("tier", "recommendations", "model_versions")
        }

    before = service.handle("POST", "/recommend", payload)
    assert before.status == 200, before.body

    data = make_experiment_data(companies, seed=seed)
    drifted = LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=60, seed=1
    ).fit(build_scenario(data.corpus, "drift", seed=1).corpus)
    clean = LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=60, seed=1
    ).fit(data.split.train)

    with tempfile.TemporaryDirectory(prefix="repro-serve-canary-") as tmp:
        staged = Path(tmp) / "drifted-lda.npz"
        drifted.save(staged)
        reject_s = time.perf_counter()
        rejected = service.handle(
            "POST", "/admin/hotswap", {"name": "lda", "path": str(staged)}
        )
        reject_ms = (time.perf_counter() - reject_s) * 1000.0
        assert rejected.status == 409, rejected.body
        assert "canary rejected" in rejected.body["reason"], rejected.body
        verdict = rejected.body["canary"]
        assert verdict["passed"] is False, verdict

        after = service.handle("POST", "/recommend", payload)
        assert stable_fields(after) == stable_fields(before), (
            "incumbent answers changed across a rejected promotion"
        )

        staged_clean = Path(tmp) / "clean-lda.npz"
        clean.save(staged_clean)
        promote_s = time.perf_counter()
        promoted = service.handle(
            "POST", "/admin/hotswap", {"name": "lda", "path": str(staged_clean)}
        )
        promote_ms = (time.perf_counter() - promote_s) * 1000.0
        assert promoted.status == 200, promoted.body
        assert promoted.body["canary"]["passed"] is True, promoted.body

    result = {
        "companies": companies,
        "windows": windows,
        "rejected_reason": verdict["reason"],
        "regressed_windows": verdict["regressed_windows"],
        "rejected_divergence": verdict["recommendation_divergence"],
        "reject_eval_ms": round(reject_ms, 2),
        "promote_eval_ms": round(promote_ms, 2),
        "bit_identical_after_rejection": True,
        "promoted_version": promoted.body["version"],
    }
    registry = obs_metrics.get_registry()
    registry.gauge("bench.serve.canary.reject_eval_ms").set(result["reject_eval_ms"])
    registry.gauge("bench.serve.canary.promote_eval_ms").set(result["promote_eval_ms"])
    registry.gauge("bench.serve.canary.regressed_windows").set(
        float(result["regressed_windows"])
    )
    if result["rejected_divergence"] is not None:
        registry.gauge("bench.serve.canary.rejected_divergence").set(
            result["rejected_divergence"]
        )
    return result


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted latency list."""
    if not sorted_ms:
        return 0.0
    rank = max(0, min(len(sorted_ms) - 1, int(round(q * (len(sorted_ms) - 1)))))
    return sorted_ms[rank]


def run_closed_loop(
    base_url: str,
    payloads: list[bytes],
    *,
    threads: int = 8,
    duration_s: float = 5.0,
    extended_percentiles: bool = False,
) -> dict:
    """Sustained closed-loop load: ``threads`` clients, keep-alive, no sleep.

    Each client thread drives its own persistent connection as fast as
    the server answers for ``duration_s`` (closed loop: a new request is
    issued the moment the previous response lands).  A broken connection
    — e.g. its pinned SO_REUSEPORT worker was killed — is reconnected
    and counted as a retry, never as a failure: the contract under fault
    is zero client-visible 5xx, and connection-level resets of idle
    keep-alive sockets are the kernel's business, not the service's.

    Returns RPS, latency percentiles (p99.9/max with
    ``extended_percentiles``), the status histogram and the retry count.
    """
    import http.client
    from urllib.parse import urlsplit

    parts = urlsplit(base_url)
    host, port = parts.hostname, parts.port
    stop_at = time.monotonic() + duration_s
    lock = threading.Lock()
    latencies: list[float] = []
    statuses: Counter[int] = Counter()
    retries = 0

    def loop(worker_index: int) -> None:
        nonlocal retries
        conn = http.client.HTTPConnection(host, port, timeout=30)
        sent = worker_index  # offset so threads don't sync on one payload
        local_lat: list[float] = []
        local_status: Counter[int] = Counter()
        local_retries = 0
        while time.monotonic() < stop_at:
            body = payloads[sent % len(payloads)]
            sent += 1
            started = time.perf_counter()
            try:
                conn.request(
                    "POST",
                    "/recommend",
                    body,
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
            except (OSError, http.client.HTTPException):
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
                local_retries += 1
                continue
            local_lat.append((time.perf_counter() - started) * 1000.0)
            local_status[response.status] += 1
        conn.close()
        with lock:
            latencies.extend(local_lat)
            statuses.update(local_status)
            retries += local_retries

    pool = [
        threading.Thread(target=loop, args=(i,), daemon=True)
        for i in range(threads)
    ]
    started = time.monotonic()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=duration_s + 60)
    elapsed = time.monotonic() - started
    latencies.sort()
    report = {
        "requests": len(latencies),
        "duration_s": round(elapsed, 3),
        "rps": round(len(latencies) / elapsed, 2) if elapsed > 0 else 0.0,
        "threads": threads,
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "connection_retries": retries,
    }
    if extended_percentiles:
        report["p999_ms"] = round(_percentile(latencies, 0.999), 3)
        report["max_ms"] = round(latencies[-1] if latencies else 0.0, 3)
    return report


def _worker_memory_evidence(pids: list[int], artifact_root: str) -> dict:
    """Per-worker RSS and artifact-mapping evidence from ``/proc``.

    ``artifact_mapped_bytes`` counts address-space bytes backed by files
    under the artifact store — the same inode in every worker's maps is
    the proof the fleet shares one page-cache copy of the model weights.
    """
    evidence: dict[str, dict] = {}
    for pid in pids:
        info: dict[str, int] = {}
        try:
            for line in Path(f"/proc/{pid}/smaps_rollup").read_text().splitlines():
                name, _, rest = line.partition(":")
                if name in ("Rss", "Pss", "Shared_Clean"):
                    info[f"{name.lower()}_kb"] = int(rest.split()[0])
        except (OSError, ValueError):
            pass
        mapped = 0
        try:
            for line in Path(f"/proc/{pid}/maps").read_text().splitlines():
                if artifact_root in line:
                    span = line.split()[0]
                    start, _, end = span.partition("-")
                    mapped += int(end, 16) - int(start, 16)
        except (OSError, ValueError):
            pass
        info["artifact_mapped_bytes"] = mapped
        evidence[str(pid)] = info
    return evidence


def _flight_failed_records(direct_url: str) -> list[dict]:
    """Every record in one worker's failed-request flight ring."""
    client = _Client(direct_url)
    status, text, _ = client.get_raw("/admin/debug?section=failed")
    if status != 200:
        return [{"status": -1, "detail": f"debug scrape failed with {status}"}]
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def run_fleet_gate(
    *,
    companies: int = 200,
    seed: int = 7,
    workers: int = 4,
    shards: int = 2,
    threads: int = 8,
    duration_s: float | None = None,
    min_speedup: float | None = None,
    p99_slack: float | None = None,
    kill_worker: bool = False,
    hotswap_under_load: bool = False,
    extended_percentiles: bool = False,
) -> dict:
    """Gate: the pre-fork fleet sustains ≥ ``min_speedup``× one worker's RPS.

    Publishes the demo models to an artifact store once, then runs the
    same closed-loop load twice — against a 1-worker fleet (the
    single-process baseline, measured in its own process exactly like
    the fleet workers) and against a ``workers``-wide fleet on the
    shared SO_REUSEPORT port.  The full-scale floor is 3×; because N
    workers cannot beat one by 3× without ≥ 3 extra cores, the floor
    derates with the host's effective parallelism
    (``min(workers, cpu_count)``) and is further relaxed — never the
    correctness checks — in ``REPRO_BENCH_SMOKE`` mode.

    Correctness rides along under load: every worker must map the
    artifact file into its address space (shared page cache), no
    client-visible 5xx is tolerated (including while a worker is
    SIGKILLed and restarted with ``kill_worker``), a generation
    published mid-load (``hotswap_under_load``) must converge on every
    worker with bit-identical per-worker answers, and no worker's
    flight recorder may hold an unexplained failed request.
    """
    import signal as _signal

    from repro.serve import (
        ArtifactStore,
        FleetSupervisor,
        build_demo_models,
        demo_service_factory,
        publish_demo_artifacts,
    )

    cores = os.cpu_count() or 1
    effective = min(workers, cores)
    if duration_s is None:
        duration_s = 2.5 if SMOKE else 8.0
    if min_speedup is None:
        min_speedup = 3.0 if effective >= 4 else 0.75 * effective
        if SMOKE:
            min_speedup *= 0.6
    if p99_slack is None:
        p99_slack = 1.0 if effective >= 4 and not SMOKE else 3.0
    if SMOKE:
        companies = min(companies, 120)
    lda_iterations = 15 if SMOKE else 60

    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as tmp:
        store = ArtifactStore(Path(tmp) / "artifacts")
        publish_demo_artifacts(
            store, companies, seed=seed, lda_iterations=lda_iterations
        )
        config = ServiceConfig(reuse_port=True, max_inflight=4 * threads)
        factory = demo_service_factory(store, companies, seed=seed, config=config)
        rng = random.Random(seed)
        data_vocab: list[str] | None = None

        def payload_set(service_vocab: list[str]) -> list[bytes]:
            return [
                json.dumps(
                    {
                        "history": rng.sample(
                            service_vocab,
                            rng.randint(1, min(5, len(service_vocab))),
                        ),
                        "deadline_ms": 4000,
                    }
                ).encode()
                for _ in range(64)
            ]

        from repro.experiments.common import make_experiment_data

        data_vocab = list(make_experiment_data(companies, seed=seed).corpus.vocabulary)
        payloads = payload_set(data_vocab)

        # ---- phase 1: single-worker baseline, own process ----------------
        with FleetSupervisor(
            factory,
            n_workers=1,
            shards=1,
            state_dir=Path(tmp) / "state-single",
            store=store,
        ) as single:
            single.wait_ready(timeout=120)
            single_report = run_closed_loop(
                single.fleet_url,
                payloads,
                threads=threads,
                duration_s=duration_s,
                extended_percentiles=extended_percentiles,
            )

        # ---- phase 2: the fleet, same load, faults riding along ----------
        supervisor = FleetSupervisor(
            factory,
            n_workers=workers,
            shards=shards,
            state_dir=Path(tmp) / "state-fleet",
            store=store,
            poll_interval=0.1,
        )
        supervisor.start()
        try:
            supervisor.wait_ready(timeout=120)
            fleet_report: dict = {}
            chaos_notes: dict = {}

            def load() -> None:
                fleet_report.update(
                    run_closed_loop(
                        supervisor.fleet_url,
                        payloads,
                        threads=threads,
                        duration_s=duration_s,
                        extended_percentiles=extended_percentiles,
                    )
                )

            loader = threading.Thread(target=load, daemon=True)
            loader.start()
            time.sleep(duration_s * 0.25)
            memory = _worker_memory_evidence(
                list(supervisor.live_pids().values()), str(store.root)
            )
            if kill_worker:
                victim = next(iter(supervisor.live_pids().values()))
                os.kill(victim, _signal.SIGKILL)
                chaos_notes["killed_pid"] = victim
            if hotswap_under_load:
                _, models = build_demo_models(
                    companies, seed=seed, lda_iterations=lda_iterations
                )
                published = supervisor.publish(models)
                chaos_notes["published_generation"] = published.number
            loader.join(timeout=duration_s + 120)

            if kill_worker:
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if (
                        supervisor.restarts >= 1
                        and len(supervisor.live_pids()) == workers
                    ):
                        break
                    time.sleep(0.1)
                chaos_notes["restarts"] = supervisor.restarts
                assert supervisor.restarts >= 1, "killed worker never restarted"
                assert len(supervisor.live_pids()) == workers, supervisor.live_pids()
            if hotswap_under_load:
                states = supervisor.wait_generation(
                    chaos_notes["published_generation"], timeout=60
                )
                probe = payloads[0]
                answers = []
                for state in states:
                    status, body, _ = _Client(state.direct_url).post(
                        "/recommend", probe
                    )
                    assert status == 200, (state.index, status, body)
                    answers.append(
                        (body["recommendations"], body["model_versions"])
                    )
                assert all(a == answers[0] for a in answers), (
                    "post-swap answers diverged across workers"
                )
                chaos_notes["post_swap_bit_identical"] = True

            # Flight-recorder audit: the load sends only valid payloads,
            # so the only explicable failed records are 429 sheds.
            unexplained: list[dict] = []
            for state in supervisor.workers():
                for record in _flight_failed_records(state.direct_url):
                    if record.get("status") != 429:
                        unexplained.append(record)
            assert not unexplained, (
                f"unexplained failed requests in worker flight recorders: "
                f"{unexplained[:5]}"
            )
        finally:
            supervisor.stop()

    speedup = (
        fleet_report["rps"] / single_report["rps"]
        if single_report.get("rps")
        else 0.0
    )
    server_5xx = [
        s
        for report in (single_report, fleet_report)
        for s in report["statuses"]
        if int(s) >= 500
    ]
    result = {
        "workers": workers,
        "shards": shards,
        "threads": threads,
        "cores": cores,
        "effective_parallelism": effective,
        "duration_s": duration_s,
        "single": single_report,
        "fleet": fleet_report,
        "speedup": round(speedup, 3),
        "min_speedup": round(min_speedup, 3),
        "p99_slack": p99_slack,
        "memory": memory,
        "chaos": chaos_notes,
        "smoke": SMOKE,
    }
    registry = obs_metrics.get_registry()
    registry.gauge("bench.serve.fleet.single_rps").set(single_report["rps"])
    registry.gauge("bench.serve.fleet.fleet_rps").set(fleet_report["rps"])
    registry.gauge("bench.serve.fleet.speedup").set(result["speedup"])
    registry.gauge("bench.serve.fleet.min_speedup").set(result["min_speedup"])
    registry.gauge("bench.serve.fleet.single_p99_ms").set(single_report["p99_ms"])
    registry.gauge("bench.serve.fleet.fleet_p99_ms").set(fleet_report["p99_ms"])
    registry.gauge("bench.serve.fleet.workers").set(workers)
    mapped = [m["artifact_mapped_bytes"] for m in memory.values()]
    registry.gauge("bench.serve.fleet.artifact_mapped_mb").set(
        round(sum(mapped) / max(1, len(mapped)) / 1e6, 3)
    )
    rss = [m.get("rss_kb", 0) for m in memory.values() if "rss_kb" in m]
    if rss:
        registry.gauge("bench.serve.fleet.worker_rss_mb_mean").set(
            round(sum(rss) / len(rss) / 1024.0, 2)
        )

    assert not server_5xx, f"client-visible 5xx under fleet load: {server_5xx}"
    assert all(m["artifact_mapped_bytes"] > 0 for m in memory.values()), (
        f"a worker is not memory-mapping the model artifact: {memory}"
    )
    assert speedup >= min_speedup, (
        f"fleet RPS {fleet_report['rps']} is only {speedup:.2f}x the single "
        f"worker's {single_report['rps']} (floor {min_speedup:.2f}x at "
        f"{effective} effective cores)"
    )
    assert fleet_report["p99_ms"] <= single_report["p99_ms"] * p99_slack, (
        f"fleet p99 {fleet_report['p99_ms']}ms worse than single worker's "
        f"{single_report['p99_ms']}ms (slack {p99_slack}x)"
    )
    return result


def test_serve_coalescing_gate():
    """Pytest entry point: batched p50 < single p50 at 32-way concurrency."""
    result = run_coalescing_gate()
    assert result["p50_batched_ms"] < result["p50_single_ms"]
    assert result["batched_answers"] > 0


def test_serve_ann_gate():
    """Pytest entry point: ANN recall/speedup floors at 100k scale."""
    result = run_ann_gate()
    assert result["recall_at_k"] >= result["min_recall"]
    assert result["speedup"] >= result["min_speedup"]


def test_serve_cache_swap_contract():
    """Pytest entry point: hot-swap invalidates the top-k cache."""
    result = run_cache_swap_contract()
    assert result["paths"] == ["single", "cached", "single", "cached"]


def test_serve_canary_gate():
    """Pytest entry point: drift rejected with 409, clean refit promoted."""
    result = run_canary_gate(companies=300)
    assert result["bit_identical_after_rejection"]
    assert result["promoted_version"] == 2


def test_serve_load_harness():
    """Pytest entry point: the full harness at smoke scale."""
    summary = run_harness(companies=150, requests=30, inject=True)
    assert summary["server_5xx"] == 0
    assert summary["phases"]["hotswap"]["bit_identical_after_rejection"]
    assert summary["phases"]["telemetry"]["burn_alert_tripped"]


def test_serve_telemetry_overhead():
    """Pytest entry point: the p50 telemetry-overhead gate."""
    result = run_overhead_gate()
    assert result["ratio"] <= result["limit"] or result["p50_on_ms"] <= (
        result["p50_off_ms"] * result["limit"] + 0.25
    )


def test_serve_fleet_gate():
    """Pytest entry point: fleet throughput + kill/hot-swap under load."""
    result = run_fleet_gate(
        workers=3,
        shards=2,
        kill_worker=True,
        hotswap_under_load=True,
        extended_percentiles=True,
    )
    assert result["speedup"] >= result["min_speedup"]
    assert result["chaos"].get("restarts", 0) >= 1
    assert result["chaos"].get("post_swap_bit_identical") is True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--companies", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--requests", type=int, default=60, help="mixed-traffic phase size")
    parser.add_argument(
        "--inject-faults",
        action="store_true",
        help="arm the hang / corrupt-model / swap-stall fault phases",
    )
    parser.add_argument("--json", metavar="PATH", default=None, help="write the summary here")
    parser.add_argument(
        "--overhead-gate",
        action="store_true",
        help="also run the p50 telemetry-overhead gate (adds ~30s)",
    )
    parser.add_argument(
        "--coalescing-gate",
        action="store_true",
        help="also run the micro-batching p50 gate at 32-way concurrency",
    )
    parser.add_argument(
        "--ann-gate",
        action="store_true",
        help="also run the LSH recall/speedup gate at 100k-company scale",
    )
    parser.add_argument(
        "--cache-contract",
        action="store_true",
        help="also assert a hot-swap invalidates the top-k result cache",
    )
    parser.add_argument(
        "--canary-gate",
        action="store_true",
        help="also run the replay-gated promotion contract: drifted "
        "candidate 409s bit-identically, clean refit promotes",
    )
    parser.add_argument(
        "--fleet-gate",
        action="store_true",
        help="also run the pre-fork fleet throughput gate (sustained "
        "closed-loop load against the shared SO_REUSEPORT port)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="fleet width for --fleet-gate"
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="shard groups for --fleet-gate"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="S",
        help="seconds per closed-loop load phase (default: mode-dependent)",
    )
    parser.add_argument(
        "--fleet-kill",
        action="store_true",
        help="SIGKILL one worker mid-load and assert restart with 0 5xx",
    )
    parser.add_argument(
        "--fleet-hotswap",
        action="store_true",
        help="publish a model generation mid-load and assert bit-identical "
        "convergence on every worker",
    )
    parser.add_argument(
        "--percentiles",
        action="store_true",
        help="report p99.9 and max alongside p50/p99 in load reports",
    )
    args = parser.parse_args(argv)
    summary = run_harness(
        companies=args.companies,
        seed=args.seed,
        requests=args.requests,
        inject=args.inject_faults,
        json_path=args.json,
    )
    if args.overhead_gate:
        summary["telemetry_overhead"] = run_overhead_gate(
            companies=args.companies, seed=args.seed
        )
    if args.coalescing_gate:
        summary["coalescing"] = run_coalescing_gate(
            companies=args.companies, seed=args.seed
        )
    if args.ann_gate:
        summary["ann"] = run_ann_gate(seed=args.seed)
    if args.cache_contract:
        summary["cache_swap"] = run_cache_swap_contract(seed=args.seed)
    if args.canary_gate:
        # The contract needs a validation slice large enough that the
        # drift-corrupted candidate measurably diverges on replay.
        summary["canary"] = run_canary_gate(
            companies=max(args.companies, 300), seed=args.seed
        )
    if args.fleet_gate:
        summary["fleet"] = run_fleet_gate(
            companies=args.companies,
            seed=args.seed,
            workers=args.workers,
            shards=args.shards,
            duration_s=args.duration,
            kill_worker=args.fleet_kill,
            hotswap_under_load=args.fleet_hotswap,
            extended_percentiles=args.percentiles,
        )
    if args.json and (
        args.overhead_gate
        or args.coalescing_gate
        or args.ann_gate
        or args.cache_contract
        or args.canary_gate
        or args.fleet_gate
    ):
        Path(args.json).write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
    print(json.dumps(summary, indent=2))
    print("\nserve load harness: all contracts held (0 uncaught, 0 server 5xx)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
