"""Runtime layer — process-pool fan-out, fit cache, vectorized Gibbs.

Three perf claims from the runtime PR, measured on the bench corpus:

* the blocked (vectorized) Gibbs sampler reproduces the token sampler's
  perplexity within tolerance at a fraction of the wall time;
* `--jobs N` produces **identical** recommendation curves to a serial run
  (wall-clock gain depends on the machine's core count, so the ratio is
  recorded, not asserted);
* a warm fit cache skips every refit of the sliding-window protocol.

All timings land in the ``BENCH_METRICS.json`` artifact as gauges
(``bench.runtime.*``) next to the session's ``cache.hit`` / ``cache.miss``
counters, so perf regressions show up in the committed baseline.
"""

import time

from repro.experiments.fig34_recommendation import run_recommendation_accuracy
from repro.models.lda import LatentDirichletAllocation
from repro.obs import metrics
from repro.recommend.windows import SlidingWindowSpec
from repro.runtime import FitCache


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_gibbs_blocked_vs_token(benchmark, bench_data):
    split = bench_data.split

    def fit(sampler):
        return LatentDirichletAllocation(
            n_topics=4, n_iter=100, seed=0, gibbs_sampler=sampler
        ).fit(split.train)

    blocked, blocked_s = _timed(lambda: benchmark.pedantic(
        fit, kwargs={"sampler": "blocked"}, rounds=1, iterations=1
    ))
    token, token_s = _timed(lambda: fit("token"))
    blocked_ppl = blocked.perplexity(split.test)
    token_ppl = token.perplexity(split.test)
    speedup = token_s / blocked_s
    metrics.set_gauge("bench.runtime.gibbs_blocked_s", blocked_s)
    metrics.set_gauge("bench.runtime.gibbs_token_s", token_s)
    metrics.set_gauge("bench.runtime.gibbs_speedup", speedup)
    print("\nGibbs sampler — token (reference) vs blocked (vectorized)")
    print(f"  token:   {token_s:7.2f} s  perplexity {token_ppl:.3f}")
    print(f"  blocked: {blocked_s:7.2f} s  perplexity {blocked_ppl:.3f}")
    print(f"  speedup: {speedup:.1f}x")

    # Acceptance: >= 3x at n_iter=100 with equivalent perplexity.
    assert speedup >= 3.0
    assert abs(blocked_ppl - token_ppl) / min(blocked_ppl, token_ppl) < 0.05


def test_fig34_parallel_and_cache(benchmark, bench_data, tmp_path):
    """Serial vs --jobs 4 vs cold/warm cache on the retrain protocol."""
    kwargs = {
        "data": bench_data,
        "spec": SlidingWindowSpec(n_windows=3),
        "retrain_per_window": True,
    }
    serial, serial_s = _timed(lambda: benchmark.pedantic(
        run_recommendation_accuracy, kwargs=kwargs, rounds=1, iterations=1
    ))
    parallel, parallel_s = _timed(
        lambda: run_recommendation_accuracy(n_jobs=4, **kwargs)
    )
    cache = FitCache(tmp_path / "fits")
    cold, cold_s = _timed(
        lambda: run_recommendation_accuracy(fit_cache=cache, **kwargs)
    )
    warm, warm_s = _timed(
        lambda: run_recommendation_accuracy(fit_cache=cache, **kwargs)
    )
    metrics.set_gauge("bench.runtime.fig34_serial_s", serial_s)
    metrics.set_gauge("bench.runtime.fig34_jobs4_s", parallel_s)
    metrics.set_gauge("bench.runtime.fig34_cold_cache_s", cold_s)
    metrics.set_gauge("bench.runtime.fig34_warm_cache_s", warm_s)
    metrics.set_gauge("bench.runtime.fig34_warm_speedup", serial_s / warm_s)
    print("\nFigure 3/4 retrain protocol — runtime configurations")
    print(f"  serial (n_jobs=1):   {serial_s:7.2f} s")
    print(f"  process pool (4):    {parallel_s:7.2f} s")
    print(f"  cold fit cache:      {cold_s:7.2f} s")
    print(f"  warm fit cache:      {warm_s:7.2f} s")
    print(f"  warm-cache speedup:  {serial_s / warm_s:.1f}x")
    print(f"  cache hits/misses:   {cache.hits}/{cache.misses}")

    # Determinism: every configuration yields identical curves.
    for name in serial:
        assert serial[name].observations == parallel[name].observations
        assert serial[name].observations == cold[name].observations
        assert serial[name].observations == warm[name].observations
    # A warm cache skips every (window x model) refit...
    assert cache.hits > 0
    # ...and must dominate the serial wall time (acceptance: >= 5x).
    assert serial_s / warm_s >= 5.0
