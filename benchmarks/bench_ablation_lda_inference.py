"""Ablation — LDA inference back-ends: collapsed Gibbs vs variational Bayes.

The paper uses gensim's (variational) LDA; our reproduction implements both
inference styles and this benchmark demonstrates their parity on held-out
perplexity, which justifies using the faster variational back-end in the
other experiments.
"""

from repro.experiments.ablations import run_lda_inference_ablation


def test_gibbs_vs_variational(benchmark, bench_data):
    results = benchmark.pedantic(
        run_lda_inference_ablation, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nAblation — LDA inference parity (4 topics)")
    for inference, perplexity in results.items():
        print(f"  {inference:<12} {perplexity:.2f}")

    gibbs = results["gibbs"]
    variational = results["variational"]
    assert abs(gibbs - variational) / min(gibbs, variational) < 0.1
