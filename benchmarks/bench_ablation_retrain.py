"""Ablation — retraining per sliding window vs training once.

The paper retrains on everything before each window.  Training once before
the first window is far cheaper; this benchmark quantifies how little the
recall at the operating threshold changes, which justifies the cheaper
default in the figure benchmarks.
"""

from repro.experiments.ablations import run_retrain_ablation


def test_retrain_per_window(benchmark, bench_data):
    results = benchmark.pedantic(
        run_retrain_ablation, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nAblation — LDA recall at phi = 0.1")
    print(f"  retrain per window: {results['retrain_per_window']:.3f}")
    print(f"  train once:         {results['train_once']:.3f}")

    assert abs(results["retrain_per_window"] - results["train_once"]) < 0.08
