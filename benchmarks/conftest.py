"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
standard synthetic corpus (DESIGN.md Section 4 maps benchmarks to paper
artifacts).  The corpus is generated once per session; individual
benchmarks time the experiment drivers and print the reproduced rows next
to the paper's reported values.
"""

from __future__ import annotations

import pytest

from repro.experiments import make_experiment_data

#: Corpus size used by the benchmark suite.  The paper uses 860k companies;
#: the experiments here are calibrated so their qualitative results hold at
#: this laptop-friendly scale (see DESIGN.md Section 2).  Note that the
#: LDA-vs-LSTM margin is training-budget sensitive: with a larger corpus the
#: fixed 14-epoch PTB recipe converges further and the LSTM closes the gap,
#: exactly as the paper's own "more training data" caveat predicts (the
#: bench_ablation_lstm_training benchmark quantifies this).
BENCH_COMPANIES = 1000

#: Universe seed shared by all benchmarks.
BENCH_SEED = 7


@pytest.fixture(scope="session")
def bench_data():
    """The standard benchmark universe, corpus and 70/10/20 split."""
    return make_experiment_data(BENCH_COMPANIES, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def shared_cache():
    """Cross-benchmark cache for expensive intermediate results.

    Figure pairs that share a computation (3/4, 5/6) store it here so the
    second benchmark does not redo the work; the first benchmark of each
    pair carries the full cost.
    """
    return {}
