"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
standard synthetic corpus (DESIGN.md Section 4 maps benchmarks to paper
artifacts).  The corpus is generated once per session; individual
benchmarks time the experiment drivers and print the reproduced rows next
to the paper's reported values.

The suite runs with ``repro.obs`` tracing and metrics enabled: every
benchmark executes inside a ``bench.<test-name>`` span, and the session
writes a JSON artifact (span trees + metrics snapshot) so ``BENCH_*.json``
result files can carry stage-level breakdowns, not just totals.  Set
``REPRO_OBS_BENCH_ARTIFACT`` to choose the output path (default
``BENCH_METRICS.json`` in the invocation directory); set it to an empty
string to skip the artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import obs
from repro.experiments import make_experiment_data
from repro.obs import report as obs_report
from repro.obs import trace as obs_trace

#: Corpus size used by the benchmark suite.  The paper uses 860k companies;
#: the experiments here are calibrated so their qualitative results hold at
#: this laptop-friendly scale (see DESIGN.md Section 2).  Note that the
#: LDA-vs-LSTM margin is training-budget sensitive: with a larger corpus the
#: fixed 14-epoch PTB recipe converges further and the LSTM closes the gap,
#: exactly as the paper's own "more training data" caveat predicts (the
#: bench_ablation_lstm_training benchmark quantifies this).
BENCH_COMPANIES = 1000

#: Universe seed shared by all benchmarks.
BENCH_SEED = 7


@pytest.fixture(scope="session")
def bench_data():
    """The standard benchmark universe, corpus and 70/10/20 split."""
    return make_experiment_data(BENCH_COMPANIES, seed=BENCH_SEED)


def pytest_configure(config):
    """Enable tracing + metrics for the whole benchmark session."""
    obs.reset_all()
    obs.enable_all()


@pytest.fixture(autouse=True)
def _bench_span(request):
    """Run every benchmark inside its own ``bench.<name>`` root span."""
    with obs_trace.span(f"bench.{request.node.name}"):
        yield


def pytest_sessionfinish(session, exitstatus):
    """Write the span/metrics artifact and restore the disabled default."""
    target = os.environ.get("REPRO_OBS_BENCH_ARTIFACT", "BENCH_METRICS.json")
    if target:
        payload = obs_report.render_json()
        payload["companies"] = BENCH_COMPANIES
        payload["seed"] = BENCH_SEED
        payload["exit_status"] = int(exitstatus)
        Path(target).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    obs.disable_all()


@pytest.fixture(scope="session")
def shared_cache():
    """Cross-benchmark cache for expensive intermediate results.

    Figure pairs that share a computation (3/4, 5/6) store it here so the
    second benchmark does not redo the work; the first benchmark of each
    pair carries the full cost.
    """
    return {}
