"""Figure 2 — LDA test perplexity vs topic count, binary vs TF-IDF input.

Paper: binary input beats TF-IDF across the topic grid; 2-4 topics give the
lowest perplexity (8.5-8.9), rising slowly toward 16 topics.
"""

import numpy as np

from repro.experiments.fig2_lda_sweep import best_binary_band, run_lda_sweep


def test_fig2_lda_topic_sweep(benchmark, bench_data):
    rows = benchmark.pedantic(
        run_lda_sweep, kwargs={"data": bench_data}, rounds=1, iterations=1
    )
    print("\nFigure 2 — LDA test perplexity vs topics (binary vs TF-IDF)")
    print(f"{'input':<8} {'topics':>6} {'perplexity':>11}")
    for row in rows:
        print(f"{row['input']:<8} {row['n_topics']:>6.0f} {row['test_perplexity']:>11.2f}")

    binary = {r["n_topics"]: r["test_perplexity"] for r in rows if r["input"] == "binary"}
    tfidf = {r["n_topics"]: r["test_perplexity"] for r in rows if r["input"] == "tfidf"}

    # Shape 1: binary input beats TF-IDF on average and at the optimum.
    assert np.mean(list(binary.values())) < np.mean(list(tfidf.values()))
    assert min(binary.values()) < min(tfidf.values())
    # Shape 2: a small topic count (<= 6) is optimal for binary input.
    best_perplexity, best_topics = best_binary_band(rows)
    assert best_topics <= 6
    # Shape 3: the curve rises toward 16 topics (the paper's U shape).
    assert binary[16.0] > best_perplexity * 1.05
