"""repro — hidden layer models for company representations and product recommendations.

A from-scratch reproduction of Mirylenka et al., *Hidden Layer Models for
Company Representations and Product Recommendations* (EDBT 2019): a
synthetic install-base universe standing in for the proprietary HG Data
feed, the full model zoo (unigram, n-gram, LDA, LSTM/GRU, Conditional Heavy
Hitters, Bayesian PMF), the sliding-window recommendation harness, the
clustering/silhouette/t-SNE analysis stack, and the Section 6 sales tool.

Quickstart::

    from repro import InstallBaseSimulator, Corpus, LatentDirichletAllocation

    simulator = InstallBaseSimulator()
    corpus = Corpus.from_companies(simulator.generate_companies(seed=0))
    split = corpus.split(seed=0)
    lda = LatentDirichletAllocation(n_topics=3).fit(split.train)
    print(lda.perplexity(split.test))
"""

from repro.analysis import (
    KMeans,
    SpectralCoclustering,
    TSNE,
    cosine_similarity_matrix,
    mean_confidence_interval,
    sequentiality_test,
    silhouette_score,
    top_k_similar,
)
from repro.app import FirmographicFilter, SalesRecommendationTool
from repro.data import (
    Company,
    Corpus,
    HARDWARE_CATEGORIES,
    InstallBaseSimulator,
    InternalSalesDatabase,
    SimulatorConfig,
    build_default_catalog,
)
from repro.models import (
    BayesianPMF,
    ConditionalHeavyHitters,
    GenerativeModel,
    LatentDirichletAllocation,
    LSTMModel,
    NGramModel,
    ProductSkipGram,
    UnigramModel,
)
from repro.preprocessing import TfidfTransform
from repro.recommend import (
    RandomRecommender,
    RecommendationEvaluator,
    SlidingWindowSpec,
    ThresholdRecommender,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data
    "Company",
    "Corpus",
    "HARDWARE_CATEGORIES",
    "InstallBaseSimulator",
    "InternalSalesDatabase",
    "SimulatorConfig",
    "build_default_catalog",
    # models
    "GenerativeModel",
    "UnigramModel",
    "NGramModel",
    "LatentDirichletAllocation",
    "ConditionalHeavyHitters",
    "LSTMModel",
    "BayesianPMF",
    "ProductSkipGram",
    # preprocessing
    "TfidfTransform",
    # analysis
    "KMeans",
    "SpectralCoclustering",
    "TSNE",
    "cosine_similarity_matrix",
    "mean_confidence_interval",
    "sequentiality_test",
    "silhouette_score",
    "top_k_similar",
    # recommendation
    "RandomRecommender",
    "RecommendationEvaluator",
    "SlidingWindowSpec",
    "ThresholdRecommender",
    # application
    "FirmographicFilter",
    "SalesRecommendationTool",
]
