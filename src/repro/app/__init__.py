"""Sales application (Section 6): similarity search + whitespace analysis."""

from repro.app.drift import DriftMonitor, DriftReport, jensen_shannon_divergence
from repro.app.filters import FirmographicFilter
from repro.app.tool import SalesRecommendation, SalesRecommendationTool, SimilarCompany

__all__ = [
    "DriftMonitor",
    "DriftReport",
    "jensen_shannon_divergence",
    "FirmographicFilter",
    "SalesRecommendation",
    "SalesRecommendationTool",
    "SimilarCompany",
]
