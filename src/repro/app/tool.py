"""The deployed recommendation tool of Section 6.

The pipeline the paper ships: LDA company representations from the external
(HG-Data-style) corpus drive a top-k similar-company search; the internal
sales database then supplies the actual recommendations — products that
similar companies own but the target does not, weighted by the similarity
strength of the companies contributing the evidence ("the strength of the
recommendation is ... measured via the strength of the company similarity",
Section 4).  Firmographic filters restrict the candidate pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_matrix, check_positive_int
from repro.analysis.similarity import top_k_similar
from repro.app.filters import FirmographicFilter
from repro.data.corpus import Corpus
from repro.data.internal import InternalSalesDatabase
from repro.obs.logging import get_logger

__all__ = ["SimilarCompany", "SalesRecommendation", "SalesRecommendationTool"]


@dataclass(frozen=True)
class SimilarCompany:
    """One similarity-search hit."""

    duns: str
    name: str
    similarity: float


@dataclass(frozen=True)
class SalesRecommendation:
    """One recommended product with its evidence strength."""

    category: str
    strength: float
    n_supporters: int


class SalesRecommendationTool:
    """Similar-company search and whitespace recommendations.

    Parameters
    ----------
    corpus:
        The external universe the representations were learned on.
    features:
        Company representations aligned with ``corpus`` rows (typically LDA
        topic mixtures; any ``(N, L)`` array works).
    internal:
        The provider's internal database (clients, sold products,
        firmographics).
    """

    def __init__(
        self,
        corpus: Corpus,
        features: np.ndarray,
        internal: InternalSalesDatabase,
    ) -> None:
        matrix = check_matrix(features, "features")
        if matrix.shape[0] != corpus.n_companies:
            raise ValueError(
                f"features have {matrix.shape[0]} rows for {corpus.n_companies} companies"
            )
        missing = [
            c.duns.value for c in corpus.companies if c.duns.value not in internal
        ]
        if missing:
            raise ValueError(
                f"{len(missing)} companies lack firmographics, e.g. {missing[:3]}"
            )
        self.corpus = corpus
        self.features = matrix
        self.internal = internal
        self._index_by_duns = {
            c.duns.value: i for i, c in enumerate(corpus.companies)
        }

    # ------------------------------------------------------------------
    def company_index(self, duns: str) -> int:
        """Corpus row of a company by its D-U-N-S value."""
        try:
            return self._index_by_duns[duns]
        except KeyError:
            raise KeyError(f"unknown company {duns}") from None

    def similar_companies(
        self,
        duns: str,
        *,
        k: int = 10,
        filters: FirmographicFilter | None = None,
    ) -> list[SimilarCompany]:
        """Top-k companies most similar to ``duns`` passing the filters.

        Asking for more companies than the (possibly filtered) candidate
        pool contains clamps ``k`` to the pool size with a logged warning
        instead of erroring — a small pool after firmographic filtering
        still yields recommendations.
        """
        check_positive_int(k, "k")
        query = self.company_index(duns)
        if filters is None:
            mask = None
            available = self.corpus.n_companies - 1
        else:
            mask = np.array(
                [
                    filters.matches(self.internal.firmographics(c.duns.value))
                    for c in self.corpus.companies
                ],
                dtype=bool,
            )
            available = int(mask.sum()) - int(mask[query])
        if k > available:
            get_logger("app.tool").warning(
                "similar_companies k=%d exceeds the %d candidate companies "
                "for %s; clamping",
                k,
                available,
                duns,
            )
            if available == 0:
                return []
            k = available
        hits = top_k_similar(self.features, query, k, candidate_mask=mask)
        return [
            SimilarCompany(
                duns=self.corpus.companies[i].duns.value,
                name=self.corpus.companies[i].name,
                similarity=score,
            )
            for i, score in hits
        ]

    def recommend_products(
        self,
        duns: str,
        *,
        k_neighbors: int = 20,
        top_n: int = 5,
        filters: FirmographicFilter | None = None,
        clients_only: bool = True,
    ) -> list[SalesRecommendation]:
        """Whitespace products for ``duns``, ranked by similarity evidence.

        For each of the k most similar companies (optionally restricted to
        existing clients, whose install bases we know from the internal
        side), every product they own that the target lacks votes with the
        neighbour's similarity.  The vote totals, normalised by the total
        similarity mass, rank the recommendations.
        """
        check_positive_int(k_neighbors, "k_neighbors")
        check_positive_int(top_n, "top_n")
        target = self.corpus.companies[self.company_index(duns)]
        target_owned = target.categories
        neighbors = self.similar_companies(duns, k=k_neighbors, filters=filters)
        votes: dict[str, float] = {}
        supporters: dict[str, int] = {}
        total_similarity = 0.0
        for neighbor in neighbors:
            if clients_only and not self.internal.is_client(neighbor.duns):
                continue
            weight = max(neighbor.similarity, 0.0)
            if weight == 0.0:
                continue
            total_similarity += weight
            other = self.corpus.companies[self.company_index(neighbor.duns)]
            for category in other.categories - target_owned:
                votes[category] = votes.get(category, 0.0) + weight
                supporters[category] = supporters.get(category, 0) + 1
        if total_similarity == 0.0:
            return []
        ranked = sorted(
            votes.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            SalesRecommendation(
                category=category,
                strength=strength / total_similarity,
                n_supporters=supporters[category],
            )
            for category, strength in ranked[:top_n]
        ]

    def prospect_list(
        self,
        *,
        k_neighbors: int = 15,
        top_n: int = 3,
        max_prospects: int | None = None,
        filters: FirmographicFilter | None = None,
    ) -> list[tuple[str, float, list[SalesRecommendation]]]:
        """Prioritised non-client prospects by total whitespace strength.

        For every company that is not yet a client, computes its top
        recommendations and ranks prospects by the summed strength —
        the batch view a sales team consumes.  Returns
        ``(duns, total_strength, recommendations)`` triples, strongest
        first.
        """
        check_positive_int(k_neighbors, "k_neighbors")
        check_positive_int(top_n, "top_n")
        if max_prospects is not None:
            check_positive_int(max_prospects, "max_prospects")
        prospects = []
        for company in self.corpus.companies:
            duns = company.duns.value
            if self.internal.is_client(duns):
                continue
            if filters is not None and not filters.matches(
                self.internal.firmographics(duns)
            ):
                continue
            recommendations = self.recommend_products(
                duns, k_neighbors=k_neighbors, top_n=top_n
            )
            if recommendations:
                total = sum(r.strength for r in recommendations)
                prospects.append((duns, total, recommendations))
        prospects.sort(key=lambda item: (-item[1], item[0]))
        if max_prospects is not None:
            prospects = prospects[:max_prospects]
        return prospects

    def whitespace_report(self, duns: str) -> dict[str, frozenset[str]]:
        """Owned / sold-by-us / opportunity breakdown for one company."""
        company = self.corpus.companies[self.company_index(duns)]
        sold = self.internal.sold_products(duns)
        return {
            "owned": frozenset(company.categories),
            "sold_by_us": sold,
            "competitor_owned": frozenset(company.categories) - sold,
        }
