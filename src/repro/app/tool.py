"""The deployed recommendation tool of Section 6.

The pipeline the paper ships: LDA company representations from the external
(HG-Data-style) corpus drive a top-k similar-company search; the internal
sales database then supplies the actual recommendations — products that
similar companies own but the target does not, weighted by the similarity
strength of the companies contributing the evidence ("the strength of the
recommendation is ... measured via the strength of the company similarity",
Section 4).  Firmographic filters restrict the candidate pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_matrix, check_positive_int
from repro.analysis.similarity import top_k_from_scores
from repro.app.filters import FirmographicFilter
from repro.data.corpus import Corpus
from repro.data.internal import InternalSalesDatabase
from repro.obs.logging import get_logger

__all__ = ["SimilarCompany", "SalesRecommendation", "SalesRecommendationTool"]

#: Similarity backends ``similar_companies`` can answer from.
_BACKENDS = ("exact", "ann")


@dataclass(frozen=True)
class SimilarCompany:
    """One similarity-search hit."""

    duns: str
    name: str
    similarity: float


@dataclass(frozen=True)
class SalesRecommendation:
    """One recommended product with its evidence strength."""

    category: str
    strength: float
    n_supporters: int


class SalesRecommendationTool:
    """Similar-company search and whitespace recommendations.

    Parameters
    ----------
    corpus:
        The external universe the representations were learned on.
    features:
        Company representations aligned with ``corpus`` rows (typically LDA
        topic mixtures; any ``(N, L)`` array works).
    internal:
        The provider's internal database (clients, sold products,
        firmographics).
    """

    def __init__(
        self,
        corpus: Corpus,
        features: np.ndarray,
        internal: InternalSalesDatabase,
    ) -> None:
        matrix = check_matrix(features, "features")
        if matrix.shape[0] != corpus.n_companies:
            raise ValueError(
                f"features have {matrix.shape[0]} rows for {corpus.n_companies} companies"
            )
        missing = [
            c.duns.value for c in corpus.companies if c.duns.value not in internal
        ]
        if missing:
            raise ValueError(
                f"{len(missing)} companies lack firmographics, e.g. {missing[:3]}"
            )
        self.corpus = corpus
        self.features = matrix
        self.internal = internal
        self._index_by_duns = {
            c.duns.value: i for i, c in enumerate(corpus.companies)
        }
        self._refresh_unit()
        #: Optional ANN index over the unit feature rows (see enable_ann).
        self.ann_index = None
        #: Version stamp of the model whose features are loaded; bumped by
        #: refresh_features on hot-swap.
        self.model_version = 0

    def _refresh_unit(self) -> None:
        """Precompute unit-normalized feature rows for the exact backend.

        Normalizing once at construction (and on refresh) turns every
        exact similarity query into a single matrix–vector product.
        """
        norms = np.linalg.norm(self.features, axis=1)
        safe = np.where(norms == 0.0, 1.0, norms)
        self._unit = self.features / safe[:, None]
        self._zero_rows = norms == 0.0

    # ------------------------------------------------------------------
    def company_index(self, duns: str) -> int:
        """Corpus row of a company by its D-U-N-S value."""
        try:
            return self._index_by_duns[duns]
        except KeyError:
            raise KeyError(f"unknown company {duns}") from None

    def enable_ann(
        self,
        *,
        n_tables: int = 8,
        n_bits: int = 12,
        seed: int = 0,
        min_candidates: int = 64,
        min_recall: float | None = None,
    ):
        """Build the LSH similarity index over the current features.

        Returns the built :class:`~repro.serve.ann.LSHIndex` (also stored
        on ``self.ann_index``).  The build runs the recall@10 self-check
        against the exact backend; passing ``min_recall`` makes a weak
        build fail loudly instead of serving bad neighbors.
        """
        from repro.serve.ann import LSHIndex  # app must not hard-import serve

        self.ann_index = LSHIndex.build(
            self.features,
            n_tables=n_tables,
            n_bits=n_bits,
            seed=seed,
            min_candidates=min_candidates,
            model_version=self.model_version,
            min_recall=min_recall,
        )
        return self.ann_index

    def refresh_features(
        self, features: np.ndarray, *, model_version: int | None = None
    ) -> None:
        """Swap in new company representations (the hot-swap hook).

        The exact backend's unit rows are recomputed and the ANN index, if
        enabled, is re-populated through its incremental-add path under
        the same seeded hyperplanes.  ``model_version`` stamps both with
        the registry generation that produced the features.
        """
        matrix = check_matrix(features, "features")
        if matrix.shape[0] != self.corpus.n_companies:
            raise ValueError(
                f"features have {matrix.shape[0]} rows for "
                f"{self.corpus.n_companies} companies"
            )
        self.features = matrix
        self._refresh_unit()
        if model_version is not None:
            self.model_version = model_version
        if self.ann_index is not None:
            if matrix.shape[1] != self.ann_index.dim:
                from repro.serve.ann import LSHIndex

                self.ann_index = LSHIndex.build(
                    matrix,
                    n_tables=self.ann_index.n_tables,
                    n_bits=self.ann_index.n_bits,
                    seed=self.ann_index.seed,
                    min_candidates=self.ann_index.min_candidates,
                    model_version=self.model_version,
                )
            else:
                self.ann_index.rebuild(matrix, model_version=self.model_version)

    def similar_companies(
        self,
        duns: str,
        *,
        k: int = 10,
        filters: FirmographicFilter | None = None,
        backend: str = "exact",
    ) -> list[SimilarCompany]:
        """Top-k companies most similar to ``duns`` passing the filters.

        See :meth:`similar_companies_detail`; this drops the backend tag.
        """
        return self.similar_companies_detail(
            duns, k=k, filters=filters, backend=backend
        )[0]

    def similar_companies_detail(
        self,
        duns: str,
        *,
        k: int = 10,
        filters: FirmographicFilter | None = None,
        backend: str = "exact",
    ) -> tuple[list[SimilarCompany], str]:
        """Top-k similar companies plus the backend that answered.

        ``backend="exact"`` computes true cosine scores with one
        matrix–vector product over the precomputed unit rows and selects
        with ``argpartition`` — no per-company loop, no full sort.
        ``backend="ann"`` probes the LSH index and exactly re-ranks the
        candidate set; it falls back to ``exact`` (reported as such) when
        no index is built or when firmographic filters are requested,
        since the hash tables know nothing about firmographics.

        Asking for more companies than the (possibly filtered) candidate
        pool contains clamps ``k`` to the pool size with a logged warning
        instead of erroring — a small pool after firmographic filtering
        still yields recommendations.
        """
        check_positive_int(k, "k")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        query = self.company_index(duns)
        if backend == "ann" and (self.ann_index is None or filters is not None):
            backend = "exact"
        if filters is None:
            mask = None
            available = self.corpus.n_companies - 1
        else:
            mask = np.array(
                [
                    filters.matches(self.internal.firmographics(c.duns.value))
                    for c in self.corpus.companies
                ],
                dtype=bool,
            )
            available = int(mask.sum()) - int(mask[query])
        if k > available:
            get_logger("app.tool").warning(
                "similar_companies k=%d exceeds the %d candidate companies "
                "for %s; clamping",
                k,
                available,
                duns,
            )
            if available == 0:
                return [], backend
            k = available
        if backend == "ann":
            hits = self.ann_index.search(self.features[query], k, exclude=query)
        else:
            scores = self._unit @ self._unit[query]
            if self._zero_rows[query]:
                scores = np.zeros(self.corpus.n_companies)
            scores[self._zero_rows] = 0.0
            ranked = top_k_from_scores(scores, k, exclude=query, candidate_mask=mask)
            hits = [(int(i), float(scores[i])) for i in ranked]
        return [
            SimilarCompany(
                duns=self.corpus.companies[i].duns.value,
                name=self.corpus.companies[i].name,
                similarity=score,
            )
            for i, score in hits
        ], backend

    def recommend_products(
        self,
        duns: str,
        *,
        k_neighbors: int = 20,
        top_n: int = 5,
        filters: FirmographicFilter | None = None,
        clients_only: bool = True,
    ) -> list[SalesRecommendation]:
        """Whitespace products for ``duns``, ranked by similarity evidence.

        For each of the k most similar companies (optionally restricted to
        existing clients, whose install bases we know from the internal
        side), every product they own that the target lacks votes with the
        neighbour's similarity.  The vote totals, normalised by the total
        similarity mass, rank the recommendations.
        """
        check_positive_int(k_neighbors, "k_neighbors")
        check_positive_int(top_n, "top_n")
        target = self.corpus.companies[self.company_index(duns)]
        target_owned = target.categories
        neighbors = self.similar_companies(duns, k=k_neighbors, filters=filters)
        votes: dict[str, float] = {}
        supporters: dict[str, int] = {}
        total_similarity = 0.0
        for neighbor in neighbors:
            if clients_only and not self.internal.is_client(neighbor.duns):
                continue
            weight = max(neighbor.similarity, 0.0)
            if weight == 0.0:
                continue
            total_similarity += weight
            other = self.corpus.companies[self.company_index(neighbor.duns)]
            for category in other.categories - target_owned:
                votes[category] = votes.get(category, 0.0) + weight
                supporters[category] = supporters.get(category, 0) + 1
        if total_similarity == 0.0:
            return []
        ranked = sorted(
            votes.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            SalesRecommendation(
                category=category,
                strength=strength / total_similarity,
                n_supporters=supporters[category],
            )
            for category, strength in ranked[:top_n]
        ]

    def prospect_list(
        self,
        *,
        k_neighbors: int = 15,
        top_n: int = 3,
        max_prospects: int | None = None,
        filters: FirmographicFilter | None = None,
    ) -> list[tuple[str, float, list[SalesRecommendation]]]:
        """Prioritised non-client prospects by total whitespace strength.

        For every company that is not yet a client, computes its top
        recommendations and ranks prospects by the summed strength —
        the batch view a sales team consumes.  Returns
        ``(duns, total_strength, recommendations)`` triples, strongest
        first.
        """
        check_positive_int(k_neighbors, "k_neighbors")
        check_positive_int(top_n, "top_n")
        if max_prospects is not None:
            check_positive_int(max_prospects, "max_prospects")
        prospects = []
        for company in self.corpus.companies:
            duns = company.duns.value
            if self.internal.is_client(duns):
                continue
            if filters is not None and not filters.matches(
                self.internal.firmographics(duns)
            ):
                continue
            recommendations = self.recommend_products(
                duns, k_neighbors=k_neighbors, top_n=top_n
            )
            if recommendations:
                total = sum(r.strength for r in recommendations)
                prospects.append((duns, total, recommendations))
        prospects.sort(key=lambda item: (-item[1], item[0]))
        if max_prospects is not None:
            prospects = prospects[:max_prospects]
        return prospects

    def whitespace_report(self, duns: str) -> dict[str, frozenset[str]]:
        """Owned / sold-by-us / opportunity breakdown for one company."""
        company = self.corpus.companies[self.company_index(duns)]
        sold = self.internal.sold_products(duns)
        return {
            "owned": frozenset(company.categories),
            "sold_by_us": sold,
            "competitor_owned": frozenset(company.categories) - sold,
        }
