"""Firmographic filters for the similar-company search.

Section 6: "In addition to the global similarity search, the tool also
provides the user with filtering capabilities based on industry, location,
number of employees and revenue."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.internal import FirmographicRecord

__all__ = ["FirmographicFilter"]


@dataclass(frozen=True)
class FirmographicFilter:
    """Conjunctive filter over firmographic attributes.

    ``None`` fields are unconstrained.  Ranges are inclusive.
    """

    sic2: int | None = None
    country: str | None = None
    min_employees: int | None = None
    max_employees: int | None = None
    min_revenue_musd: float | None = None
    max_revenue_musd: float | None = None

    def __post_init__(self) -> None:
        if (
            self.min_employees is not None
            and self.max_employees is not None
            and self.min_employees > self.max_employees
        ):
            raise ValueError("min_employees exceeds max_employees")
        if (
            self.min_revenue_musd is not None
            and self.max_revenue_musd is not None
            and self.min_revenue_musd > self.max_revenue_musd
        ):
            raise ValueError("min_revenue_musd exceeds max_revenue_musd")

    def matches(self, record: FirmographicRecord) -> bool:
        """Whether a company's firmographics pass every set constraint."""
        if self.sic2 is not None and record.sic2 != self.sic2:
            return False
        if self.country is not None and record.country != self.country:
            return False
        if self.min_employees is not None and record.employees < self.min_employees:
            return False
        if self.max_employees is not None and record.employees > self.max_employees:
            return False
        if self.min_revenue_musd is not None and record.revenue_musd < self.min_revenue_musd:
            return False
        if self.max_revenue_musd is not None and record.revenue_musd > self.max_revenue_musd:
            return False
        return True
