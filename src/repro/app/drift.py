"""Concept-shift detection for the deployed model (Section 6).

"As LDA training is not done in a streaming fashion, it is done offline and
can be retrained on demand or when the concept shift is taken place."  The
tool therefore needs a way to *notice* concept shift.  :class:`DriftMonitor`
watches two complementary signals on incoming company batches:

* **fit degradation** — the deployed model's perplexity on the new batch
  relative to its perplexity on a held-out reference slice;
* **marginal shift** — Jensen-Shannon divergence between the reference
  product-frequency distribution and the new batch's.

Either signal crossing its threshold flags the batch, and the monitor keeps
an audit trail of every check.
"""

from __future__ import annotations

import datetime as dt
import math
from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive_float
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel

__all__ = ["DriftReport", "DriftMonitor", "jensen_shannon_divergence"]


def jensen_shannon_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """JS divergence (base e) between two distributions on the same support.

    Symmetric, bounded by ln 2; zero iff the distributions coincide.
    """
    p = np.atleast_1d(np.asarray(p, dtype=np.float64))
    q = np.atleast_1d(np.asarray(q, dtype=np.float64))
    if p.ndim != 1 or q.ndim != 1:
        raise ValueError(
            f"distributions must be 1-D, got shapes {p.shape} and {q.shape}"
        )
    if p.shape != q.shape:
        raise ValueError(
            f"length mismatch: {p.shape[0]} vs {q.shape[0]} bins — "
            "distributions must share a support"
        )
    # NaN slips past the `< 0` check below (NaN comparisons are False)
    # and would propagate into the result; reject it explicitly.
    if not (np.all(np.isfinite(p)) and np.all(np.isfinite(q))):
        raise ValueError("distributions must be finite (no NaN/inf bins)")
    if np.any(p < 0) or np.any(q < 0):
        raise ValueError("distributions must be non-negative")
    p_sum, q_sum = p.sum(), q.sum()
    if p_sum <= 0 or q_sum <= 0:
        raise ValueError("distributions must have positive mass")
    p = p / p_sum
    q = q / q_sum
    mix = (p + q) / 2.0

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float((a[mask] * np.log(a[mask] / b[mask])).sum())

    return 0.5 * _kl(p, mix) + 0.5 * _kl(q, mix)


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check."""

    checked_at: dt.date | None
    n_companies: int
    perplexity: float
    reference_perplexity: float
    perplexity_ratio: float
    js_divergence: float
    drifted: bool
    #: True when the batch perplexity came back NaN/inf — a degenerate
    #: batch counts as fit degradation instead of silently never flagging.
    degenerate: bool = False

    def reasons(self) -> list[str]:
        """Human-readable explanation of why (or why not) the flag fired."""
        notes = []
        if self.degenerate:
            notes.append(
                f"non-finite batch perplexity {self.perplexity} — degenerate "
                "batch treated as fit degradation"
            )
        else:
            notes.append(
                f"perplexity {self.perplexity:.2f} vs reference "
                f"{self.reference_perplexity:.2f} (ratio {self.perplexity_ratio:.2f})"
            )
        notes.append(f"product-frequency JS divergence {self.js_divergence:.4f}")
        notes.append("drift detected" if self.drifted else "no drift")
        return notes


class DriftMonitor:
    """Watches incoming company batches for concept shift.

    Parameters
    ----------
    model:
        The deployed (fitted) generative model.
    reference:
        A held-out slice from the training period; its perplexity and
        product frequencies are the baseline.
    perplexity_tolerance:
        Flag when new-batch perplexity exceeds reference * tolerance.
    divergence_threshold:
        Flag when the product-frequency JS divergence exceeds this.
    """

    def __init__(
        self,
        model: GenerativeModel,
        reference: Corpus,
        *,
        perplexity_tolerance: float = 1.25,
        divergence_threshold: float = 0.05,
    ) -> None:
        if not isinstance(model, GenerativeModel) or not model.is_fitted:
            raise ValueError("model must be a fitted GenerativeModel")
        self.model = model
        self.perplexity_tolerance = check_positive_float(
            perplexity_tolerance, "perplexity_tolerance"
        )
        if self.perplexity_tolerance < 1.0:
            raise ValueError("perplexity_tolerance must be >= 1")
        self.divergence_threshold = check_positive_float(
            divergence_threshold, "divergence_threshold"
        )
        self._reference_perplexity = model.perplexity(reference)
        if not math.isfinite(self._reference_perplexity):
            raise ValueError(
                f"model perplexity on the reference slice is non-finite "
                f"({self._reference_perplexity}); the monitor needs a sound baseline"
            )
        counts = reference.binary_matrix().sum(axis=0)
        self._reference_frequency = counts / counts.sum()
        self.history: list[DriftReport] = []

    @property
    def reference_perplexity(self) -> float:
        """Model perplexity on the reference slice."""
        return self._reference_perplexity

    def check(
        self, batch: Corpus, *, checked_at: dt.date | None = None
    ) -> DriftReport:
        """Score one incoming batch; appends the report to the history."""
        if batch.n_products != len(self._reference_frequency):
            raise ValueError("batch vocabulary does not match the reference")
        perplexity = self.model.perplexity(batch)
        degenerate = not math.isfinite(perplexity)
        # A NaN batch perplexity would otherwise poison the ratio (NaN
        # compares False against any threshold) and the monitor would
        # silently never trigger; flag it explicitly instead.
        ratio = float("inf") if degenerate else perplexity / self._reference_perplexity
        counts = batch.binary_matrix().sum(axis=0)
        divergence = jensen_shannon_divergence(self._reference_frequency, counts)
        report = DriftReport(
            checked_at=checked_at,
            n_companies=batch.n_companies,
            perplexity=perplexity,
            reference_perplexity=self._reference_perplexity,
            perplexity_ratio=ratio,
            js_divergence=divergence,
            drifted=(
                degenerate
                or ratio > self.perplexity_tolerance
                or divergence > self.divergence_threshold
            ),
            degenerate=degenerate,
        )
        self.history.append(report)
        return report

    def should_retrain(self, *, consecutive: int = 2) -> bool:
        """True when the last ``consecutive`` checks all flagged drift.

        Requiring more than one flagged batch avoids retraining on a single
        noisy sample.
        """
        if consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        if len(self.history) < consecutive:
            return False
        return all(report.drifted for report in self.history[-consecutive:])
