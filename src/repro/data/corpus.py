"""Corpus: the modelling view of a set of aggregated companies.

Section 2 of the paper defines two inputs for the models:

* ``A`` — the binary company x product matrix (equations 2–3), used by the
  non-sequential models (unigram, LDA, BPMF, TF-IDF transforms);
* ``A^S`` — per-company product sequences sorted by first-appearance date,
  used by the sequential models (n-gram, CHH, LSTM).

:class:`Corpus` materialises both views over a shared vocabulary and knows
how to split itself 70/10/20 into train/validation/test (Section 5) and how
to truncate itself at a date for the sliding-window recommendation harness.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

import numpy as np

from repro._validation import as_rng, check_fraction_triple
from repro.data.company import Company

__all__ = ["Corpus", "CorpusSplit"]


@dataclass(frozen=True)
class CorpusSplit:
    """Train/validation/test partition of a corpus."""

    train: "Corpus"
    validation: "Corpus"
    test: "Corpus"

    def __iter__(self):
        return iter((self.train, self.validation, self.test))


class Corpus:
    """Vocabulary-indexed view over aggregated companies.

    Parameters
    ----------
    companies:
        Aggregated (domestic-ultimate) companies.
    vocabulary:
        Category order defining the columns of the binary matrix and the
        token ids of the sequences.  Categories owned by a company but
        missing from the vocabulary raise — silent vocabulary drift between
        corpora is the classic source of irreproducible results.
    """

    def __init__(self, companies: list[Company], vocabulary: tuple[str, ...]) -> None:
        if not companies:
            raise ValueError("corpus must contain at least one company")
        if len(set(vocabulary)) != len(vocabulary):
            raise ValueError("vocabulary contains duplicate categories")
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        self._companies = list(companies)
        self._vocabulary = tuple(vocabulary)
        self._token = {name: i for i, name in enumerate(self._vocabulary)}
        for company in self._companies:
            unknown = company.categories - self._token.keys()
            if unknown:
                raise ValueError(
                    f"company {company.name!r} owns categories outside the "
                    f"vocabulary: {sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def companies(self) -> list[Company]:
        """The underlying companies (shared, do not mutate)."""
        return self._companies

    @property
    def vocabulary(self) -> tuple[str, ...]:
        """Category names in column/token order."""
        return self._vocabulary

    @property
    def n_companies(self) -> int:
        """Number of companies (matrix rows)."""
        return len(self._companies)

    @property
    def n_products(self) -> int:
        """Vocabulary size M (matrix columns)."""
        return len(self._vocabulary)

    def token(self, category: str) -> int:
        """Token id of a category name."""
        try:
            return self._token[category]
        except KeyError:
            raise KeyError(f"category {category!r} not in vocabulary") from None

    def category(self, token: int) -> str:
        """Category name of a token id."""
        if not 0 <= token < len(self._vocabulary):
            raise IndexError(f"token {token} out of range")
        return self._vocabulary[token]

    def __len__(self) -> int:
        return len(self._companies)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Corpus(n_companies={self.n_companies}, n_products={self.n_products})"

    # ------------------------------------------------------------------
    # Model inputs
    # ------------------------------------------------------------------
    def binary_matrix(self) -> np.ndarray:
        """The matrix ``A`` of Section 2: shape (N, M), dtype float64, 0/1."""
        matrix = np.zeros((self.n_companies, self.n_products))
        for i, company in enumerate(self._companies):
            for category in company.categories:
                matrix[i, self._token[category]] = 1.0
        return matrix

    def sequences(self) -> list[list[int]]:
        """The sequences ``A^S``: token ids sorted by first-seen date."""
        return [
            [self._token[category] for category, _ in company.sorted_categories()]
            for company in self._companies
        ]

    def dated_sequences(self) -> list[list[tuple[int, dt.date]]]:
        """Sequences with their first-seen dates, for windowed evaluation."""
        return [
            [
                (self._token[category], date)
                for category, date in company.sorted_categories()
            ]
            for company in self._companies
        ]

    def industries(self) -> np.ndarray:
        """SIC2 code per company, aligned with matrix rows."""
        return np.array([company.sic2 for company in self._companies], dtype=np.int64)

    def total_products(self) -> int:
        """Total number of (company, product) pairs — the ``n`` of perplexity."""
        return sum(len(company) for company in self._companies)

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def split(
        self,
        fractions: tuple[float, float, float] = (0.7, 0.1, 0.2),
        *,
        seed: int | np.random.Generator | None = 0,
    ) -> CorpusSplit:
        """Random 70/10/20 company-level split (Section 5's protocol).

        Every resulting part shares this corpus's vocabulary.  Fractions must
        sum to one; the validation or test part may be empty only if its
        fraction is zero and the company count rounds it away — an empty
        *train* part is always an error.
        """
        train_frac, valid_frac, __ = check_fraction_triple(fractions)
        rng = as_rng(seed)
        order = rng.permutation(self.n_companies)
        n_train = int(round(train_frac * self.n_companies))
        n_valid = int(round(valid_frac * self.n_companies))
        n_train = max(1, min(n_train, self.n_companies))
        train_idx = order[:n_train]
        valid_idx = order[n_train : n_train + n_valid]
        test_idx = order[n_train + n_valid :]
        if len(test_idx) == 0 and fractions[2] > 0:
            raise ValueError(
                f"test fraction {fractions[2]} yields no companies for corpus "
                f"of size {self.n_companies}; use a larger corpus"
            )
        return CorpusSplit(
            train=self.subset(train_idx),
            validation=self.subset(valid_idx) if len(valid_idx) else self.subset(train_idx[:1]),
            test=self.subset(test_idx) if len(test_idx) else self.subset(train_idx[:1]),
        )

    def subset(self, indices: np.ndarray | list[int]) -> "Corpus":
        """Corpus over a subset of companies, preserving the vocabulary."""
        index_list = [int(i) for i in np.asarray(indices).ravel()]
        if not index_list:
            raise ValueError("subset requires at least one index")
        return Corpus([self._companies[i] for i in index_list], self._vocabulary)

    def truncated_before(self, cutoff: dt.date) -> "Corpus":
        """Corpus containing only products first seen strictly before ``cutoff``.

        This is the training view of a sliding recommendation window: "all
        the previous information that happened before the start of a sliding
        window is used for model training" (Section 4.3).  Companies with no
        products before the cutoff are dropped.
        """
        truncated = []
        for company in self._companies:
            kept = {c: d for c, d in company.first_seen.items() if d < cutoff}
            if kept:
                truncated.append(
                    Company(
                        duns=company.duns,
                        name=company.name,
                        country=company.country,
                        sic2=company.sic2,
                        first_seen=kept,
                        n_sites=company.n_sites,
                    )
                )
        if not truncated:
            raise ValueError(f"no company has any product before {cutoff}")
        return Corpus(truncated, self._vocabulary)

    def restrict_vocabulary(self, vocabulary: tuple[str, ...]) -> "Corpus":
        """Project the corpus onto a smaller vocabulary (Section 2's 91 -> 38).

        Products outside ``vocabulary`` are dropped from every company;
        companies left without any product are removed.  This is the
        restriction step the paper applies to keep only the hardware and
        low-level-management categories.
        """
        if len(set(vocabulary)) != len(vocabulary) or not vocabulary:
            raise ValueError("vocabulary must be non-empty and duplicate-free")
        keep = set(vocabulary)
        unknown = keep - set(self._vocabulary)
        if unknown:
            raise ValueError(
                f"restriction vocabulary contains unknown categories: {sorted(unknown)}"
            )
        restricted = []
        for company in self._companies:
            kept = {c: d for c, d in company.first_seen.items() if c in keep}
            if kept:
                restricted.append(
                    Company(
                        duns=company.duns,
                        name=company.name,
                        country=company.country,
                        sic2=company.sic2,
                        first_seen=kept,
                        n_sites=company.n_sites,
                    )
                )
        if not restricted:
            raise ValueError("restriction removed every company from the corpus")
        return Corpus(restricted, tuple(vocabulary))

    @classmethod
    def from_companies(cls, companies: list[Company]) -> "Corpus":
        """Build a corpus whose vocabulary is the sorted union of categories."""
        vocabulary = tuple(sorted({c for company in companies for c in company.categories}))
        return cls(companies, vocabulary)
