"""Corpus: the modelling view of a set of aggregated companies.

Section 2 of the paper defines two inputs for the models:

* ``A`` — the binary company x product matrix (equations 2–3), used by the
  non-sequential models (unigram, LDA, BPMF, TF-IDF transforms);
* ``A^S`` — per-company product sequences sorted by first-appearance date,
  used by the sequential models (n-gram, CHH, LSTM).

:class:`Corpus` materialises both views over a shared vocabulary and knows
how to split itself 70/10/20 into train/validation/test (Section 5) and how
to truncate itself at a date for the sliding-window recommendation harness.

Two implementations share the API: this in-memory class over
:class:`~repro.data.company.Company` objects, and the memmap-backed
:class:`~repro.data.columnar.ColumnarCorpus` over an on-disk columnar
store.  Both build the matrix from the same columnar token/indptr arrays
(the in-memory corpus derives them lazily), so the views are bit-identical
across backends.
"""

from __future__ import annotations

import datetime as dt
import hashlib
from dataclasses import dataclass

import numpy as np

from repro._validation import as_rng, check_fraction_triple
from repro.data.company import Company

__all__ = ["Corpus", "CorpusSplit"]


@dataclass(frozen=True)
class CorpusSplit:
    """Train/validation/test partition of a corpus."""

    train: "Corpus"
    validation: "Corpus"
    test: "Corpus"

    def __iter__(self):
        return iter((self.train, self.validation, self.test))


def _gather_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat indices covering ``[starts[i], starts[i] + lengths[i])`` per row.

    The standard vectorised multi-slice gather: one ``np.arange`` over the
    total length, rebased per row.  Returns an empty int64 array when every
    range is empty.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    row_base = np.repeat(starts - np.concatenate(([0], np.cumsum(lengths[:-1]))), lengths)
    return np.arange(total, dtype=np.int64) + row_base


class Corpus:
    """Vocabulary-indexed view over aggregated companies.

    Parameters
    ----------
    companies:
        Aggregated (domestic-ultimate) companies.
    vocabulary:
        Category order defining the columns of the binary matrix and the
        token ids of the sequences.  Categories owned by a company but
        missing from the vocabulary raise — silent vocabulary drift between
        corpora is the classic source of irreproducible results.
    """

    def __init__(self, companies: list[Company], vocabulary: tuple[str, ...]) -> None:
        if not companies:
            raise ValueError("corpus must contain at least one company")
        if len(set(vocabulary)) != len(vocabulary):
            raise ValueError("vocabulary contains duplicate categories")
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        self._companies = list(companies)
        self._vocabulary = tuple(vocabulary)
        self._token = {name: i for i, name in enumerate(self._vocabulary)}
        self._token_cols: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._fingerprint: str | None = None
        for company in self._companies:
            unknown = company.categories - self._token.keys()
            if unknown:
                raise ValueError(
                    f"company {company.name!r} owns categories outside the "
                    f"vocabulary: {sorted(unknown)}"
                )

    @classmethod
    def _from_validated(
        cls, companies: list[Company], vocabulary: tuple[str, ...]
    ) -> "Corpus":
        """View over already-validated companies; empty views are allowed.

        Internal constructor used by :meth:`split` / :meth:`subset` so a
        zero-company part (a fraction of exactly zero) is representable
        without re-running the per-company vocabulary check.
        """
        corpus = cls.__new__(cls)
        corpus._companies = list(companies)
        corpus._vocabulary = tuple(vocabulary)
        corpus._token = {name: i for i, name in enumerate(corpus._vocabulary)}
        corpus._token_cols = None
        corpus._fingerprint = None
        return corpus

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def companies(self) -> list[Company]:
        """The underlying companies (shared, do not mutate)."""
        return self._companies

    @property
    def vocabulary(self) -> tuple[str, ...]:
        """Category names in column/token order."""
        return self._vocabulary

    @property
    def n_companies(self) -> int:
        """Number of companies (matrix rows)."""
        return len(self._companies)

    @property
    def n_products(self) -> int:
        """Vocabulary size M (matrix columns)."""
        return len(self._vocabulary)

    def token(self, category: str) -> int:
        """Token id of a category name."""
        try:
            return self._token[category]
        except KeyError:
            raise KeyError(f"category {category!r} not in vocabulary") from None

    def category(self, token: int) -> str:
        """Category name of a token id."""
        if not 0 <= token < len(self._vocabulary):
            raise IndexError(f"token {token} out of range")
        return self._vocabulary[token]

    def __len__(self) -> int:
        return self.n_companies

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Corpus(n_companies={self.n_companies}, n_products={self.n_products})"

    # ------------------------------------------------------------------
    # Columnar token arrays (shared substrate of the vectorised views)
    # ------------------------------------------------------------------
    def _row_token_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, ends, tokens)``: per-row slices into a flat token column.

        ``tokens[starts[i]:ends[i]]`` are row ``i``'s token ids in
        first-seen order (date, then category name).  Built once per corpus
        and cached; the memmap-backed corpus serves the same triple straight
        from its on-disk columns.
        """
        if self._token_cols is None:
            counts = np.fromiter(
                (len(c.first_seen) for c in self._companies),
                dtype=np.int64,
                count=len(self._companies),
            )
            indptr = np.zeros(len(self._companies) + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            tokens = np.empty(int(indptr[-1]), dtype=np.int32)
            dates = np.empty(int(indptr[-1]), dtype=np.int32)
            pos = 0
            for company in self._companies:
                for category, date in company.sorted_categories():
                    tokens[pos] = self._token[category]
                    dates[pos] = date.toordinal()
                    pos += 1
            self._token_cols = (indptr, tokens, dates)
        indptr, tokens, __ = self._token_cols
        return indptr[:-1], indptr[1:], tokens

    # ------------------------------------------------------------------
    # Model inputs
    # ------------------------------------------------------------------
    def binary_matrix(self, rows: np.ndarray | list[int] | None = None) -> np.ndarray:
        """The matrix ``A`` of Section 2: shape (N, M), dtype float64, 0/1.

        ``rows`` selects a subset of matrix rows (in the given order), so
        large corpora can be streamed in bounded-memory chunks:
        ``corpus.binary_matrix(rows=range(0, 4096))`` materialises only that
        chunk.  The default materialises every company, exactly as before.
        """
        starts, ends, tokens = self._row_token_arrays()
        if rows is not None:
            index = np.asarray(rows)
            if index.dtype.kind not in "iu":
                if index.size == 0:
                    index = index.astype(np.int64)
                else:
                    raise TypeError(
                        f"rows must be integer indices, got dtype {index.dtype}"
                    )
            index = index.ravel().astype(np.int64)
            if index.size and (index.min() < 0 or index.max() >= len(starts)):
                raise IndexError(
                    f"rows out of range for corpus of {len(starts)} companies"
                )
            starts, ends = starts[index], ends[index]
        lengths = ends - starts
        matrix = np.zeros((len(starts), self.n_products))
        flat = _gather_ranges(starts, lengths)
        if flat.size:
            row_ids = np.repeat(np.arange(len(starts)), lengths)
            matrix[row_ids, np.asarray(tokens[flat], dtype=np.int64)] = 1.0
        return matrix

    def iter_matrix_chunks(self, chunk_size: int = 8192):
        """Yield ``(row_offset, chunk_matrix)`` pairs covering every company.

        The streaming counterpart of :meth:`binary_matrix` for evaluators
        that scan the universe without holding the dense ``(N, M)`` array.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for lo in range(0, self.n_companies, chunk_size):
            hi = min(lo + chunk_size, self.n_companies)
            yield lo, self.binary_matrix(rows=np.arange(lo, hi))

    def sequences(self) -> list[list[int]]:
        """The sequences ``A^S``: token ids sorted by first-seen date."""
        return [
            [self._token[category] for category, _ in company.sorted_categories()]
            for company in self._companies
        ]

    def dated_sequences(self) -> list[list[tuple[int, dt.date]]]:
        """Sequences with their first-seen dates, for windowed evaluation."""
        return [
            [
                (self._token[category], date)
                for category, date in company.sorted_categories()
            ]
            for company in self._companies
        ]

    def industries(self) -> np.ndarray:
        """SIC2 code per company, aligned with matrix rows."""
        return np.array([company.sic2 for company in self._companies], dtype=np.int64)

    def total_products(self) -> int:
        """Total number of (company, product) pairs — the ``n`` of perplexity."""
        return sum(len(company) for company in self._companies)

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable hex digest of the corpus's full modelling content.

        Covers the vocabulary (order included — it defines token ids) and,
        per company, identity, firmographics and every install record
        (category + first-seen date).  Two corpora with identical
        fingerprints produce identical binary matrices, sequences and
        truncations.  Computed once and cached (companies are not to be
        mutated); the columnar corpus reads it from its manifest instead
        of walking N rows.
        """
        if self._fingerprint is None:
            self._fingerprint = self._compute_fingerprint()
        return self._fingerprint

    def _compute_fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(repr(self._vocabulary).encode())
        for company in self._companies:
            update_fingerprint(digest, company)
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def split(
        self,
        fractions: tuple[float, float, float] = (0.7, 0.1, 0.2),
        *,
        seed: int | np.random.Generator | None = 0,
    ) -> CorpusSplit:
        """Random 70/10/20 company-level split (Section 5's protocol).

        Every resulting part shares this corpus's vocabulary.  Fractions
        must sum to one.  A part whose fraction is exactly zero comes back
        as a true empty corpus view; a *positive* fraction that rounds to
        zero companies raises instead — a training company is never
        substituted into validation or test, so no part can silently
        evaluate on a train row.
        """
        train_frac, valid_frac, __ = check_fraction_triple(fractions)
        rng = as_rng(seed)
        order = rng.permutation(self.n_companies)
        n_train = int(round(train_frac * self.n_companies))
        n_valid = int(round(valid_frac * self.n_companies))
        n_train = max(1, min(n_train, self.n_companies))
        train_idx = order[:n_train]
        valid_idx = order[n_train : n_train + n_valid]
        test_idx = order[n_train + n_valid :]
        for name, index, fraction in (
            ("validation", valid_idx, fractions[1]),
            ("test", test_idx, fractions[2]),
        ):
            if len(index) == 0 and fraction > 0:
                raise ValueError(
                    f"{name} fraction {fraction} yields no companies for corpus "
                    f"of size {self.n_companies}; use a larger corpus"
                )
        return CorpusSplit(
            train=self._select(train_idx),
            validation=self._select(valid_idx),
            test=self._select(test_idx),
        )

    def _select(self, indices: np.ndarray) -> "Corpus":
        """Index view over already-validated row indices (may be empty)."""
        picked = [self._companies[int(i)] for i in indices]
        return Corpus._from_validated(picked, self._vocabulary)

    def subset(
        self,
        indices: np.ndarray | list[int],
        *,
        allow_duplicates: bool = False,
    ) -> "Corpus":
        """Corpus over a subset of companies, preserving the vocabulary.

        Indices must be unique integers in ``[0, n_companies)``: negative
        indices are rejected rather than Python-wrapped, and duplicates are
        rejected so an evaluation subset can never silently double-count a
        company.  ``allow_duplicates=True`` opts into repetition for callers
        that genuinely want it (e.g. scoring-additivity checks).
        """
        array = np.asarray(indices)
        if array.size == 0:
            raise ValueError("subset requires at least one index")
        if array.dtype.kind not in "iu":
            raise TypeError(
                f"subset indices must be integers, got dtype {array.dtype}"
            )
        array = array.ravel().astype(np.int64)
        if int(array.min()) < 0 or int(array.max()) >= self.n_companies:
            raise ValueError(
                f"subset indices must be in [0, {self.n_companies}); negative "
                "indices are not wrapped"
            )
        if not allow_duplicates and len(np.unique(array)) != len(array):
            raise ValueError(
                "subset indices contain duplicates; a company would be "
                "double-counted (pass allow_duplicates=True to permit this)"
            )
        return self._select(array)

    def truncated_before(self, cutoff: dt.date) -> "Corpus":
        """Corpus containing only products first seen strictly before ``cutoff``.

        This is the training view of a sliding recommendation window: "all
        the previous information that happened before the start of a sliding
        window is used for model training" (Section 4.3).  Companies with no
        products before the cutoff are dropped.
        """
        truncated = []
        for company in self._companies:
            kept = {c: d for c, d in company.first_seen.items() if d < cutoff}
            if kept:
                truncated.append(
                    Company(
                        duns=company.duns,
                        name=company.name,
                        country=company.country,
                        sic2=company.sic2,
                        first_seen=kept,
                        n_sites=company.n_sites,
                    )
                )
        if not truncated:
            raise ValueError(f"no company has any product before {cutoff}")
        return Corpus(truncated, self._vocabulary)

    def restrict_vocabulary(self, vocabulary: tuple[str, ...]) -> "Corpus":
        """Project the corpus onto a smaller vocabulary (Section 2's 91 -> 38).

        Products outside ``vocabulary`` are dropped from every company;
        companies left without any product are removed.  This is the
        restriction step the paper applies to keep only the hardware and
        low-level-management categories.
        """
        if len(set(vocabulary)) != len(vocabulary) or not vocabulary:
            raise ValueError("vocabulary must be non-empty and duplicate-free")
        keep = set(vocabulary)
        unknown = keep - set(self._vocabulary)
        if unknown:
            raise ValueError(
                f"restriction vocabulary contains unknown categories: {sorted(unknown)}"
            )
        restricted = []
        for company in self._companies:
            kept = {c: d for c, d in company.first_seen.items() if c in keep}
            if kept:
                restricted.append(
                    Company(
                        duns=company.duns,
                        name=company.name,
                        country=company.country,
                        sic2=company.sic2,
                        first_seen=kept,
                        n_sites=company.n_sites,
                    )
                )
        if not restricted:
            raise ValueError("restriction removed every company from the corpus")
        return Corpus(restricted, tuple(vocabulary))

    @classmethod
    def from_companies(cls, companies: list[Company]) -> "Corpus":
        """Build a corpus whose vocabulary is the sorted union of categories."""
        vocabulary = tuple(sorted({c for company in companies for c in company.categories}))
        return cls(companies, vocabulary)


def update_fingerprint(digest, company: Company) -> None:
    """Feed one company's modelling content into a corpus digest.

    The canonical per-company block of the corpus fingerprint: identity,
    firmographics and the (category, first-seen) records sorted
    alphabetically.  Shared by the in-memory walk, the columnar writer
    (which digests companies as they stream to disk) and the columnar
    row walk, so all three produce byte-identical fingerprints for the
    same content.
    """
    records = sorted(
        (category, date.isoformat()) for category, date in company.first_seen.items()
    )
    digest.update(
        repr(
            (
                company.duns.value,
                company.name,
                company.country,
                company.sic2,
                company.n_sites,
                records,
            )
        ).encode()
    )
