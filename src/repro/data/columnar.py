"""Columnar on-disk corpus: memmap'd arrays behind the ``Corpus`` API.

The paper's deployment fits models over an 860k-company install base; an
in-memory list of :class:`~repro.data.company.Company` objects caps our
runs far below that.  This module stores a corpus as a directory of flat,
memory-mappable arrays so a million-company universe streams through
models and evaluators in bounded RSS:

``tokens.npy`` / ``dates.npy`` / ``indptr.npy``
    CSR-style install-base columns: company *i*'s products are
    ``tokens[indptr[i]:indptr[i+1]]`` (vocabulary token ids, ``int32``)
    with matching first-seen dates as proleptic-Gregorian ordinals
    (``int32``), sorted by (date, category name) — exactly the order of
    :meth:`Company.sorted_categories`.
``duns.npy`` / ``sic2.npy`` / ``n_sites.npy`` / ``country_code.npy``
    Firmographics, one row per company.  Countries are dictionary-encoded
    against the manifest's ``countries`` list.
``name_indptr.npy`` / ``name_bytes.npy``
    Company names as concatenated UTF-8 bytes plus offsets.
``manifest.json``
    Vocabulary, column inventory (dtype + length per column), row/token
    counts and the corpus content fingerprint.  The manifest is written
    *last* via write-to-temp + fsync + atomic rename, so a torn build
    leaves a directory without a manifest — a clean
    :class:`CorpusFormatError` on open, never a garbage corpus.

The fingerprint in the manifest is byte-identical to
:func:`repro.runtime.fingerprint.fingerprint_corpus` over the equivalent
in-memory corpus (the writer digests companies as they stream to disk),
which is what lets :class:`~repro.runtime.cache.FitCache` keys transfer
between the two backends.

:class:`ColumnarCorpus` subclasses :class:`~repro.data.corpus.Corpus` and
serves every view from the mapped columns: ``binary_matrix(rows=...)``
gathers directly from ``tokens``/``indptr``, ``sequences()`` and
``companies`` are lazy row views, and ``split`` / ``subset`` /
``truncated_before`` return index views over the same store instead of
copied object lists.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import json
import os
import struct
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._validation import check_positive_int
from repro.data.company import Company
from repro.data.corpus import Corpus, _gather_ranges, update_fingerprint
from repro.data.duns import DunsNumber

__all__ = [
    "CorpusFormatError",
    "ColumnarWriter",
    "ColumnarStore",
    "ColumnarCorpus",
    "open_corpus",
    "write_corpus",
    "simulate_to_columnar",
    "manifest_fingerprint",
    "MANIFEST_NAME",
]

MANIFEST_NAME = "manifest.json"
_FORMAT_NAME = "repro-columnar"
_FORMAT_VERSION = 1

#: Column name -> on-disk dtype.  ``indptr``-style columns have one entry
#: per company plus one; ``tokens``/``dates`` have one entry per install
#: record; ``name_bytes`` one per UTF-8 byte; the rest one per company.
_COLUMN_DTYPES: dict[str, str] = {
    "indptr": "<i8",
    "tokens": "<i4",
    "dates": "<i4",
    "duns": "|S9",
    "name_indptr": "<i8",
    "name_bytes": "|u1",
    "country_code": "<u2",
    "sic2": "<i2",
    "n_sites": "<i4",
}


class CorpusFormatError(Exception):
    """A columnar corpus directory is missing, torn, or inconsistent."""


# ---------------------------------------------------------------------------
# Appendable .npy columns
# ---------------------------------------------------------------------------

_NPY_HEADER_LEN = 128


def _npy_header(dtype: np.dtype, length: int) -> bytes:
    """A fixed-size (128-byte) .npy v1 header for a 1-D array of ``length``.

    The standard format pads the header dict with spaces, so reserving a
    constant size lets the writer append data and rewrite the final shape
    in place; the files stay loadable with ``np.load(..., mmap_mode='r')``.
    """
    descr = np.lib.format.dtype_to_descr(dtype)
    body = "{'descr': %r, 'fortran_order': False, 'shape': (%d,), }" % (descr, length)
    magic = b"\x93NUMPY\x01\x00"
    payload_len = _NPY_HEADER_LEN - len(magic) - 2
    if len(body) >= payload_len:
        raise ValueError(f"npy header too large for fixed slot: {body!r}")
    text = body.ljust(payload_len - 1) + "\n"
    return magic + struct.pack("<H", payload_len) + text.encode("latin1")


class _ColumnAppender:
    """Chunk-appendable 1-D .npy file with a rewritable fixed-size header."""

    def __init__(self, path: Path, dtype: str) -> None:
        self.path = path
        self.dtype = np.dtype(dtype)
        self.length = 0
        self._handle = open(path, "wb")
        self._handle.write(_npy_header(self.dtype, 0))

    def append(self, values: np.ndarray) -> None:
        array = np.ascontiguousarray(values, dtype=self.dtype)
        if array.ndim != 1:
            raise ValueError(f"column chunks must be 1-D, got shape {array.shape}")
        self._handle.write(array.tobytes())
        self.length += len(array)

    def close(self) -> None:
        self._handle.flush()
        self._handle.seek(0)
        self._handle.write(_npy_header(self.dtype, self.length))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()

    def abort(self) -> None:
        if not self._handle.closed:
            self._handle.close()


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class ColumnarWriter:
    """Stream companies into a columnar corpus directory.

    Append batches with :meth:`append`; :meth:`close` finalises every
    column and atomically publishes ``manifest.json``.  If the process
    dies mid-build the directory has no manifest and :func:`open_corpus`
    refuses it with a clean error.  The content fingerprint is digested
    as companies stream through, so closing costs no extra pass.
    """

    def __init__(self, path: str | Path, vocabulary: tuple[str, ...]) -> None:
        if len(set(vocabulary)) != len(vocabulary):
            raise ValueError("vocabulary contains duplicate categories")
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / MANIFEST_NAME).exists():
            raise FileExistsError(
                f"{self.path} already contains a columnar corpus manifest"
            )
        self.vocabulary = tuple(vocabulary)
        self._token = {name: i for i, name in enumerate(self.vocabulary)}
        self._countries: dict[str, int] = {}
        self._columns = {
            name: _ColumnAppender(self.path / f"{name}.npy", dtype)
            for name, dtype in _COLUMN_DTYPES.items()
        }
        self._columns["indptr"].append(np.zeros(1, dtype=np.int64))
        self._columns["name_indptr"].append(np.zeros(1, dtype=np.int64))
        self._n_companies = 0
        self._n_tokens = 0
        self._name_bytes_total = 0
        self._digest = hashlib.sha256()
        self._digest.update(repr(self.vocabulary).encode())
        self._closed = False

    def append(self, companies: Iterable[Company]) -> int:
        """Append a batch of companies; returns the batch size."""
        if self._closed:
            raise RuntimeError("writer is closed")
        tokens: list[int] = []
        dates: list[int] = []
        indptr: list[int] = []
        duns: list[bytes] = []
        name_indptr: list[int] = []
        name_chunks: list[bytes] = []
        country_codes: list[int] = []
        sic2: list[int] = []
        n_sites: list[int] = []
        for company in companies:
            unknown = company.categories - self._token.keys()
            if unknown:
                raise ValueError(
                    f"company {company.name!r} owns categories outside the "
                    f"vocabulary: {sorted(unknown)}"
                )
            for category, date in company.sorted_categories():
                tokens.append(self._token[category])
                dates.append(date.toordinal())
            self._n_tokens += len(company.first_seen)
            indptr.append(self._n_tokens)
            duns.append(company.duns.value.encode("ascii"))
            encoded = company.name.encode("utf-8")
            name_chunks.append(encoded)
            self._name_bytes_total += len(encoded)
            name_indptr.append(self._name_bytes_total)
            code = self._countries.setdefault(company.country, len(self._countries))
            if code > np.iinfo(np.uint16).max:
                raise ValueError("more than 65536 distinct countries")
            country_codes.append(code)
            sic2.append(company.sic2)
            n_sites.append(company.n_sites)
            update_fingerprint(self._digest, company)
        self._columns["tokens"].append(np.asarray(tokens, dtype=np.int32))
        self._columns["dates"].append(np.asarray(dates, dtype=np.int32))
        self._columns["indptr"].append(np.asarray(indptr, dtype=np.int64))
        self._columns["duns"].append(np.asarray(duns, dtype="S9"))
        self._columns["name_indptr"].append(np.asarray(name_indptr, dtype=np.int64))
        self._columns["name_bytes"].append(
            np.frombuffer(b"".join(name_chunks), dtype=np.uint8)
        )
        self._columns["country_code"].append(
            np.asarray(country_codes, dtype=np.uint16)
        )
        self._columns["sic2"].append(np.asarray(sic2, dtype=np.int16))
        self._columns["n_sites"].append(np.asarray(n_sites, dtype=np.int32))
        self._n_companies += len(indptr)
        return len(indptr)

    def close(self) -> dict:
        """Finalise columns and atomically publish the manifest."""
        if self._closed:
            raise RuntimeError("writer is closed")
        if self._n_companies == 0:
            self.abort()
            raise ValueError("corpus must contain at least one company")
        self._closed = True
        for column in self._columns.values():
            column.close()
        manifest = {
            "format": _FORMAT_NAME,
            "version": _FORMAT_VERSION,
            "n_companies": self._n_companies,
            "n_tokens": self._n_tokens,
            "vocabulary": list(self.vocabulary),
            "countries": [
                country
                for country, __ in sorted(self._countries.items(), key=lambda kv: kv[1])
            ],
            "fingerprint": self._digest.hexdigest(),
            "columns": {
                name: {
                    "file": f"{name}.npy",
                    "dtype": _COLUMN_DTYPES[name],
                    "length": appender.length,
                }
                for name, appender in self._columns.items()
            },
        }
        tmp_path = self.path / (MANIFEST_NAME + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path / MANIFEST_NAME)
        dir_fd = os.open(self.path, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        return manifest

    def abort(self) -> None:
        """Close file handles without publishing a manifest."""
        self._closed = True
        for column in self._columns.values():
            column.abort()

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._closed:
                self.close()
        else:
            self.abort()


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


class ColumnarStore:
    """The raw columns of a columnar corpus, memmap'd when disk-backed.

    Holds the full universe; :class:`ColumnarCorpus` layers row views on
    top.  ``path`` is ``None`` for derived in-RAM stores (the result of
    ``restrict_vocabulary``).
    """

    def __init__(
        self,
        *,
        vocabulary: tuple[str, ...],
        countries: tuple[str, ...],
        indptr: np.ndarray,
        tokens: np.ndarray,
        dates: np.ndarray,
        duns: np.ndarray,
        name_indptr: np.ndarray,
        name_bytes: np.ndarray,
        country_code: np.ndarray,
        sic2: np.ndarray,
        n_sites: np.ndarray,
        fingerprint: str | None = None,
        path: Path | None = None,
    ) -> None:
        self.vocabulary = vocabulary
        self.countries = countries
        self.indptr = indptr
        self.tokens = tokens
        self.dates = dates
        self.duns = duns
        self.name_indptr = name_indptr
        self.name_bytes = name_bytes
        self.country_code = country_code
        self.sic2 = sic2
        self.n_sites = n_sites
        self.fingerprint = fingerprint
        self.path = path

    @property
    def n_companies(self) -> int:
        """Number of companies in the store (full universe)."""
        return len(self.indptr) - 1

    @classmethod
    def open(cls, path: str | Path) -> "ColumnarStore":
        """Memory-map a corpus directory, validating structure eagerly.

        Every failure mode — missing directory, absent or torn manifest,
        truncated or wrong-dtype column files, inconsistent offsets or
        out-of-range token ids — raises :class:`CorpusFormatError` with a
        message naming the defect.
        """
        root = Path(path)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.is_file():
            raise CorpusFormatError(
                f"{root} is not a columnar corpus: missing {MANIFEST_NAME} "
                "(directory absent or build did not complete)"
            )
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CorpusFormatError(f"corrupt manifest at {manifest_path}: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != _FORMAT_NAME:
            raise CorpusFormatError(
                f"{manifest_path} is not a {_FORMAT_NAME} manifest"
            )
        if manifest.get("version") != _FORMAT_VERSION:
            raise CorpusFormatError(
                f"unsupported corpus format version {manifest.get('version')!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        for key in ("n_companies", "n_tokens", "vocabulary", "countries",
                    "fingerprint", "columns"):
            if key not in manifest:
                raise CorpusFormatError(f"manifest missing required key {key!r}")
        vocabulary = tuple(manifest["vocabulary"])
        if not vocabulary or len(set(vocabulary)) != len(vocabulary):
            raise CorpusFormatError("manifest vocabulary is empty or has duplicates")
        n = int(manifest["n_companies"])
        n_tokens = int(manifest["n_tokens"])
        if n < 1:
            raise CorpusFormatError(f"manifest declares {n} companies")

        arrays: dict[str, np.ndarray] = {}
        for name, dtype in _COLUMN_DTYPES.items():
            spec = manifest["columns"].get(name)
            if spec is None:
                raise CorpusFormatError(f"manifest missing column {name!r}")
            if spec.get("dtype") != dtype:
                raise CorpusFormatError(
                    f"column {name!r} has dtype {spec.get('dtype')!r}, "
                    f"expected {dtype!r}"
                )
            file_path = root / spec["file"]
            if not file_path.is_file():
                raise CorpusFormatError(f"column file missing: {file_path}")
            try:
                if int(spec.get("length", 0)) == 0:
                    # mmap cannot map a zero-byte payload; an empty column
                    # (e.g. no foreign names) loads as a plain empty array.
                    array = np.load(file_path, allow_pickle=False)
                else:
                    array = np.load(file_path, mmap_mode="r", allow_pickle=False)
            except (OSError, ValueError) as exc:
                raise CorpusFormatError(
                    f"column file {file_path} is unreadable or truncated: {exc}"
                ) from exc
            if array.ndim != 1 or array.dtype != np.dtype(dtype):
                raise CorpusFormatError(
                    f"column file {file_path} has shape {array.shape} dtype "
                    f"{array.dtype}, expected 1-D {dtype}"
                )
            if len(array) != int(spec["length"]):
                raise CorpusFormatError(
                    f"column {name!r} has {len(array)} entries, manifest "
                    f"declares {spec['length']} (truncated file?)"
                )
            arrays[name] = array

        expected_lengths = {
            "indptr": n + 1,
            "tokens": n_tokens,
            "dates": n_tokens,
            "duns": n,
            "name_indptr": n + 1,
            "country_code": n,
            "sic2": n,
            "n_sites": n,
        }
        for name, expected in expected_lengths.items():
            if len(arrays[name]) != expected:
                raise CorpusFormatError(
                    f"column {name!r} has {len(arrays[name])} entries, "
                    f"expected {expected} for {n} companies / {n_tokens} tokens"
                )
        indptr = arrays["indptr"]
        if int(indptr[0]) != 0 or int(indptr[-1]) != n_tokens:
            raise CorpusFormatError("indptr does not span [0, n_tokens]")
        if np.any(np.diff(indptr) < 0):
            raise CorpusFormatError("indptr is not monotonically non-decreasing")
        if n_tokens and (
            int(arrays["tokens"].min()) < 0
            or int(arrays["tokens"].max()) >= len(vocabulary)
        ):
            raise CorpusFormatError("token ids fall outside the vocabulary")
        name_indptr = arrays["name_indptr"]
        if (
            int(name_indptr[0]) != 0
            or int(name_indptr[-1]) != len(arrays["name_bytes"])
            or np.any(np.diff(name_indptr) < 0)
        ):
            raise CorpusFormatError("name offsets do not span the name bytes")
        countries = tuple(manifest["countries"])
        if n and len(countries) == 0:
            raise CorpusFormatError("manifest declares no countries")
        if n and int(arrays["country_code"].max()) >= len(countries):
            raise CorpusFormatError("country codes fall outside the dictionary")
        return cls(
            vocabulary=vocabulary,
            countries=countries,
            fingerprint=str(manifest["fingerprint"]),
            path=root,
            **{name: arrays[name] for name in _COLUMN_DTYPES},
        )

    # -- row accessors (python-native types, fingerprint-safe) ----------
    def duns_value(self, row: int) -> str:
        """Nine-digit D-U-N-S value of a row, as ``str``."""
        return self.duns[row].decode("ascii")

    def name(self, row: int) -> str:
        """Company name of a row, decoded from the UTF-8 byte column."""
        start, end = int(self.name_indptr[row]), int(self.name_indptr[row + 1])
        return bytes(self.name_bytes[start:end]).decode("utf-8")

    def country(self, row: int) -> str:
        """Country of a row, resolved through the manifest dictionary."""
        return self.countries[int(self.country_code[row])]

    def sic2_code(self, row: int) -> int:
        """SIC2 industry code of a row, as python ``int``."""
        return int(self.sic2[row])

    def n_sites_of(self, row: int) -> int:
        """Site count of a row, as python ``int``."""
        return int(self.n_sites[row])


# ---------------------------------------------------------------------------
# Lazy row views
# ---------------------------------------------------------------------------


class _LazyCompanies(Sequence):
    """Read-only ``Sequence[Company]`` materialising rows on access."""

    def __init__(self, corpus: "ColumnarCorpus") -> None:
        self._corpus = corpus

    def __len__(self) -> int:
        return self._corpus.n_companies

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._materialize(i) for i in range(*index.indices(len(self)))]
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"company index {index} out of range")
        return self._materialize(i)

    def __iter__(self) -> Iterator[Company]:
        for i in range(len(self)):
            yield self._materialize(i)

    def _materialize(self, i: int) -> Company:
        corpus = self._corpus
        store = corpus._store
        row = int(corpus._rows[i])
        start, end = int(corpus._starts[i]), int(corpus._ends[i])
        vocab = corpus.vocabulary
        first_seen = {
            vocab[token]: dt.date.fromordinal(ordinal)
            for token, ordinal in zip(
                store.tokens[start:end].tolist(), store.dates[start:end].tolist()
            )
        }
        return Company(
            duns=DunsNumber._trusted(store.duns_value(row)),
            name=store.name(row),
            country=store.country(row),
            sic2=store.sic2_code(row),
            first_seen=first_seen,
            n_sites=store.n_sites_of(row),
        )


class _SequenceRows(Sequence):
    """Lazy ``Sequence`` of per-company token (or dated-token) lists."""

    def __init__(self, corpus: "ColumnarCorpus", dated: bool) -> None:
        self._corpus = corpus
        self._dated = dated

    def __len__(self) -> int:
        return self._corpus.n_companies

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._row(i) for i in range(*index.indices(len(self)))]
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"sequence index {index} out of range")
        return self._row(i)

    def __iter__(self):
        for i in range(len(self)):
            yield self._row(i)

    def _row(self, i: int):
        corpus = self._corpus
        store = corpus._store
        start, end = int(corpus._starts[i]), int(corpus._ends[i])
        tokens = store.tokens[start:end].tolist()
        if not self._dated:
            return tokens
        ordinals = store.dates[start:end].tolist()
        return [
            (token, dt.date.fromordinal(ordinal))
            for token, ordinal in zip(tokens, ordinals)
        ]


# ---------------------------------------------------------------------------
# ColumnarCorpus
# ---------------------------------------------------------------------------


def _reopen_view(path, rows, ends, fingerprint):
    corpus = ColumnarCorpus(ColumnarStore.open(path), rows=rows, ends=ends)
    corpus._fingerprint = fingerprint
    return corpus


def _rebuild_view(store, rows, ends, fingerprint):
    corpus = ColumnarCorpus(store, rows=rows, ends=ends)
    corpus._fingerprint = fingerprint
    return corpus


class ColumnarCorpus(Corpus):
    """A (possibly partial) row view over a :class:`ColumnarStore`.

    Implements the full :class:`~repro.data.corpus.Corpus` API without
    materialising ``Company`` objects: the binary matrix gathers straight
    from the token columns, ``companies`` / ``sequences()`` /
    ``dated_sequences()`` are lazy per-row views, and partitioning methods
    return new index views over the same store.  ``ends`` allows a view to
    expose only a prefix of each row's (date-sorted) tokens, which is how
    ``truncated_before`` works without copying columns.
    """

    def __init__(
        self,
        store: ColumnarStore,
        *,
        rows: np.ndarray | None = None,
        ends: np.ndarray | None = None,
    ) -> None:
        self._store = store
        self._vocabulary = tuple(store.vocabulary)
        self._token = {name: i for i, name in enumerate(self._vocabulary)}
        self._token_cols = None
        self._fingerprint: str | None = None
        indptr = np.asarray(store.indptr, dtype=np.int64)
        if rows is None:
            self._rows = np.arange(store.n_companies, dtype=np.int64)
            self._starts = indptr[:-1].copy()
            self._ends = indptr[1:].copy()
            self._pristine = True
        else:
            self._rows = np.asarray(rows, dtype=np.int64).ravel()
            self._starts = indptr[self._rows]
            self._ends = (
                indptr[self._rows + 1]
                if ends is None
                else np.asarray(ends, dtype=np.int64).ravel()
            )
            self._pristine = False

    # -- basic accessors -------------------------------------------------
    @property
    def store(self) -> ColumnarStore:
        """The backing store (shared across views)."""
        return self._store

    @property
    def companies(self) -> Sequence:
        """Lazy ``Sequence[Company]``; rows materialise on access."""
        return _LazyCompanies(self)

    @property
    def n_companies(self) -> int:
        """Number of companies in this view."""
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        source = self._store.path or "<memory>"
        return (
            f"ColumnarCorpus(n_companies={self.n_companies}, "
            f"n_products={self.n_products}, source={source})"
        )

    # -- columnar substrate ----------------------------------------------
    def _row_token_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._starts, self._ends, self._store.tokens

    # -- model inputs ----------------------------------------------------
    def sequences(self) -> Sequence:
        """The sequences ``A^S`` as a lazy per-row view (list-compatible)."""
        return _SequenceRows(self, dated=False)

    def dated_sequences(self) -> Sequence:
        """Dated sequences as a lazy per-row view (list-compatible)."""
        return _SequenceRows(self, dated=True)

    def industries(self) -> np.ndarray:
        """SIC2 code per company, aligned with matrix rows."""
        return np.asarray(self._store.sic2[self._rows], dtype=np.int64)

    def total_products(self) -> int:
        """Total number of (company, product) pairs in this view."""
        return int((self._ends - self._starts).sum())

    # -- fingerprint -----------------------------------------------------
    def fingerprint(self) -> str:
        """Content fingerprint; the manifest value for pristine full views.

        Partial views (splits, subsets, truncations) digest their rows with
        the shared per-company algorithm, staying byte-identical to the
        in-memory corpus of the same content.
        """
        if self._fingerprint is None:
            if self._pristine and self._store.fingerprint is not None:
                self._fingerprint = self._store.fingerprint
            else:
                self._fingerprint = self._compute_fingerprint()
        return self._fingerprint

    def _compute_fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(repr(self._vocabulary).encode())
        store = self._store
        vocab = self._vocabulary
        for i in range(len(self._rows)):
            row = int(self._rows[i])
            start, end = int(self._starts[i]), int(self._ends[i])
            records = sorted(
                (vocab[token], dt.date.fromordinal(ordinal).isoformat())
                for token, ordinal in zip(
                    store.tokens[start:end].tolist(), store.dates[start:end].tolist()
                )
            )
            digest.update(
                repr(
                    (
                        store.duns_value(row),
                        store.name(row),
                        store.country(row),
                        store.sic2_code(row),
                        store.n_sites_of(row),
                        records,
                    )
                ).encode()
            )
        return digest.hexdigest()

    # -- partitioning ----------------------------------------------------
    def _select(self, indices: np.ndarray) -> "ColumnarCorpus":
        index = np.asarray(indices, dtype=np.int64).ravel()
        return ColumnarCorpus(
            self._store, rows=self._rows[index], ends=self._ends[index]
        )

    def truncated_before(self, cutoff: dt.date) -> "ColumnarCorpus":
        """Index view keeping only products first seen strictly before ``cutoff``.

        Tokens are date-sorted per row, so truncation is a per-row prefix:
        the view keeps the same store and shrinks each row's end pointer;
        companies with nothing before the cutoff are dropped.
        """
        ordinal = cutoff.toordinal()
        lengths = self._ends - self._starts
        flat = _gather_ranges(self._starts, lengths)
        mask = np.asarray(self._store.dates[flat]) < ordinal
        cumulative = np.concatenate(([0], np.cumsum(mask)))
        boundaries = np.concatenate(([0], np.cumsum(lengths)))
        counts = cumulative[boundaries[1:]] - cumulative[boundaries[:-1]]
        keep = counts > 0
        if not keep.any():
            raise ValueError(f"no company has any product before {cutoff}")
        return ColumnarCorpus(
            self._store,
            rows=self._rows[keep],
            ends=self._starts[keep] + counts[keep],
        )

    def restrict_vocabulary(self, vocabulary: tuple[str, ...]) -> "ColumnarCorpus":
        """Project onto a smaller vocabulary (Section 2's 91 -> 38).

        Builds a derived in-RAM store with remapped token ids; companies
        left without any product are removed.
        """
        if len(set(vocabulary)) != len(vocabulary) or not vocabulary:
            raise ValueError("vocabulary must be non-empty and duplicate-free")
        unknown = set(vocabulary) - set(self._vocabulary)
        if unknown:
            raise ValueError(
                f"restriction vocabulary contains unknown categories: {sorted(unknown)}"
            )
        mapping = np.full(len(self._vocabulary), -1, dtype=np.int32)
        for new_id, category in enumerate(vocabulary):
            mapping[self._token[category]] = new_id
        lengths = self._ends - self._starts
        flat = _gather_ranges(self._starts, lengths)
        old_tokens = np.asarray(self._store.tokens[flat])
        new_tokens = mapping[old_tokens]
        kept_mask = new_tokens >= 0
        cumulative = np.concatenate(([0], np.cumsum(kept_mask)))
        boundaries = np.concatenate(([0], np.cumsum(lengths)))
        counts = cumulative[boundaries[1:]] - cumulative[boundaries[:-1]]
        keep = counts > 0
        if not keep.any():
            raise ValueError("restriction removed every company from the corpus")
        rows_kept = self._rows[keep]
        store = self._store
        indptr = np.zeros(int(keep.sum()) + 1, dtype=np.int64)
        np.cumsum(counts[keep], out=indptr[1:])
        name_starts = np.asarray(store.name_indptr, dtype=np.int64)[rows_kept]
        name_lengths = (
            np.asarray(store.name_indptr, dtype=np.int64)[rows_kept + 1] - name_starts
        )
        name_flat = _gather_ranges(name_starts, name_lengths)
        name_indptr = np.zeros(len(rows_kept) + 1, dtype=np.int64)
        np.cumsum(name_lengths, out=name_indptr[1:])
        derived = ColumnarStore(
            vocabulary=tuple(vocabulary),
            countries=store.countries,
            indptr=indptr,
            tokens=new_tokens[kept_mask].astype(np.int32),
            dates=np.asarray(self._store.dates[flat])[kept_mask].astype(np.int32),
            duns=np.asarray(store.duns[rows_kept]),
            name_indptr=name_indptr,
            name_bytes=np.asarray(store.name_bytes[name_flat]),
            country_code=np.asarray(store.country_code[rows_kept]),
            sic2=np.asarray(store.sic2[rows_kept]),
            n_sites=np.asarray(store.n_sites[rows_kept]),
            fingerprint=None,
            path=None,
        )
        return ColumnarCorpus(derived)

    # -- pickling (memmaps reopen from path in worker processes) ---------
    def __reduce__(self):
        if self._pristine:
            rows, ends = None, None
        else:
            rows, ends = np.asarray(self._rows), np.asarray(self._ends)
        if self._store.path is not None:
            return (
                _reopen_view,
                (str(self._store.path), rows, ends, self._fingerprint),
            )
        return (_rebuild_view, (self._store, rows, ends, self._fingerprint))


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def open_corpus(path: str | Path) -> ColumnarCorpus:
    """Open a columnar corpus directory as a memmap-backed corpus."""
    return ColumnarCorpus(ColumnarStore.open(path))


def manifest_fingerprint(path: str | Path) -> str:
    """Read just the content fingerprint from a corpus directory's manifest."""
    manifest_path = Path(path) / MANIFEST_NAME
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CorpusFormatError(f"corrupt manifest at {manifest_path}: {exc}") from exc
    if "fingerprint" not in manifest:
        raise CorpusFormatError(f"manifest at {manifest_path} has no fingerprint")
    return str(manifest["fingerprint"])


def write_corpus(
    corpus: Corpus, path: str | Path, *, batch_size: int = 8192
) -> dict:
    """Write any corpus (in-memory or columnar view) to a columnar directory.

    Streams ``batch_size`` companies at a time, so a large columnar view
    can be re-published without materialising every row at once.  Returns
    the manifest dict; the manifest fingerprint equals the source corpus's
    :meth:`~repro.data.corpus.Corpus.fingerprint`.
    """
    check_positive_int(batch_size, "batch_size")
    writer = ColumnarWriter(path, corpus.vocabulary)
    try:
        batch: list[Company] = []
        for company in corpus.companies:
            batch.append(company)
            if len(batch) >= batch_size:
                writer.append(batch)
                batch = []
        if batch:
            writer.append(batch)
        return writer.close()
    except BaseException:
        writer.abort()
        raise


def simulate_to_columnar(
    path: str | Path,
    *,
    n_companies: int,
    seed: int = 7,
    chunk_size: int = 50_000,
    config=None,
    progress=None,
) -> dict:
    """Stream a simulated universe straight to a columnar corpus directory.

    Generates ``chunk_size`` companies per simulator call and appends each
    batch, so peak memory is bounded by the chunk, not the universe.  The
    D-U-N-S sequence is offset per chunk so identifiers stay globally
    unique.  Deterministic in ``(n_companies, seed, chunk_size, config)``:
    chunk ``i`` derives its generator from ``SeedSequence(seed).spawn()``,
    except a single-chunk build (``chunk_size >= n_companies``) which uses
    ``seed`` directly and therefore reproduces, bit for bit, the corpus
    ``make_experiment_data(n_companies, seed=seed)`` builds in memory.

    Returns the manifest dict.  ``progress``, if given, is called with
    ``(companies_done, n_companies)`` after each chunk.
    """
    from repro.data.catalog import build_default_catalog
    from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig

    check_positive_int(n_companies, "n_companies")
    check_positive_int(chunk_size, "chunk_size")
    base_config = config if config is not None else SimulatorConfig()
    if base_config.granularity != "category":
        raise ValueError(
            "simulate_to_columnar supports category granularity only; "
            "product-type universes must be written via write_corpus"
        )
    catalog = build_default_catalog()
    writer = ColumnarWriter(path, catalog.categories)
    try:
        import dataclasses

        seed_children = np.random.SeedSequence(seed).spawn(
            max(1, -(-n_companies // chunk_size))
        )
        done = 0
        duns_start = 0
        chunk_index = 0
        single_chunk = chunk_size >= n_companies
        while done < n_companies:
            size = min(chunk_size, n_companies - done)
            simulator = InstallBaseSimulator(
                dataclasses.replace(base_config, n_companies=size), catalog=catalog
            )
            chunk_seed = (
                seed
                if single_chunk
                else np.random.default_rng(seed_children[chunk_index])
            )
            universe = simulator.generate(seed=chunk_seed, duns_start=duns_start)
            writer.append(universe.companies)
            duns_start += len(universe.sites)
            done += size
            chunk_index += 1
            if progress is not None:
                progress(done, n_companies)
        return writer.close()
    except BaseException:
        writer.abort()
        raise
