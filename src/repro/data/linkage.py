"""Record linkage: matching company names across databases.

The paper joins the external HG-Data-style feed with an internal sales
database and acknowledges a company-name-matching algorithm used "for record
linkage" (Section 8).  This module provides that substrate:

* :func:`normalize_company_name` — casefolding, punctuation stripping and
  legal-suffix removal so "Acme Corp." and "ACME CORPORATION" normalise to
  the same key;
* :func:`jaro_winkler_similarity` — the fuzzy string metric standard in
  record-linkage literature;
* :class:`CompanyNameMatcher` — a blocked matcher that indexes one side by
  normalised first token and resolves queries with Jaro-Winkler scoring,
  avoiding the quadratic all-pairs comparison.
"""

from __future__ import annotations

import re
import unicodedata
from collections import defaultdict
from dataclasses import dataclass

__all__ = [
    "normalize_company_name",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "CompanyNameMatcher",
    "ResolutionDecision",
    "EntityResolver",
]

#: Legal-form suffixes dropped during normalisation.
_LEGAL_SUFFIXES: frozenset[str] = frozenset(
    {
        "inc",
        "incorporated",
        "llc",
        "llp",
        "ltd",
        "limited",
        "corp",
        "corporation",
        "co",
        "company",
        "group",
        "holdings",
        "plc",
        "gmbh",
        "ag",
        "sa",
        "nv",
        "bv",
        "srl",
        "spa",
    }
)

_NON_ALNUM = re.compile(r"[^a-z0-9 ]+")
_WHITESPACE = re.compile(r"\s+")


def normalize_company_name(name: str) -> str:
    """Canonical form of a company name for blocking and exact matching.

    Unicode-folds (NFKD decomposition with combining marks stripped, so
    "Müller" and "Muller" share a key and full-width/compatibility forms
    collapse), casefolds, strips punctuation — ASCII and Unicode alike —
    removes trailing legal-form suffixes ("inc", "gmbh", ...), and
    collapses whitespace.  The empty string is returned for names that
    normalise away entirely; callers should treat that as unmatchable.
    Never raises for string input: empty, single-character and
    all-punctuation names normalise to a (possibly empty) string.
    """
    if not isinstance(name, str):
        raise TypeError(f"name must be a string, got {type(name).__name__}")
    decomposed = unicodedata.normalize("NFKD", name)
    folded = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    lowered = folded.casefold().replace("&", " and ")
    stripped = _NON_ALNUM.sub(" ", lowered)
    tokens = _WHITESPACE.sub(" ", stripped).strip().split(" ")
    while tokens and tokens[-1] in _LEGAL_SUFFIXES:
        tokens.pop()
    return " ".join(t for t in tokens if t)


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity in [0, 1]; 1 means identical, 0 means disjoint.

    Total over all string pairs: empty strings, single characters and
    unicode input return a finite value in [0, 1], never NaN.
    """
    if not isinstance(left, str) or not isinstance(right, str):
        raise TypeError(
            f"jaro_similarity expects strings, got "
            f"{type(left).__name__} and {type(right).__name__}"
        )
    if left == right:
        return 1.0
    len_l, len_r = len(left), len(right)
    if len_l == 0 or len_r == 0:
        return 0.0
    match_window = max(len_l, len_r) // 2 - 1
    match_window = max(match_window, 0)

    left_matched = [False] * len_l
    right_matched = [False] * len_r
    matches = 0
    for i, char in enumerate(left):
        lo = max(0, i - match_window)
        hi = min(len_r, i + match_window + 1)
        for j in range(lo, hi):
            if not right_matched[j] and right[j] == char:
                left_matched[i] = True
                right_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched characters in order.
    transpositions = 0
    j = 0
    for i in range(len_l):
        if left_matched[i]:
            while not right_matched[j]:
                j += 1
            if left[i] != right[j]:
                transpositions += 1
            j += 1
    transpositions //= 2

    m = float(matches)
    return (m / len_l + m / len_r + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(left: str, right: str, *, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a shared prefix of length <= 4."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    jaro = jaro_similarity(left, right)
    prefix = 0
    for l_char, r_char in zip(left[:4], right[:4]):
        if l_char != r_char:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


class CompanyNameMatcher:
    """Blocked fuzzy matcher from query names to a reference name list.

    Reference names are indexed by the first token of their normalised form;
    a query first scores against names sharing its block (plus exact
    normalised matches, which short-circuit at similarity 1.0).  This is the
    standard blocking trick that keeps linkage linear-ish in practice.

    A misspelling *inside the first token* lands the query in the wrong
    block, where exact-block matching silently fragments the entity.  With
    ``fuzzy_blocks`` (the default) a query that fails its own block is
    rescued by also scoring blocks whose key is Jaro-Winkler-close to the
    query's first token — one pass over the distinct block keys, not over
    the reference list, so the cost stays sublinear in references.
    """

    def __init__(
        self,
        reference_names: list[str],
        *,
        threshold: float = 0.88,
        fuzzy_blocks: bool = True,
        block_threshold: float = 0.82,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if not 0.0 < block_threshold <= 1.0:
            raise ValueError(
                f"block_threshold must be in (0, 1], got {block_threshold}"
            )
        self.threshold = threshold
        self.fuzzy_blocks = bool(fuzzy_blocks)
        self.block_threshold = block_threshold
        self._reference = list(reference_names)
        self._normal: list[str] = [
            normalize_company_name(name) for name in self._reference
        ]
        self._by_normal: dict[str, int] = {}
        self._blocks: dict[str, list[int]] = defaultdict(list)
        for index, normal in enumerate(self._normal):
            if not normal:
                continue
            self._by_normal.setdefault(normal, index)
            first_token = normal.split(" ", 1)[0]
            self._blocks[first_token].append(index)

    def _best_in(
        self, indices: list[int], normal: str, best: tuple[int, float]
    ) -> tuple[int, float]:
        best_index, best_score = best
        for index in indices:
            score = jaro_winkler_similarity(normal, self._normal[index])
            if score > best_score:
                best_index, best_score = index, score
        return best_index, best_score

    def match(self, query: str) -> tuple[int, float] | None:
        """Best reference index for ``query``, or ``None`` below threshold.

        Returns ``(index, similarity)``; exact normalised matches return
        similarity 1.0 without fuzzy scoring.
        """
        normal = normalize_company_name(query)
        if not normal:
            return None
        exact = self._by_normal.get(normal)
        if exact is not None:
            return exact, 1.0
        first_token = normal.split(" ", 1)[0]
        best = self._best_in(self._blocks.get(first_token, []), normal, (-1, 0.0))
        if best[1] < self.threshold and self.fuzzy_blocks:
            for key, indices in self._blocks.items():
                if key == first_token:
                    continue
                if jaro_winkler_similarity(first_token, key) >= self.block_threshold:
                    best = self._best_in(indices, normal, best)
        if best[0] >= 0 and best[1] >= self.threshold:
            return best
        return None

    def match_all(self, queries: list[str]) -> list[tuple[int, float] | None]:
        """Vector form of :meth:`match`."""
        return [self.match(q) for q in queries]

    def __len__(self) -> int:
        return len(self._reference)


@dataclass(frozen=True)
class ResolutionDecision:
    """Outcome of resolving one query name against the reference list.

    ``status`` is one of ``"resolved"`` (safe to link automatically),
    ``"review"`` (a plausible candidate exists but below the automatic
    threshold — route to manual review / quarantine, never silently
    link), or ``"unmatched"``.  ``reason`` is a machine-readable slug
    suitable for quarantine records and HTTP error bodies.
    """

    status: str
    index: int | None
    score: float
    reason: str

    @property
    def resolved(self) -> bool:
        """True when the match is safe to link automatically."""
        return self.status == "resolved"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form for quarantine records and HTTP bodies."""
        return {
            "status": self.status,
            "index": self.index,
            "score": round(self.score, 4),
            "reason": self.reason,
        }


class EntityResolver:
    """Three-way name resolution: resolve, review, or reject.

    Wraps :class:`CompanyNameMatcher` with the two-threshold policy
    standard in record linkage: scores at or above ``accept`` link
    automatically, scores in ``[review, accept)`` are flagged for manual
    review (the caller quarantines them with the candidate attached),
    and anything below is unmatched.  This is what keeps aliased
    companies from silently fragmenting install histories: an ambiguous
    name surfaces as an explicit decision instead of a miss.
    """

    def __init__(
        self,
        reference_names: list[str],
        *,
        accept: float = 0.92,
        review: float = 0.85,
    ) -> None:
        if not 0.0 < review <= accept <= 1.0:
            raise ValueError(
                f"need 0 < review <= accept <= 1, got review={review}, accept={accept}"
            )
        self.accept = accept
        self.review = review
        self._matcher = CompanyNameMatcher(reference_names, threshold=review)

    def resolve(self, query: str) -> ResolutionDecision:
        """Resolve one name; never raises for string input."""
        if not isinstance(query, str):
            raise TypeError(f"query must be a string, got {type(query).__name__}")
        if not normalize_company_name(query):
            return ResolutionDecision(
                status="unmatched", index=None, score=0.0, reason="empty_name"
            )
        match = self._matcher.match(query)
        if match is None:
            return ResolutionDecision(
                status="unmatched", index=None, score=0.0, reason="below_threshold"
            )
        index, score = match
        if score >= 1.0:
            return ResolutionDecision(
                status="resolved", index=index, score=1.0, reason="exact_normalized"
            )
        if score >= self.accept:
            return ResolutionDecision(
                status="resolved", index=index, score=score, reason="fuzzy_accept"
            )
        return ResolutionDecision(
            status="review", index=index, score=score, reason="needs_review"
        )
