"""Record linkage: matching company names across databases.

The paper joins the external HG-Data-style feed with an internal sales
database and acknowledges a company-name-matching algorithm used "for record
linkage" (Section 8).  This module provides that substrate:

* :func:`normalize_company_name` — casefolding, punctuation stripping and
  legal-suffix removal so "Acme Corp." and "ACME CORPORATION" normalise to
  the same key;
* :func:`jaro_winkler_similarity` — the fuzzy string metric standard in
  record-linkage literature;
* :class:`CompanyNameMatcher` — a blocked matcher that indexes one side by
  normalised first token and resolves queries with Jaro-Winkler scoring,
  avoiding the quadratic all-pairs comparison.
"""

from __future__ import annotations

import re
from collections import defaultdict

__all__ = [
    "normalize_company_name",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "CompanyNameMatcher",
]

#: Legal-form suffixes dropped during normalisation.
_LEGAL_SUFFIXES: frozenset[str] = frozenset(
    {
        "inc",
        "incorporated",
        "llc",
        "llp",
        "ltd",
        "limited",
        "corp",
        "corporation",
        "co",
        "company",
        "group",
        "holdings",
        "plc",
        "gmbh",
        "ag",
        "sa",
        "nv",
        "bv",
        "srl",
        "spa",
    }
)

_NON_ALNUM = re.compile(r"[^a-z0-9 ]+")
_WHITESPACE = re.compile(r"\s+")


def normalize_company_name(name: str) -> str:
    """Canonical form of a company name for blocking and exact matching.

    Lowercases, strips punctuation and diacritically-simple symbols, removes
    trailing legal-form suffixes ("inc", "gmbh", ...), and collapses
    whitespace.  The empty string is returned for names that normalise away
    entirely; callers should treat that as unmatchable.
    """
    if not isinstance(name, str):
        raise TypeError(f"name must be a string, got {type(name).__name__}")
    lowered = name.casefold().replace("&", " and ")
    stripped = _NON_ALNUM.sub(" ", lowered)
    tokens = _WHITESPACE.sub(" ", stripped).strip().split(" ")
    while tokens and tokens[-1] in _LEGAL_SUFFIXES:
        tokens.pop()
    return " ".join(t for t in tokens if t)


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity in [0, 1]; 1 means identical, 0 means disjoint."""
    if left == right:
        return 1.0
    len_l, len_r = len(left), len(right)
    if len_l == 0 or len_r == 0:
        return 0.0
    match_window = max(len_l, len_r) // 2 - 1
    match_window = max(match_window, 0)

    left_matched = [False] * len_l
    right_matched = [False] * len_r
    matches = 0
    for i, char in enumerate(left):
        lo = max(0, i - match_window)
        hi = min(len_r, i + match_window + 1)
        for j in range(lo, hi):
            if not right_matched[j] and right[j] == char:
                left_matched[i] = True
                right_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched characters in order.
    transpositions = 0
    j = 0
    for i in range(len_l):
        if left_matched[i]:
            while not right_matched[j]:
                j += 1
            if left[i] != right[j]:
                transpositions += 1
            j += 1
    transpositions //= 2

    m = float(matches)
    return (m / len_l + m / len_r + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(left: str, right: str, *, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a shared prefix of length <= 4."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    jaro = jaro_similarity(left, right)
    prefix = 0
    for l_char, r_char in zip(left[:4], right[:4]):
        if l_char != r_char:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


class CompanyNameMatcher:
    """Blocked fuzzy matcher from query names to a reference name list.

    Reference names are indexed by the first token of their normalised form;
    a query only scores against names sharing its block (plus exact
    normalised matches, which short-circuit at similarity 1.0).  This is the
    standard blocking trick that keeps linkage linear-ish in practice.
    """

    def __init__(self, reference_names: list[str], *, threshold: float = 0.88) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self._reference = list(reference_names)
        self._by_normal: dict[str, int] = {}
        self._blocks: dict[str, list[int]] = defaultdict(list)
        for index, name in enumerate(self._reference):
            normal = normalize_company_name(name)
            if not normal:
                continue
            self._by_normal.setdefault(normal, index)
            first_token = normal.split(" ", 1)[0]
            self._blocks[first_token].append(index)

    def match(self, query: str) -> tuple[int, float] | None:
        """Best reference index for ``query``, or ``None`` below threshold.

        Returns ``(index, similarity)``; exact normalised matches return
        similarity 1.0 without fuzzy scoring.
        """
        normal = normalize_company_name(query)
        if not normal:
            return None
        exact = self._by_normal.get(normal)
        if exact is not None:
            return exact, 1.0
        first_token = normal.split(" ", 1)[0]
        best_index, best_score = -1, 0.0
        for index in self._blocks.get(first_token, ()):
            candidate = normalize_company_name(self._reference[index])
            score = jaro_winkler_similarity(normal, candidate)
            if score > best_score:
                best_index, best_score = index, score
        if best_index >= 0 and best_score >= self.threshold:
            return best_index, best_score
        return None

    def match_all(self, queries: list[str]) -> list[tuple[int, float] | None]:
        """Vector form of :meth:`match`."""
        return [self.match(q) for q in queries]

    def __len__(self) -> int:
        return len(self._reference)
