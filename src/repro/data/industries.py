"""SIC2 industry taxonomy.

The paper's companies "belong to 83 industries ... encoded with the SIC2
codes" (Section 5).  The two-digit Standard Industrial Classification major
groups contain exactly 83 codes, reproduced here; the simulator draws each
company's industry from this table, and the sales application filters on it.
"""

from __future__ import annotations

__all__ = ["SIC2_INDUSTRIES", "SIC2_CODES", "industry_name", "is_valid_sic2"]

#: Mapping of two-digit SIC code -> major-group name (83 entries).
SIC2_INDUSTRIES: dict[int, str] = {
    1: "Agricultural Production Crops",
    2: "Agricultural Production Livestock",
    7: "Agricultural Services",
    8: "Forestry",
    9: "Fishing, Hunting and Trapping",
    10: "Metal Mining",
    12: "Coal Mining",
    13: "Oil and Gas Extraction",
    14: "Mining of Nonmetallic Minerals",
    15: "Building Construction",
    16: "Heavy Construction",
    17: "Construction Special Trade Contractors",
    20: "Food and Kindred Products",
    21: "Tobacco Products",
    22: "Textile Mill Products",
    23: "Apparel and Other Finished Products",
    24: "Lumber and Wood Products",
    25: "Furniture and Fixtures",
    26: "Paper and Allied Products",
    27: "Printing, Publishing and Allied Industries",
    28: "Chemicals and Allied Products",
    29: "Petroleum Refining and Related Industries",
    30: "Rubber and Miscellaneous Plastics Products",
    31: "Leather and Leather Products",
    32: "Stone, Clay, Glass and Concrete Products",
    33: "Primary Metal Industries",
    34: "Fabricated Metal Products",
    35: "Industrial and Commercial Machinery",
    36: "Electronic and Other Electrical Equipment",
    37: "Transportation Equipment",
    38: "Measuring and Analyzing Instruments",
    39: "Miscellaneous Manufacturing Industries",
    40: "Railroad Transportation",
    41: "Local and Suburban Transit",
    42: "Motor Freight Transportation and Warehousing",
    43: "United States Postal Service",
    44: "Water Transportation",
    45: "Transportation by Air",
    46: "Pipelines, Except Natural Gas",
    47: "Transportation Services",
    48: "Communications",
    49: "Electric, Gas and Sanitary Services",
    50: "Wholesale Trade - Durable Goods",
    51: "Wholesale Trade - Nondurable Goods",
    52: "Building Materials and Garden Supply",
    53: "General Merchandise Stores",
    54: "Food Stores",
    55: "Automotive Dealers and Service Stations",
    56: "Apparel and Accessory Stores",
    57: "Home Furniture and Equipment Stores",
    58: "Eating and Drinking Places",
    59: "Miscellaneous Retail",
    60: "Depository Institutions",
    61: "Non-depository Credit Institutions",
    62: "Security and Commodity Brokers",
    63: "Insurance Carriers",
    64: "Insurance Agents, Brokers and Service",
    65: "Real Estate",
    67: "Holding and Other Investment Offices",
    70: "Hotels and Other Lodging Places",
    72: "Personal Services",
    73: "Business Services",
    75: "Automotive Repair, Services and Parking",
    76: "Miscellaneous Repair Services",
    78: "Motion Pictures",
    79: "Amusement and Recreation Services",
    80: "Health Services",
    81: "Legal Services",
    82: "Educational Services",
    83: "Social Services",
    84: "Museums, Art Galleries and Gardens",
    86: "Membership Organizations",
    87: "Engineering and Management Services",
    88: "Private Households",
    89: "Miscellaneous Services",
    91: "Executive, Legislative and General Government",
    92: "Justice, Public Order and Safety",
    93: "Public Finance, Taxation and Monetary Policy",
    94: "Administration of Human Resource Programs",
    95: "Administration of Environmental Quality Programs",
    96: "Administration of Economic Programs",
    97: "National Security and International Affairs",
    99: "Nonclassifiable Establishments",
}

#: Sorted tuple of the 83 valid SIC2 codes.
SIC2_CODES: tuple[int, ...] = tuple(sorted(SIC2_INDUSTRIES))


def industry_name(sic2: int) -> str:
    """Human-readable major-group name for a SIC2 code."""
    try:
        return SIC2_INDUSTRIES[sic2]
    except KeyError:
        raise KeyError(f"unknown SIC2 code {sic2}") from None


def is_valid_sic2(sic2: int) -> bool:
    """Whether ``sic2`` is one of the 83 valid two-digit codes."""
    return sic2 in SIC2_INDUSTRIES
