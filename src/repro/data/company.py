"""Company and install-base entities, plus the domestic aggregation step.

The HG-Data-style raw feed is a stream of per-site :class:`InstallRecord`
rows: "for each company assessed ... the type of IT products available at
each site ... some indication about the confidence of the information
provided, and dates of the first as well as the most recent successful
confirmation of product presence" (Section 2).

Modelling happens on *aggregated companies*: all sites sharing a domestic
ultimate D-U-N-S number are merged, products are unioned, and each product
keeps the earliest first-seen date across sites (Section 5).  The result is
the :class:`Company` entity consumed by :class:`repro.data.corpus.Corpus`.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.data.duns import DunsNumber, DunsRegistry
from repro.data.industries import is_valid_sic2

__all__ = ["InstallRecord", "CompanySite", "Company", "aggregate_domestic"]

#: Confidence levels attached to raw install records by the data provider.
CONFIDENCE_LEVELS: tuple[str, ...] = ("low", "medium", "high")


@dataclass(frozen=True)
class InstallRecord:
    """One raw observation: a product category confirmed at a site."""

    duns: DunsNumber
    category: str
    first_seen: dt.date
    last_seen: dt.date
    confidence: str = "high"

    def __post_init__(self) -> None:
        if self.confidence not in CONFIDENCE_LEVELS:
            raise ValueError(
                f"confidence must be one of {CONFIDENCE_LEVELS}, got {self.confidence!r}"
            )
        if self.last_seen < self.first_seen:
            raise ValueError(
                f"last_seen {self.last_seen} precedes first_seen {self.first_seen} "
                f"for {self.category!r} at {self.duns}"
            )


@dataclass
class CompanySite:
    """A single business location with its raw install records."""

    duns: DunsNumber
    name: str
    country: str
    records: list[InstallRecord] = field(default_factory=list)

    def categories(self) -> set[str]:
        """Distinct categories observed at this site."""
        return {r.category for r in self.records}


@dataclass
class Company:
    """An aggregated (domestic-ultimate level) company.

    ``first_seen`` maps each owned category to the earliest confirmation
    date across the company's sites; iterating those pairs sorted by date
    yields the time-ordered attribute sequence A^S of Section 2.
    """

    duns: DunsNumber
    name: str
    country: str
    sic2: int
    first_seen: dict[str, dt.date] = field(default_factory=dict)
    n_sites: int = 1

    def __post_init__(self) -> None:
        if not is_valid_sic2(self.sic2):
            raise ValueError(f"invalid SIC2 code {self.sic2} for company {self.name!r}")
        if self.n_sites < 1:
            raise ValueError(f"n_sites must be >= 1, got {self.n_sites}")

    @property
    def categories(self) -> frozenset[str]:
        """The product set A_i of Section 2 (order-free view)."""
        return frozenset(self.first_seen)

    def sorted_categories(self) -> list[tuple[str, dt.date]]:
        """The time-sorted attribute series A^S_i of Section 2.

        Ties on the date are broken alphabetically so the ordering is
        deterministic.
        """
        return sorted(self.first_seen.items(), key=lambda item: (item[1], item[0]))

    def categories_before(self, cutoff: dt.date) -> list[tuple[str, dt.date]]:
        """Time-sorted categories first seen strictly before ``cutoff``.

        Used by the sliding-window recommendation harness: everything before
        a window start is training history.
        """
        return [(c, d) for c, d in self.sorted_categories() if d < cutoff]

    def categories_within(self, start: dt.date, end: dt.date) -> list[str]:
        """Categories whose first appearance falls in ``[start, end)``.

        These are the ground-truth "future products" of a recommendation
        window.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        return sorted(c for c, d in self.first_seen.items() if start <= d < end)

    def __len__(self) -> int:
        return len(self.first_seen)


def aggregate_domestic(
    sites: Iterable[CompanySite],
    registry: DunsRegistry,
    *,
    sic2_by_ultimate: Mapping[str, int],
    min_confidence: str = "low",
) -> list[Company]:
    """Merge sites into domestic-ultimate companies (Section 5 aggregation).

    Parameters
    ----------
    sites:
        Raw per-location data.
    registry:
        Hierarchy used to resolve each site to its domestic ultimate.
    sic2_by_ultimate:
        Industry code for each domestic-ultimate D-U-N-S value.
    min_confidence:
        Records below this confidence level are dropped before aggregation —
        the cleaning step the provider's confidence field supports.

    Returns
    -------
    list[Company]
        One company per domestic ultimate, sorted by D-U-N-S value.  The
        company's name and country come from its ultimate site when that
        site is present, else from the first site encountered.
    """
    if min_confidence not in CONFIDENCE_LEVELS:
        raise ValueError(
            f"min_confidence must be one of {CONFIDENCE_LEVELS}, got {min_confidence!r}"
        )
    threshold = CONFIDENCE_LEVELS.index(min_confidence)

    merged: dict[str, dict[str, dt.date]] = {}
    names: dict[str, str] = {}
    countries: dict[str, str] = {}
    site_counts: dict[str, int] = {}

    for site in sites:
        ultimate = registry.domestic_ultimate(site.duns).value
        site_counts[ultimate] = site_counts.get(ultimate, 0) + 1
        if site.duns.value == ultimate or ultimate not in names:
            names[ultimate] = site.name
            countries[ultimate] = site.country
        bucket = merged.setdefault(ultimate, {})
        for record in site.records:
            # threshold 0 accepts every confidence level: skip the lookup.
            if threshold and CONFIDENCE_LEVELS.index(record.confidence) < threshold:
                continue
            current = bucket.get(record.category)
            if current is None or record.first_seen < current:
                bucket[record.category] = record.first_seen

    companies = []
    for ultimate in sorted(merged):
        if ultimate not in sic2_by_ultimate:
            raise KeyError(f"no SIC2 code supplied for domestic ultimate {ultimate}")
        companies.append(
            Company(
                # Keys come from registry walks over validated registrations.
                duns=DunsNumber._trusted(ultimate),
                name=names[ultimate],
                country=countries[ultimate],
                sic2=sic2_by_ultimate[ultimate],
                first_seen=merged[ultimate],
                n_sites=site_counts[ultimate],
            )
        )
    return companies
