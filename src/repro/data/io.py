"""CSV interchange for install-base data.

A downstream adopter has their own provider feed, not our simulator.  This
module defines a plain-CSV on-disk format for the two things the pipeline
needs — per-site install records and company firmographics — plus writers
so simulated universes can be exported as fixtures.

Format
------
``records.csv`` (one row per install record)::

    duns,parent_duns,company_name,country,sic2,category,first_seen,last_seen,confidence
    001234567,,Acme Corp,US,80,server_HW,2004-06-15,2015-11-02,high
    001234575,001234567,Acme Corp Site 1,US,80,DBMS,2006-01-20,2014-03-11,medium

``parent_duns`` is empty for domestic-ultimate sites.  Dates are ISO
(YYYY-MM-DD).  ``sic2`` must be given at least for ultimate sites.

The loader rebuilds the :class:`~repro.data.duns.DunsRegistry`, the site
list, and runs the same domestic aggregation the simulator path uses, so a
corpus built from CSV behaves identically to a simulated one.
"""

from __future__ import annotations

import csv
import datetime as dt
from pathlib import Path

from repro.data.company import Company, CompanySite, InstallRecord, aggregate_domestic
from repro.data.duns import DunsNumber, DunsRegistry
from repro.data.synthetic import SimulatedUniverse

__all__ = ["write_records_csv", "read_records_csv", "load_companies_csv"]

_COLUMNS = (
    "duns",
    "parent_duns",
    "company_name",
    "country",
    "sic2",
    "category",
    "first_seen",
    "last_seen",
    "confidence",
)


def write_records_csv(universe: SimulatedUniverse, path: str | Path) -> int:
    """Export a simulated universe's raw feed; returns the row count.

    Sites without records still contribute one row with an empty category so
    the site hierarchy round-trips.
    """
    parent_of: dict[str, str] = {}
    for site_duns in universe.registry:
        for child in universe.registry.children_of(site_duns):
            parent_of[child.value] = site_duns.value
    n_rows = 0
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for site in universe.sites:
            ultimate = universe.registry.domestic_ultimate(site.duns).value
            sic2 = universe.sic2_by_ultimate.get(ultimate, "")
            base = [
                site.duns.value,
                parent_of.get(site.duns.value, ""),
                site.name,
                site.country,
                sic2,
            ]
            if not site.records:
                writer.writerow(base + ["", "", "", ""])
                n_rows += 1
                continue
            for record in site.records:
                writer.writerow(
                    base
                    + [
                        record.category,
                        record.first_seen.isoformat(),
                        record.last_seen.isoformat(),
                        record.confidence,
                    ]
                )
                n_rows += 1
    return n_rows


def read_records_csv(
    path: str | Path,
) -> tuple[list[CompanySite], DunsRegistry, dict[str, int]]:
    """Parse a records CSV back into sites, registry and SIC2 map.

    Raises :class:`ValueError` with the offending line number on malformed
    rows; a feed that parses silently wrong is worse than one that fails.
    """
    sites: dict[str, CompanySite] = {}
    parents: dict[str, str] = {}
    countries: dict[str, str] = {}
    sic2_raw: dict[str, int] = {}
    with open(Path(path), newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_COLUMNS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"records CSV missing columns: {sorted(missing)}")
        for line_number, row in enumerate(reader, start=2):
            duns_value = row["duns"].strip()
            try:
                duns = DunsNumber(duns_value)
            except ValueError as exc:
                raise ValueError(f"line {line_number}: {exc}") from exc
            if duns_value not in sites:
                sites[duns_value] = CompanySite(
                    duns=duns,
                    name=row["company_name"].strip(),
                    country=row["country"].strip(),
                )
                parent = row["parent_duns"].strip()
                if parent:
                    parents[duns_value] = parent
                countries[duns_value] = row["country"].strip()
            if row["sic2"].strip():
                try:
                    sic2_raw[duns_value] = int(row["sic2"])
                except ValueError:
                    raise ValueError(
                        f"line {line_number}: sic2 {row['sic2']!r} is not an integer"
                    ) from None
            category = row["category"].strip()
            if not category:
                continue
            try:
                first_seen = dt.date.fromisoformat(row["first_seen"].strip())
                last_seen = dt.date.fromisoformat(row["last_seen"].strip())
            except ValueError:
                raise ValueError(
                    f"line {line_number}: dates must be ISO YYYY-MM-DD"
                ) from None
            confidence = row["confidence"].strip() or "high"
            try:
                record = InstallRecord(
                    duns=duns,
                    category=category,
                    first_seen=first_seen,
                    last_seen=last_seen,
                    confidence=confidence,
                )
            except ValueError as exc:
                raise ValueError(f"line {line_number}: {exc}") from exc
            sites[duns_value].records.append(record)

    # Rebuild the registry parents-first (ultimates before children).
    registry = DunsRegistry()
    remaining = dict(parents)
    for duns_value in sites:
        if duns_value not in remaining:
            registry.register(DunsNumber(duns_value), country=countries[duns_value])
    while remaining:
        progressed = False
        for child, parent in list(remaining.items()):
            if DunsNumber(parent) in registry:
                registry.register(
                    DunsNumber(child),
                    country=countries[child],
                    parent=DunsNumber(parent),
                )
                del remaining[child]
                progressed = True
        if not progressed:
            raise ValueError(
                f"unresolvable parent references: {sorted(remaining.items())[:3]}"
            )

    # Propagate SIC2 codes to the domestic ultimates.
    sic2_by_ultimate: dict[str, int] = {}
    for duns_value, code in sic2_raw.items():
        ultimate = registry.domestic_ultimate(DunsNumber(duns_value)).value
        sic2_by_ultimate.setdefault(ultimate, code)
    return list(sites.values()), registry, sic2_by_ultimate


def load_companies_csv(path: str | Path, *, min_confidence: str = "low") -> list[Company]:
    """One-call loader: CSV feed -> aggregated domestic companies."""
    sites, registry, sic2_by_ultimate = read_records_csv(path)
    return aggregate_domestic(
        sites, registry, sic2_by_ultimate=sic2_by_ultimate,
        min_confidence=min_confidence,
    )
