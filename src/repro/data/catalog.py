"""Product catalog: the 4-level HG-Data-style product hierarchy.

The paper's data source (HG Data Company) organises product descriptions in
four levels: vendor -> category parent -> category -> product type
(Section 2).  Companies are modelled at the *category* layer; the paper's
deployment has 91 distinct categories overall and restricts the study to the
38 hardware and low-level-hardware-management-software categories.

:data:`HARDWARE_CATEGORIES` reproduces exactly the 38 category names the
paper displays in its t-SNE figures (Figures 8 and 9).  The remaining 53
categories in :data:`FULL_CATEGORY_UNIVERSE` are plausible higher-level
software/services categories; they exist so that the catalog-restriction
code path (91 -> 38) is exercised the way the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "HARDWARE_CATEGORIES",
    "SOFTWARE_SERVICE_CATEGORIES",
    "FULL_CATEGORY_UNIVERSE",
    "CATEGORY_PARENTS",
    "ProductType",
    "Category",
    "Vendor",
    "ProductCatalog",
    "build_default_catalog",
]

#: The 38 hardware / low-level-management categories the paper studies.
#: Names match the labels shown in the paper's Figures 8 and 9.
HARDWARE_CATEGORIES: tuple[str, ...] = (
    "asset_performance",
    "cloud_infrastructure",
    "collaboration",
    "commerce",
    "communication_tech",
    "contact_center",
    "data_archiving",
    "DBMS",
    "disaster_recovery",
    "document_management",
    "electronics_PCs_SW",
    "financial_apps",
    "HR_human_management",
    "HW_other",
    "hypervisor",
    "IT_infrastructure",
    "mainframes",
    "media",
    "midrange",
    "mobile_tech",
    "network_HW",
    "network_SW",
    "OS",
    "platform_as_a_service",
    "printers",
    "product_lifecycle",
    "remote",
    "retail",
    "search_engine",
    "security_management",
    "server_HW",
    "server_SW",
    "storage_HW",
    "system_security_services",
    "telephony",
    "virtualization_apps",
    "virtualization_platform",
    "virtualization_server",
)

#: The other 53 categories present in the 91-category universe but excluded
#: from the study (higher-level software and services).
SOFTWARE_SERVICE_CATEGORIES: tuple[str, ...] = (
    "accounting_SW",
    "ad_serving",
    "analytics_BI",
    "API_management",
    "application_development",
    "application_performance",
    "authentication",
    "backup_SaaS",
    "big_data_processing",
    "blogging_platform",
    "business_process_management",
    "call_tracking",
    "campaign_management",
    "chat_support",
    "CMS",
    "content_delivery_network",
    "CRM",
    "customer_experience",
    "data_integration",
    "data_quality",
    "demand_generation",
    "ecommerce_hosting",
    "email_marketing",
    "email_providers",
    "enterprise_resource_planning",
    "event_management",
    "expense_management",
    "fleet_management",
    "fraud_detection",
    "GIS_mapping",
    "help_desk",
    "identity_management",
    "industry_vertical_SW",
    "learning_management",
    "load_balancing",
    "loyalty_marketing",
    "marketing_automation",
    "master_data_management",
    "payment_processing",
    "payroll",
    "project_management",
    "recruiting_SW",
    "SEO_tools",
    "site_search",
    "social_media_management",
    "supply_chain_management",
    "survey_tools",
    "tag_management",
    "tax_SW",
    "translation_services",
    "video_conferencing",
    "web_analytics",
    "web_hosting",
)

#: All 91 distinct categories (the paper's full deployment).
FULL_CATEGORY_UNIVERSE: tuple[str, ...] = tuple(
    sorted(HARDWARE_CATEGORIES + SOFTWARE_SERVICE_CATEGORIES)
)

#: Category-parent assignment for the 38 studied categories.  Parents are
#: high-level groupings like "Data Center Solution" (Section 2's examples).
CATEGORY_PARENTS: dict[str, str] = {
    "server_HW": "Hardware (Basic)",
    "storage_HW": "Hardware (Basic)",
    "HW_other": "Hardware (Basic)",
    "printers": "Hardware (Basic)",
    "mainframes": "Hardware (Basic)",
    "midrange": "Hardware (Basic)",
    "network_HW": "Hardware (Basic)",
    "electronics_PCs_SW": "Hardware (Basic)",
    "cloud_infrastructure": "Data Center Solution",
    "IT_infrastructure": "Data Center Solution",
    "data_archiving": "Data Center Solution",
    "disaster_recovery": "Data Center Solution",
    "platform_as_a_service": "Data Center Solution",
    "virtualization_apps": "Virtualization",
    "virtualization_platform": "Virtualization",
    "virtualization_server": "Virtualization",
    "hypervisor": "Virtualization",
    "OS": "System Software",
    "DBMS": "System Software",
    "server_SW": "System Software",
    "network_SW": "System Software",
    "asset_performance": "IT Management",
    "product_lifecycle": "IT Management",
    "document_management": "IT Management",
    "remote": "IT Management",
    "security_management": "Security",
    "system_security_services": "Security",
    "collaboration": "Enterprise Applications",
    "commerce": "Enterprise Applications",
    "financial_apps": "Enterprise Applications",
    "HR_human_management": "Enterprise Applications",
    "media": "Enterprise Applications",
    "retail": "Enterprise Applications",
    "search_engine": "Enterprise Applications",
    "communication_tech": "Communications",
    "contact_center": "Communications",
    "telephony": "Communications",
    "mobile_tech": "Communications",
}

#: Default vendor names used by :func:`build_default_catalog`.
_DEFAULT_VENDORS: tuple[str, ...] = (
    "NorthBridge Systems",
    "Helios Computing",
    "Atlant Software",
    "Quorum Networks",
    "VireoTech",
    "Meridian Data",
    "Castellan Security",
    "BluePeak Cloud",
)


@dataclass(frozen=True)
class ProductType:
    """Leaf of the hierarchy: a concrete product type of one vendor.

    The paper cannot use this level (its internal data does not link to it,
    Section 2); it exists so the catalog mirrors the real database's shape.
    """

    name: str
    category: str
    vendor: str


@dataclass(frozen=True)
class Category:
    """A product category, the modelling granularity of the paper."""

    name: str
    parent: str

    def is_hardware(self) -> bool:
        """Whether the category belongs to the 38 studied categories."""
        return self.name in HARDWARE_CATEGORIES


@dataclass
class Vendor:
    """Top level of the hierarchy: a vendor with its category parents."""

    name: str
    product_types: list[ProductType] = field(default_factory=list)

    def categories(self) -> set[str]:
        """Distinct categories this vendor sells into."""
        return {pt.category for pt in self.product_types}

    def category_parents(self) -> set[str]:
        """Distinct category parents this vendor sells into."""
        return {
            CATEGORY_PARENTS.get(pt.category, "Software & Services")
            for pt in self.product_types
        }


class ProductCatalog:
    """The 4-level vendor -> parent -> category -> product-type hierarchy.

    Provides the two operations the paper's pipeline needs:

    * flattening to the *category* layer independently of vendors, and
    * restricting the 91-category universe to the 38 hardware categories.

    Category indices are stable and alphabetical within each view so corpora
    built from the same catalog agree on vocabulary order.
    """

    def __init__(self, vendors: list[Vendor]) -> None:
        if not vendors:
            raise ValueError("catalog must contain at least one vendor")
        self._vendors = {v.name: v for v in vendors}
        if len(self._vendors) != len(vendors):
            raise ValueError("duplicate vendor names in catalog")
        categories = sorted({pt.category for v in vendors for pt in v.product_types})
        if not categories:
            raise ValueError("catalog must contain at least one category")
        self._categories = tuple(categories)
        self._category_index = {name: i for i, name in enumerate(self._categories)}

    @property
    def vendors(self) -> tuple[str, ...]:
        """Vendor names in insertion order."""
        return tuple(self._vendors)

    @property
    def categories(self) -> tuple[str, ...]:
        """All distinct category names, sorted."""
        return self._categories

    @property
    def n_categories(self) -> int:
        """Number of distinct categories in this catalog."""
        return len(self._categories)

    def category_index(self, name: str) -> int:
        """Stable index of a category name within this catalog."""
        try:
            return self._category_index[name]
        except KeyError:
            raise KeyError(f"unknown category {name!r}") from None

    def category(self, name: str) -> Category:
        """Return the :class:`Category` record for ``name``."""
        if name not in self._category_index:
            raise KeyError(f"unknown category {name!r}")
        return Category(name=name, parent=CATEGORY_PARENTS.get(name, "Software & Services"))

    def vendor(self, name: str) -> Vendor:
        """Return the :class:`Vendor` record for ``name``."""
        try:
            return self._vendors[name]
        except KeyError:
            raise KeyError(f"unknown vendor {name!r}") from None

    def product_types(self, category: str | None = None) -> list[ProductType]:
        """All product types, optionally restricted to one category."""
        result = [
            pt
            for vendor in self._vendors.values()
            for pt in vendor.product_types
            if category is None or pt.category == category
        ]
        if category is not None and category not in self._category_index:
            raise KeyError(f"unknown category {category!r}")
        return result

    def product_type_names(self) -> tuple[str, ...]:
        """All product-type names, sorted (the leaf-level vocabulary)."""
        return tuple(sorted(pt.name for pt in self.product_types()))

    def category_of_type(self, type_name: str) -> str:
        """The category a product type belongs to (leaf -> category roll-up)."""
        for pt in self.product_types():
            if pt.name == type_name:
                return pt.category
        raise KeyError(f"unknown product type {type_name!r}")

    def restrict_to_hardware(self) -> "ProductCatalog":
        """The 91 -> 38 restriction step of Section 2.

        Returns a new catalog containing only product types whose category is
        one of the paper's 38 hardware / low-level-management categories.
        Vendors left with no product types are dropped.
        """
        hardware = set(HARDWARE_CATEGORIES)
        vendors = []
        for vendor in self._vendors.values():
            kept = [pt for pt in vendor.product_types if pt.category in hardware]
            if kept:
                vendors.append(Vendor(name=vendor.name, product_types=kept))
        if not vendors:
            raise ValueError("restriction removed every vendor from the catalog")
        return ProductCatalog(vendors)

    def __contains__(self, category: str) -> bool:
        return category in self._category_index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ProductCatalog(n_vendors={len(self._vendors)}, "
            f"n_categories={self.n_categories})"
        )


def build_default_catalog(*, full_universe: bool = False) -> ProductCatalog:
    """Build the default catalog used across the library.

    With ``full_universe=False`` (the default) the catalog holds exactly the
    paper's 38 hardware categories; with ``full_universe=True`` it holds all
    91 categories so the restriction step can be demonstrated.

    Each category is given one product type per default vendor, spreading
    vendors round-robin so every vendor covers several category parents.
    """
    categories = FULL_CATEGORY_UNIVERSE if full_universe else HARDWARE_CATEGORIES
    vendor_types: dict[str, list[ProductType]] = {name: [] for name in _DEFAULT_VENDORS}
    for i, category in enumerate(sorted(categories)):
        # Two vendors per category: realistic competition without blowing up
        # the leaf count.
        for offset in (0, 3):
            vendor = _DEFAULT_VENDORS[(i + offset) % len(_DEFAULT_VENDORS)]
            vendor_types[vendor].append(
                ProductType(
                    name=f"{category}_type_{offset // 3 + 1}",
                    category=category,
                    vendor=vendor,
                )
            )
    vendors = [Vendor(name=name, product_types=types) for name, types in vendor_types.items()]
    return ProductCatalog(vendors)
