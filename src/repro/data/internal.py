"""Simulated internal sales database and firmographics.

Section 6 of the paper deploys the trained company representations in a
sales tool: external (HG-Data-style) similarity search is combined with an
*internal* database recording which products the provider has already sold
to which client, plus firmographic filters (industry, location, number of
employees, revenue).  This module simulates that internal side:

* :class:`FirmographicRecord` — revenue / employee / location attributes;
* :class:`InternalSalesDatabase` — per-client sold-product sets, the "gaps"
  source of the recommendation tool.

The simulation derives firmographics from observable company structure
(site count, install-base size) so that filters in the app behave plausibly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_rng, check_probability
from repro.data.company import Company

__all__ = ["FirmographicRecord", "InternalSalesDatabase"]


@dataclass(frozen=True)
class FirmographicRecord:
    """Attributes the sales tool filters on (Section 6)."""

    duns: str
    name: str
    country: str
    sic2: int
    employees: int
    revenue_musd: float

    def __post_init__(self) -> None:
        if self.employees < 1:
            raise ValueError(f"employees must be >= 1, got {self.employees}")
        if self.revenue_musd < 0:
            raise ValueError(f"revenue must be >= 0, got {self.revenue_musd}")


class InternalSalesDatabase:
    """Provider-internal view: who is a client, and what was sold to them.

    Parameters
    ----------
    companies:
        The aggregated external universe; a random subset becomes "existing
        clients" for which sold products are recorded.
    client_rate:
        Fraction of companies that are existing clients.
    coverage:
        For an existing client, the probability that each owned product is
        recorded as *sold by us* (the rest of the install base came from
        competitors — those are the whitespace opportunities).
    seed:
        Randomness control.
    """

    def __init__(
        self,
        companies: list[Company],
        *,
        client_rate: float = 0.3,
        coverage: float = 0.6,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if not companies:
            raise ValueError("internal database needs at least one company")
        check_probability(client_rate, "client_rate")
        check_probability(coverage, "coverage")
        rng = as_rng(seed)

        self._firmographics: dict[str, FirmographicRecord] = {}
        self._sold: dict[str, frozenset[str]] = {}

        for company in companies:
            key = company.duns.value
            employees = self._derive_employees(company, rng)
            revenue = self._derive_revenue(employees, rng)
            self._firmographics[key] = FirmographicRecord(
                duns=key,
                name=company.name,
                country=company.country,
                sic2=company.sic2,
                employees=employees,
                revenue_musd=revenue,
            )
            if rng.random() < client_rate:
                sold = frozenset(
                    category
                    for category in company.categories
                    if rng.random() < coverage
                )
                self._sold[key] = sold

    @staticmethod
    def _derive_employees(company: Company, rng: np.random.Generator) -> int:
        """Headcount grows with sites and install-base size, log-normally."""
        scale = 1.0 + 0.6 * company.n_sites + 0.25 * len(company)
        return max(1, int(rng.lognormal(mean=np.log(40.0 * scale), sigma=0.8)))

    @staticmethod
    def _derive_revenue(employees: int, rng: np.random.Generator) -> float:
        """Revenue in millions USD, roughly proportional to headcount."""
        per_head_kusd = rng.lognormal(mean=np.log(220.0), sigma=0.5)
        return round(employees * per_head_kusd / 1000.0, 3)

    # ------------------------------------------------------------------
    # Queries used by the sales application
    # ------------------------------------------------------------------
    def is_client(self, duns: str) -> bool:
        """Whether the company is an existing client."""
        return duns in self._sold

    def clients(self) -> list[str]:
        """D-U-N-S values of all existing clients, sorted."""
        return sorted(self._sold)

    def sold_products(self, duns: str) -> frozenset[str]:
        """Products we already sold to a client (empty set for non-clients)."""
        return self._sold.get(duns, frozenset())

    def firmographics(self, duns: str) -> FirmographicRecord:
        """Firmographic record for any company in the universe."""
        try:
            return self._firmographics[duns]
        except KeyError:
            raise KeyError(f"unknown company {duns}") from None

    def whitespace(self, company: Company) -> frozenset[str]:
        """Owned-but-not-sold-by-us products: the sales opportunity set."""
        return frozenset(company.categories) - self.sold_products(company.duns.value)

    def __len__(self) -> int:
        return len(self._firmographics)

    def __contains__(self, duns: str) -> bool:
        return duns in self._firmographics
