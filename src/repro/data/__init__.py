"""Data substrate: product catalog, company entities, simulator, corpus.

This package replaces the proprietary HG Data Company install-base database
used in the paper with a faithful synthetic equivalent (see DESIGN.md,
Section 2) and provides the corpus abstraction every model consumes.
"""

from repro.data.catalog import (
    HARDWARE_CATEGORIES,
    FULL_CATEGORY_UNIVERSE,
    Category,
    ProductCatalog,
    ProductType,
    Vendor,
    build_default_catalog,
)
from repro.data.columnar import (
    ColumnarCorpus,
    ColumnarStore,
    ColumnarWriter,
    CorpusFormatError,
    manifest_fingerprint,
    open_corpus,
    simulate_to_columnar,
    write_corpus,
)
from repro.data.company import Company, CompanySite, InstallRecord, aggregate_domestic
from repro.data.corpus import Corpus, CorpusSplit
from repro.data.duns import (
    DunsNumber,
    DunsRegistry,
    duns_check_digit,
    is_valid_duns,
)
from repro.data.industries import SIC2_INDUSTRIES, industry_name
from repro.data.internal import FirmographicRecord, InternalSalesDatabase
from repro.data.io import load_companies_csv, read_records_csv, write_records_csv
from repro.data.linkage import (
    CompanyNameMatcher,
    jaro_similarity,
    jaro_winkler_similarity,
    normalize_company_name,
)
from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig

__all__ = [
    "HARDWARE_CATEGORIES",
    "FULL_CATEGORY_UNIVERSE",
    "Category",
    "ProductCatalog",
    "ProductType",
    "Vendor",
    "build_default_catalog",
    "Company",
    "CompanySite",
    "InstallRecord",
    "aggregate_domestic",
    "Corpus",
    "CorpusSplit",
    "ColumnarCorpus",
    "ColumnarStore",
    "ColumnarWriter",
    "CorpusFormatError",
    "manifest_fingerprint",
    "open_corpus",
    "simulate_to_columnar",
    "write_corpus",
    "DunsNumber",
    "DunsRegistry",
    "duns_check_digit",
    "is_valid_duns",
    "SIC2_INDUSTRIES",
    "industry_name",
    "FirmographicRecord",
    "InternalSalesDatabase",
    "load_companies_csv",
    "read_records_csv",
    "write_records_csv",
    "CompanyNameMatcher",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "normalize_company_name",
    "InstallBaseSimulator",
    "SimulatorConfig",
]
