"""Synthetic install-base universe: the stand-in for the HG Data feed.

The paper trains on a proprietary database of 860k companies' IT install
bases.  We cannot ship that data, so this module implements an explicit
generative simulator whose output has the statistical shape the paper's
findings depend on (see DESIGN.md Section 2 for the substitution argument):

* a **dense, small-vocabulary** binary company x category matrix over the
  paper's 38 hardware categories;
* companies generated from a handful of **latent IT profiles** (a topic
  mixture), which is why low-topic-count LDA fits well;
* **moderate sequential structure** in acquisition order — products have
  typical adoption stages (base hardware before virtualization before
  cloud), perturbed by noise, reproducing the paper's measurement that a
  majority of bigrams are significantly non-i.i.d. while sequence models
  still do not beat LDA;
* a long-tailed **popularity skew** with a few near-universal categories
  (operating systems, network hardware, ...), the phenomenon that defeats
  naive similarity and co-clustering in Section 3.1;
* full provider-feed realism: per-site records with D-U-N-S identifiers,
  confidence levels, first/last-seen dates, SIC2 industries, and a site
  hierarchy that exercises the domestic-ultimate aggregation path.

The simulator exposes its ground truth (topic mixtures and topic-product
distributions) so tests can verify that the models recover it.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

import numpy as np

from repro._validation import (
    as_rng,
    check_in_choices,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)
from repro.data.catalog import (
    CATEGORY_PARENTS,
    HARDWARE_CATEGORIES,
    ProductCatalog,
    build_default_catalog,
)
from repro.data.company import (
    CONFIDENCE_LEVELS,
    Company,
    CompanySite,
    InstallRecord,
    aggregate_domestic,
)
from repro.data.duns import DunsNumber, DunsRegistry, duns_values_from_sequences
from repro.data.industries import SIC2_CODES
from repro.preprocessing.timeutil import (
    add_months,
    date_from_month_index,
    month_index,
    months_between,
)

__all__ = ["SimulatorConfig", "SimulatorGroundTruth", "SimulatedUniverse", "InstallBaseSimulator"]

#: Categories that are near-universal across profiles; they produce the
#: popularity skew that biases naive company comparison (Section 2).
_POPULAR_CATEGORIES: tuple[str, ...] = (
    "OS",
    "network_HW",
    "electronics_PCs_SW",
    "security_management",
    "printers",
    "server_HW",
)

#: Typical adoption stage (0 = early, 1 = late) per category parent; the
#: temporal component of the generator orders acquisitions by stage.
_PARENT_STAGE: dict[str, float] = {
    "Hardware (Basic)": 0.05,
    "System Software": 0.15,
    "IT Management": 0.35,
    "Enterprise Applications": 0.50,
    "Communications": 0.55,
    "Security": 0.65,
    "Virtualization": 0.75,
    "Data Center Solution": 0.90,
}

#: Parent groups emphasised by each latent profile, cycled when the
#: configured number of profiles exceeds the list length.
_PROFILE_THEMES: tuple[tuple[str, ...], ...] = (
    ("Hardware (Basic)", "Data Center Solution", "Virtualization", "System Software"),
    ("Enterprise Applications", "IT Management", "System Software"),
    ("Communications", "Security", "Enterprise Applications"),
    ("Data Center Solution", "Security", "Virtualization"),
    ("Hardware (Basic)", "Communications", "IT Management"),
)

_NAME_ADJECTIVES: tuple[str, ...] = (
    "Apex", "Blue Ridge", "Cascade", "Crestline", "Dynamo", "Eastgate",
    "Fairview", "Granite", "Harbor", "Ironwood", "Juniper", "Keystone",
    "Lakeside", "Meridian", "Northwind", "Oakmont", "Pinnacle", "Quantum",
    "Redstone", "Silverline", "Trailhead", "Union", "Vanguard", "Westfield",
    "Yellowtail", "Zenith", "Anchor", "Bright", "Civic", "Delta",
)

_NAME_NOUNS: tuple[str, ...] = (
    "Logistics", "Manufacturing", "Health", "Foods", "Energy", "Retailers",
    "Financial", "Insurance", "Media", "Airlines", "Freight", "Materials",
    "Pharma", "Textiles", "Motors", "Utilities", "Hospitality", "Packaging",
    "Chemicals", "Builders", "Outfitters", "Analytics", "Holdings", "Labs",
)

_NAME_SUFFIXES: tuple[str, ...] = ("Inc.", "LLC", "Corp.", "Co.", "Group", "Ltd.")


@dataclass(frozen=True)
class SimulatorConfig:
    """Knobs of the synthetic universe.

    The defaults are calibrated so that the paper's qualitative results hold
    on corpora of a few thousand companies: unigram perplexity well above
    LDA perplexity, and a majority of bigrams significantly non-i.i.d.
    """

    n_companies: int = 2000
    n_profiles: int = 4
    #: Dirichlet concentration of company profile mixtures; small values
    #: make companies commit to one dominant profile.
    mixture_concentration: float = 0.08
    #: Number of core products in a profile: ownership probability stays
    #: near :attr:`ownership_cap` for the first ``core_size`` preference
    #: ranks and falls off beyond them.  This is the main lever on the
    #: per-profile entropy and therefore on the achievable LDA perplexity.
    core_size: float = 6.0
    #: Width (in ranks) of the ownership fall-off beyond the core; smaller
    #: values give sharper profiles and lower LDA perplexity.
    core_softness: float = 0.35
    #: Maximum ownership probability of a core product.
    ownership_cap: float = 0.97
    #: Baseline ownership probability of any category regardless of profile
    #: (the long tail of odd purchases).
    background_rate: float = 0.004
    #: Standard deviation of the per-company jitter on the core size, giving
    #: companies of the same profile different install-base depths.
    size_jitter_sd: float = 0.3
    #: Minimum number of owned categories.
    min_products: int = 2
    #: How many of the near-universal "popular" categories are interleaved
    #: into every profile's core (the overlap between profiles); the rest of
    #: the popular block lands just beyond the core.  Smaller values make
    #: profiles more distinct, raising the marginal (unigram) entropy
    #: without touching the per-profile entropy.
    shared_head: int = 1
    #: Weight of the adoption-stage component in acquisition order; 0 makes
    #: order i.i.d., 1 makes it deterministic by stage.
    temporal_coherence: float = 0.3
    #: First month a company may start acquiring IT.
    earliest_start: dt.date = dt.date(1990, 1, 1)
    #: Latest month a company may start acquiring IT.
    latest_start: dt.date = dt.date(2010, 1, 1)
    #: End of the observation period (paper: end of January 2016).
    observation_end: dt.date = dt.date(2016, 1, 31)
    #: Probability that a company's SIC2 industry is drawn from the codes
    #: associated with its dominant profile (industry-profile correlation).
    industry_alignment: float = 0.7
    #: Maximum number of sites per company.
    max_sites: int = 6
    #: Probability that a non-HQ site is in a foreign country (such sites
    #: aggregate into separate domestic companies).
    foreign_site_rate: float = 0.0
    #: Observation granularity: ``"category"`` (the paper's study level,
    #: default) or ``"product_type"`` (the catalog's leaf level, the
    #: paper's declared future-work direction).  At type level, an owned
    #: category materialises as one or two concrete product types.
    granularity: str = "category"
    #: Probability that a company owning a category also owns its second
    #: product type (type-level granularity only).
    second_type_rate: float = 0.4

    def __post_init__(self) -> None:
        check_positive_int(self.n_companies, "n_companies")
        check_positive_int(self.n_profiles, "n_profiles")
        check_positive_int(self.min_products, "min_products")
        check_positive_int(self.max_sites, "max_sites")
        check_probability(self.temporal_coherence, "temporal_coherence")
        check_probability(self.industry_alignment, "industry_alignment")
        check_probability(self.foreign_site_rate, "foreign_site_rate")
        check_probability(self.ownership_cap, "ownership_cap")
        check_probability(self.background_rate, "background_rate")
        if self.mixture_concentration <= 0:
            raise ValueError("mixture_concentration must be positive")
        if self.core_size <= 0:
            raise ValueError(f"core_size must be positive, got {self.core_size}")
        if self.core_softness <= 0:
            raise ValueError(
                f"core_softness must be positive, got {self.core_softness}"
            )
        if self.size_jitter_sd < 0:
            raise ValueError(
                f"size_jitter_sd must be >= 0, got {self.size_jitter_sd}"
            )
        if self.shared_head < 0:
            raise ValueError(f"shared_head must be >= 0, got {self.shared_head}")
        if self.granularity not in ("category", "product_type"):
            raise ValueError(
                f"granularity must be 'category' or 'product_type', "
                f"got {self.granularity!r}"
            )
        check_probability(self.second_type_rate, "second_type_rate")
        if self.latest_start <= self.earliest_start:
            raise ValueError("latest_start must follow earliest_start")
        if self.observation_end <= self.latest_start:
            raise ValueError("observation_end must follow latest_start")


@dataclass
class SimulatorGroundTruth:
    """True generative parameters, kept for model-recovery tests."""

    #: ``(n_profiles, n_categories)`` topic-product distributions.
    profile_product: np.ndarray
    #: ``(n_companies, n_profiles)`` company mixture weights.
    company_mixture: np.ndarray
    #: Category order matching the distributions' columns.
    categories: tuple[str, ...]
    #: Adoption stage in [0, 1] per category (same order as categories).
    stages: np.ndarray


@dataclass
class SimulatedUniverse:
    """Everything the simulator emits: raw feed plus aggregated view."""

    sites: list[CompanySite]
    registry: DunsRegistry
    sic2_by_ultimate: dict[str, int]
    companies: list[Company]
    ground_truth: SimulatorGroundTruth
    config: SimulatorConfig = field(repr=False, default_factory=SimulatorConfig)


class InstallBaseSimulator:
    """Latent-profile generator of synthetic install-base universes.

    Parameters
    ----------
    config:
        Generation knobs; see :class:`SimulatorConfig`.
    catalog:
        Category universe.  Defaults to the paper's 38 hardware categories.

    Examples
    --------
    >>> sim = InstallBaseSimulator(SimulatorConfig(n_companies=100))
    >>> universe = sim.generate(seed=0)
    >>> len(universe.companies)
    100
    """

    def __init__(
        self,
        config: SimulatorConfig | None = None,
        *,
        catalog: ProductCatalog | None = None,
    ) -> None:
        self.config = config if config is not None else SimulatorConfig()
        self.catalog = catalog if catalog is not None else build_default_catalog()
        self._categories = self.catalog.categories
        self._stages = np.array(
            [self._category_stage(c, i) for i, c in enumerate(self._categories)]
        )

    @staticmethod
    def _category_stage(category: str, index: int) -> float:
        """Adoption stage of a category: parent stage plus a stable jitter.

        Near-universal categories adopt very early regardless of parent —
        companies stand up generic infrastructure (operating systems,
        networking, PCs) before the specialised categories that reveal
        their IT profile.  This early-generic/late-specific pattern is
        what makes prefix-based sequence prediction genuinely harder than
        whole-set inference on install-base data.
        """
        if category in _POPULAR_CATEGORIES:
            base = 0.02 + 0.015 * _POPULAR_CATEGORIES.index(category)
        else:
            parent = CATEGORY_PARENTS.get(category, "Enterprise Applications")
            base = 0.3 + 0.7 * _PARENT_STAGE.get(parent, 0.5)
        # Deterministic within-parent jitter so categories in the same group
        # still have a canonical order.
        jitter = ((index * 2654435761) % 97) / 97.0 * 0.08
        return float(np.clip(base + jitter, 0.0, 1.0))

    def _build_rankings(self) -> np.ndarray:
        """Preference rank of each category under each profile.

        Returns an ``(n_profiles, M)`` integer array where entry ``[k, c]``
        is the rank (0 = most preferred) of category ``c`` under profile
        ``k``.  Each profile interleaves the near-universal "popular"
        categories with its themed categories at the head of the ranking —
        a datacenter-heavy firm buys servers and storage before printers —
        and pushes everything else to the tail.
        """
        cfg = self.config
        n_cat = len(self._categories)
        popular = [c for c in self._categories if c in _POPULAR_CATEGORIES]
        rankings = np.empty((cfg.n_profiles, n_cat), dtype=np.int64)
        for k in range(cfg.n_profiles):
            themes = set(_PROFILE_THEMES[k % len(_PROFILE_THEMES)])
            themed = [
                c
                for c in self._categories
                if CATEGORY_PARENTS.get(c, "Software & Services") in themes
                and c not in _POPULAR_CATEGORIES
            ]
            rest = [
                c
                for c in self._categories
                if c not in _POPULAR_CATEGORIES and c not in themed
            ]
            # Rotate the popular block so profiles do not agree on the exact
            # head order, then interleave only the first ``shared_head``
            # popular categories into the core; the rest follow the themed
            # block so profile cores stay mostly distinct.
            rotated_popular = popular[k % len(popular) :] + popular[: k % len(popular)]
            head_popular = rotated_popular[: cfg.shared_head]
            late_popular = rotated_popular[cfg.shared_head :]
            ranking: list[str] = []
            for pair in zip(head_popular, themed):
                ranking.extend(pair)
            longer = head_popular if len(head_popular) > len(themed) else themed
            ranking.extend(longer[min(len(head_popular), len(themed)) :])
            ranking.extend(late_popular)
            ranking.extend(rest)
            for rank, category in enumerate(ranking):
                rankings[k, self.catalog.category_index(category)] = rank
        return rankings

    def _ownership_curves(self, rankings: np.ndarray, core_shift: float = 0.0) -> np.ndarray:
        """Ownership probability of each category under each profile.

        A logistic fall-off around ``core_size + core_shift``: core products
        are owned with probability near :attr:`SimulatorConfig.ownership_cap`,
        tail products near :attr:`SimulatorConfig.background_rate`.
        """
        cfg = self.config
        logits = (cfg.core_size + core_shift - rankings) / cfg.core_softness
        curve = cfg.ownership_cap / (1.0 + np.exp(-logits))
        return np.clip(curve + cfg.background_rate, 0.0, 1.0)

    def _build_profiles(self) -> np.ndarray:
        """Normalised topic-product distributions phi (the ground truth).

        The per-profile ownership curve, normalised to sum to one, is the
        expected per-token product distribution of companies committed to
        that profile — the quantity LDA estimates.
        """
        curves = self._ownership_curves(self._build_rankings())
        return curves / curves.sum(axis=1, keepdims=True)

    def _industry_groups(self, rng: np.random.Generator) -> list[np.ndarray]:
        """Partition the 83 SIC2 codes into one group per profile."""
        codes = np.array(SIC2_CODES)
        shuffled = rng.permutation(codes)
        return [shuffled[k :: self.config.n_profiles] for k in range(self.config.n_profiles)]

    def _sample_install_base(
        self,
        theta: np.ndarray,
        rankings: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Owned category indices for one company.

        The company's ownership probability for each category blends the
        profile curves by its mixture theta (with a per-company jitter on
        the core size); ownership is then independent Bernoulli.  If fewer
        than ``min_products`` categories come up, the highest-probability
        missing ones are added so no company is empty.
        """
        cfg = self.config
        jitter = rng.normal(0.0, cfg.size_jitter_sd)
        curves = self._ownership_curves(rankings, core_shift=jitter)
        probs = theta @ curves
        owned = np.flatnonzero(rng.random(len(probs)) < probs)
        if len(owned) < cfg.min_products:
            missing = np.setdiff1d(np.argsort(-probs), owned, assume_unique=False)
            owned = np.concatenate([owned, missing[: cfg.min_products - len(owned)]])
        owned = np.asarray(np.sort(owned), dtype=np.int64)
        return owned

    def _company_name(self, rng: np.random.Generator, index: int) -> str:
        adjective = _NAME_ADJECTIVES[int(rng.integers(len(_NAME_ADJECTIVES)))]
        noun = _NAME_NOUNS[int(rng.integers(len(_NAME_NOUNS)))]
        suffix = _NAME_SUFFIXES[index % len(_NAME_SUFFIXES)]
        return f"{adjective} {noun} {suffix}"

    def _acquisition_dates(
        self,
        owned: np.ndarray,
        start: dt.date,
        rng: np.random.Generator,
    ) -> list[dt.date]:
        """First-seen dates for owned categories, stage-ordered plus noise."""
        cfg = self.config
        horizon = months_between(start, cfg.observation_end)
        stage = self._stages[owned]
        noise = rng.random(len(owned))
        position = cfg.temporal_coherence * stage + (1.0 - cfg.temporal_coherence) * noise
        months = np.floor(position * max(horizon - 1, 1)).astype(int)
        dates = []
        for offset in months:
            month_first = add_months(start.replace(day=1), int(offset))
            day = int(rng.integers(1, 28))
            dates.append(month_first.replace(day=day))
        return dates

    def _observations(
        self, category: str, seen, rng: np.random.Generator
    ) -> list[tuple[str, "dt.date"]]:
        """Observation labels for one owned category.

        At category granularity the label is the category itself; at
        product-type granularity it is one concrete type (the category's
        first type, at the category's date) plus, with probability
        ``second_type_rate``, the second type a few months later.
        """
        if self.config.granularity == "category":
            return [(category, seen)]
        types = sorted(pt.name for pt in self.catalog.product_types(category))
        observations = [(types[0], seen)]
        if len(types) > 1 and rng.random() < self.config.second_type_rate:
            lag = int(rng.integers(1, 30))
            later = min(add_months(seen, lag), self.config.observation_end)
            observations.append((types[1], later))
        return observations

    #: ``method="auto"`` switches from the per-company loop to the batch
    #: generator at this universe size.  Below it (which covers every test
    #: corpus) the loop path keeps historical bit-for-bit reproducibility.
    _BATCH_THRESHOLD = 4096

    def generate(
        self,
        seed: int | np.random.Generator | None = None,
        *,
        method: str = "auto",
        duns_start: int = 0,
    ) -> SimulatedUniverse:
        """Generate a full universe: sites, registry, and aggregated companies.

        ``method`` selects the generation kernel: ``"loop"`` is the
        historical per-company implementation, ``"batch"`` draws every
        random quantity array-wise and only loops to build the output
        objects (an order of magnitude faster at 100k companies), and
        ``"auto"`` (default) picks ``"batch"`` at or above
        ``_BATCH_THRESHOLD`` companies.  Both kernels sample the same
        generative process, but they consume the random stream in
        different orders, so for a given seed they produce *different,
        distributionally equivalent* universes.

        ``duns_start`` offsets the D-U-N-S sequence counter so chunked
        generation (the streaming corpus builder generating one batch of
        companies per call) produces globally unique identifiers: pass the
        running total of previously generated sites.  ``duns_start=0``
        reproduces the historical output exactly.
        """
        check_in_choices(method, "method", ("auto", "loop", "batch"))
        check_non_negative_int(duns_start, "duns_start")
        if method == "auto":
            method = "batch" if self.config.n_companies >= self._BATCH_THRESHOLD else "loop"
        rng = as_rng(seed)
        if method == "batch":
            return self._generate_batch(rng, duns_start=duns_start)
        return self._generate_loop(rng, duns_start=duns_start)

    def _generate_loop(
        self, rng: np.random.Generator, *, duns_start: int = 0
    ) -> SimulatedUniverse:
        """Reference per-company generation (bit-stable across releases)."""
        cfg = self.config
        rankings = self._build_rankings()
        profiles = self._build_profiles()
        industry_groups = self._industry_groups(rng)
        start_span = months_between(cfg.earliest_start, cfg.latest_start)

        mixtures = rng.dirichlet(
            np.full(cfg.n_profiles, cfg.mixture_concentration), size=cfg.n_companies
        )

        registry = DunsRegistry()
        sites: list[CompanySite] = []
        sic2_by_ultimate: dict[str, int] = {}
        duns_counter = duns_start

        for i in range(cfg.n_companies):
            theta = mixtures[i]
            owned = self._sample_install_base(theta, rankings, rng)

            start = add_months(cfg.earliest_start, int(rng.integers(start_span + 1)))
            first_seen = self._acquisition_dates(owned, start, rng)

            dominant = int(np.argmax(theta))
            if rng.random() < cfg.industry_alignment:
                pool = industry_groups[dominant]
            else:
                pool = np.array(SIC2_CODES)
            sic2 = int(pool[int(rng.integers(len(pool)))])

            name = self._company_name(rng, i)
            hq_duns = DunsNumber.from_sequence(duns_counter)
            duns_counter += 1
            registry.register(hq_duns, country="US")
            sic2_by_ultimate[hq_duns.value] = sic2

            n_sites = 1 + int(rng.geometric(0.6)) - 1
            n_sites = min(max(n_sites, 1), cfg.max_sites)
            company_sites = [CompanySite(duns=hq_duns, name=name, country="US")]
            for s in range(1, n_sites):
                child = DunsNumber.from_sequence(duns_counter)
                duns_counter += 1
                if rng.random() < cfg.foreign_site_rate:
                    country = "DE" if s % 2 else "GB"
                    registry.register(child, country=country, parent=hq_duns)
                    sic2_by_ultimate[child.value] = sic2
                else:
                    country = "US"
                    registry.register(child, country=country, parent=hq_duns)
                company_sites.append(
                    CompanySite(duns=child, name=f"{name} Site {s}", country=country)
                )

            for category_idx, seen in zip(owned, first_seen):
                category = self._categories[category_idx]
                for label, label_seen in self._observations(category, seen, rng):
                    # The HQ always reports the product; other sites echo it
                    # with probability 1/2, possibly with later dates.
                    reporting = [0] + [
                        s for s in range(1, n_sites) if rng.random() < 0.5
                    ]
                    for s in reporting:
                        site_seen = label_seen
                        if s > 0:
                            lag = int(rng.integers(0, 18))
                            site_seen = min(
                                add_months(label_seen, lag), cfg.observation_end
                            )
                        confirm_months = int(rng.exponential(24.0)) + 1
                        last = min(
                            add_months(site_seen, confirm_months), cfg.observation_end
                        )
                        confidence = str(
                            rng.choice(["high", "medium", "low"], p=[0.8, 0.15, 0.05])
                        )
                        company_sites[s].records.append(
                            InstallRecord(
                                duns=company_sites[s].duns,
                                category=label,
                                first_seen=site_seen,
                                last_seen=max(last, site_seen),
                                confidence=confidence,
                            )
                        )
            sites.extend(company_sites)

        companies = aggregate_domestic(
            sites, registry, sic2_by_ultimate=sic2_by_ultimate
        )
        # Foreign sites with no records of their own aggregate to empty
        # companies; drop those to keep the corpus meaningful.
        companies = [c for c in companies if len(c) > 0]

        ground_truth = SimulatorGroundTruth(
            profile_product=profiles,
            company_mixture=mixtures,
            categories=self._categories,
            stages=self._stages.copy(),
        )
        return SimulatedUniverse(
            sites=sites,
            registry=registry,
            sic2_by_ultimate=sic2_by_ultimate,
            companies=companies,
            ground_truth=ground_truth,
            config=cfg,
        )

    def _generate_batch(
        self, rng: np.random.Generator, *, duns_start: int = 0
    ) -> SimulatedUniverse:
        """Array-wise generation: same process as the loop, drawn in bulk.

        Every random quantity (ownership, dates, site echoes, confidences)
        is sampled as a flat array over the exploded company x category x
        site incidence structure; Python loops only construct the output
        objects.  Dates are handled as month indices against a precomputed
        date table and clamping to ``observation_end`` replays the loop
        kernel's ``min(add_months(...), observation_end)`` semantics.
        """
        cfg = self.config
        n = cfg.n_companies
        n_cat = len(self._categories)
        rankings = self._build_rankings()
        profiles = self._build_profiles()
        industry_groups = self._industry_groups(rng)
        start_span = months_between(cfg.earliest_start, cfg.latest_start)
        base_idx = month_index(cfg.earliest_start)
        end_idx = month_index(cfg.observation_end)

        mixtures = rng.dirichlet(
            np.full(cfg.n_profiles, cfg.mixture_concentration), size=n
        )

        # --- ownership -------------------------------------------------
        jitter = rng.normal(0.0, cfg.size_jitter_sd, size=n)
        probs = np.empty((n, n_cat))
        chunk = 4096  # keeps the (chunk, profiles, categories) logits in cache
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            logits = (
                cfg.core_size + jitter[lo:hi, None, None] - rankings[None, :, :]
            ) / cfg.core_softness
            curves = np.clip(
                cfg.ownership_cap / (1.0 + np.exp(-logits)) + cfg.background_rate,
                0.0,
                1.0,
            )
            probs[lo:hi] = np.einsum("cp,cpm->cm", mixtures[lo:hi], curves)
        owned = rng.random((n, n_cat)) < probs
        counts = owned.sum(axis=1)
        for i in np.flatnonzero(counts < cfg.min_products):
            have = np.flatnonzero(owned[i])
            missing = np.setdiff1d(np.argsort(-probs[i]), have, assume_unique=False)
            owned[i, missing[: cfg.min_products - len(have)]] = True

        # --- acquisition months (company x category, then exploded) ----
        start_off = rng.integers(start_span + 1, size=n)
        horizon_factor = np.maximum(end_idx - (base_idx + start_off) - 1, 1)
        noise = rng.random((n, n_cat))
        position = (
            cfg.temporal_coherence * self._stages[None, :]
            + (1.0 - cfg.temporal_coherence) * noise
        )
        month_off = np.floor(position * horizon_factor[:, None]).astype(np.int64)

        pair_comp, pair_cat = np.nonzero(owned)
        n_pairs = len(pair_comp)
        pair_midx = base_idx + start_off[pair_comp] + month_off[pair_comp, pair_cat]
        pair_day = rng.integers(1, 28, size=n_pairs)

        # --- industries, names, site counts ----------------------------
        dominant = np.argmax(mixtures, axis=1)
        aligned = rng.random(n) < cfg.industry_alignment
        all_codes = np.asarray(SIC2_CODES, dtype=np.int64)
        group_lens = np.array([len(g) for g in industry_groups], dtype=np.int64)
        group_mat = np.zeros((cfg.n_profiles, int(group_lens.max())), dtype=np.int64)
        for k, group in enumerate(industry_groups):
            group_mat[k, : len(group)] = group
        pool_len = np.where(aligned, group_lens[dominant], len(all_codes))
        pick = (rng.random(n) * pool_len).astype(np.int64)
        sic2_arr = np.where(
            aligned,
            group_mat[dominant, np.minimum(pick, group_lens[dominant] - 1)],
            all_codes[np.minimum(pick, len(all_codes) - 1)],
        )
        adj_idx = rng.integers(len(_NAME_ADJECTIVES), size=n)
        noun_idx = rng.integers(len(_NAME_NOUNS), size=n)
        n_sites_arr = np.minimum(rng.geometric(0.6, size=n), cfg.max_sites)
        max_extra = cfg.max_sites - 1
        foreign_mask = (
            rng.random((n, max_extra)) < cfg.foreign_site_rate
            if max_extra
            else np.zeros((n, 0), dtype=bool)
        )

        # --- observations (category or product-type granularity) -------
        if cfg.granularity == "category":
            obs_comp = pair_comp
            obs_label = list(self._categories)
            obs_label_idx = pair_cat
            obs_midx = pair_midx
            obs_day = pair_day
        else:
            types_sorted = [
                sorted(pt.name for pt in self.catalog.product_types(c))
                for c in self._categories
            ]
            has_second = np.array([len(t) > 1 for t in types_sorted])
            second = (rng.random(n_pairs) < cfg.second_type_rate) & has_second[pair_cat]
            lag2 = rng.integers(1, 30, size=n_pairs)
            obs_comp = np.concatenate([pair_comp, pair_comp[second]])
            # Labels indexed as first types then second types of the catalog.
            obs_label = [t[0] for t in types_sorted] + [
                (t[1] if len(t) > 1 else t[0]) for t in types_sorted
            ]
            obs_label_idx = np.concatenate([pair_cat, pair_cat[second] + n_cat])
            obs_midx = np.concatenate(
                [pair_midx, np.minimum(pair_midx[second] + lag2[second], end_idx + 1)]
            )
            obs_day = np.concatenate([pair_day, pair_day[second]])
        n_obs = len(obs_comp)

        # --- records: HQ always reports, other sites echo at p = 1/2 ---
        extra_sites = np.maximum(n_sites_arr - 1, 0)
        echo = rng.random((n_obs, max_extra)) < 0.5 if max_extra else np.zeros((n_obs, 0), bool)
        echo &= np.arange(max_extra)[None, :] < extra_sites[obs_comp, None]
        echo_obs, echo_slot = np.nonzero(echo)
        lag = rng.integers(0, 18, size=len(echo_obs))

        rec_obs = np.concatenate([np.arange(n_obs), echo_obs])
        rec_slot = np.concatenate(
            [np.zeros(n_obs, dtype=np.int64), echo_slot + 1]
        )
        rec_midx = np.concatenate([obs_midx, obs_midx[echo_obs] + lag])
        n_rec = len(rec_obs)
        confirm = rng.exponential(24.0, size=n_rec).astype(np.int64) + 1
        conf_u = rng.random(n_rec)
        conf_code = np.where(conf_u < 0.8, 2, np.where(conf_u < 0.95, 1, 0)).astype(
            np.int64
        )

        # --- date table: month index x day -> datetime.date ------------
        obs_end = cfg.observation_end
        month_firsts = [
            date_from_month_index(m) for m in range(base_idx, end_idx + 1)
        ]
        date_table = [
            [first.replace(day=d) for d in range(1, 28)] for first in month_firsts
        ]

        # resolve(midx, day): clamp past observation_end, else table lookup.
        # Inlined in the record loop below; kept here as the reference
        # spelling of the loop kernel's min(add_months(...), obs_end).

        # --- object construction ---------------------------------------
        total_sites = int(n_sites_arr.sum())
        duns_values = duns_values_from_sequences(np.arange(total_sites) + duns_start)
        site_offsets = np.concatenate([[0], np.cumsum(n_sites_arr)])

        registry = DunsRegistry()
        sites: list[CompanySite] = []
        sic2_by_ultimate: dict[str, int] = {}
        for i in range(n):
            name = (
                f"{_NAME_ADJECTIVES[adj_idx[i]]} {_NAME_NOUNS[noun_idx[i]]} "
                f"{_NAME_SUFFIXES[i % len(_NAME_SUFFIXES)]}"
            )
            base = int(site_offsets[i])
            hq = DunsNumber._trusted(duns_values[base])
            registry.register(hq, country="US")
            sic2_by_ultimate[hq.value] = int(sic2_arr[i])
            sites.append(CompanySite(duns=hq, name=name, country="US"))
            for s in range(1, int(n_sites_arr[i])):
                child = DunsNumber._trusted(duns_values[base + s])
                if foreign_mask[i, s - 1]:
                    country = "DE" if s % 2 else "GB"
                    registry.register(child, country=country, parent=hq)
                    sic2_by_ultimate[child.value] = int(sic2_arr[i])
                else:
                    country = "US"
                    registry.register(child, country=country, parent=hq)
                sites.append(
                    CompanySite(duns=child, name=f"{name} Site {s}", country=country)
                )

        conf_names = CONFIDENCE_LEVELS  # ("low", "medium", "high")
        obs_day_list = obs_day.tolist()
        obs_site_base = site_offsets[obs_comp].tolist()
        obs_labels = [obs_label[j] for j in obs_label_idx.tolist()]
        for o, slot, midx, conf, code in zip(
            rec_obs.tolist(),
            rec_slot.tolist(),
            rec_midx.tolist(),
            confirm.tolist(),
            conf_code.tolist(),
        ):
            site = sites[obs_site_base[o] + slot]
            day = obs_day_list[o]
            if midx > end_idx:
                first = obs_end
            else:
                first = date_table[midx - base_idx][day - 1]
            last_midx = midx + conf
            if last_midx > end_idx:
                last = obs_end
            else:
                last = date_table[last_midx - base_idx][day - 1]
            # confirm >= 1 puts last in a later month (or at the clamp), so
            # last >= first always holds; no max() needed.
            site.records.append(
                InstallRecord(
                    duns=site.duns,
                    category=obs_labels[o],
                    first_seen=first,
                    last_seen=last,
                    confidence=conf_names[code],
                )
            )

        companies = aggregate_domestic(
            sites, registry, sic2_by_ultimate=sic2_by_ultimate
        )
        companies = [c for c in companies if len(c) > 0]

        ground_truth = SimulatorGroundTruth(
            profile_product=profiles,
            company_mixture=mixtures,
            categories=self._categories,
            stages=self._stages.copy(),
        )
        return SimulatedUniverse(
            sites=sites,
            registry=registry,
            sic2_by_ultimate=sic2_by_ultimate,
            companies=companies,
            ground_truth=ground_truth,
            config=cfg,
        )

    def generate_companies(
        self,
        seed: int | np.random.Generator | None = None,
        *,
        method: str = "auto",
    ) -> list[Company]:
        """Convenience wrapper returning only the aggregated companies."""
        return self.generate(seed, method=method).companies
