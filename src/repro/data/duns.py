"""D-U-N-S®-style company identifiers and their site hierarchy.

The paper's companies are identified by D-U-N-S numbers — unique 9-digit
identifiers assigned per *business location*, organised hierarchically:
branches and subsidiaries point to parents, and a "domestic ultimate" roots
each country's subtree (Section 2).  Company aggregation in the experiments
is performed at the domestic-ultimate level ("all company sites in one
country are aggregated", Section 5).

This module implements the identifier format (including the mod-10 check
digit commonly used for 9-digit identifiers) and a registry that resolves
any site's D-U-N-S number to its domestic ultimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "DunsNumber",
    "DunsRegistry",
    "duns_check_digit",
    "duns_values_from_sequences",
    "is_valid_duns",
]


def duns_check_digit(first_eight: str) -> int:
    """Compute the Luhn (mod-10) check digit for an 8-digit prefix.

    The real D-U-N-S format historically carried a mod-10 check digit in the
    ninth position; we adopt the Luhn scheme so generated identifiers are
    self-validating in tests.
    """
    if len(first_eight) != 8 or not first_eight.isdigit():
        raise ValueError(f"expected 8 digits, got {first_eight!r}")
    total = 0
    # Luhn: double every second digit from the right of the payload.
    for i, char in enumerate(reversed(first_eight)):
        digit = int(char)
        if i % 2 == 0:
            digit *= 2
            if digit > 9:
                digit -= 9
        total += digit
    return (10 - total % 10) % 10


def duns_values_from_sequences(sequences) -> list[str]:
    """Vectorised :meth:`DunsNumber.from_sequence` for an array of counters.

    Computes every Luhn check digit with array arithmetic instead of the
    per-string digit loop; the batch simulator derives all site identifiers
    of a universe in one call.  Returns the 9-digit string values in input
    order (identical to calling ``from_sequence`` per element).
    """
    seq = np.asarray(sequences, dtype=np.int64)
    if seq.size and (int(seq.min()) < 0 or int(seq.max()) > 99_999_999):
        raise ValueError("sequence out of range for 8-digit payload")
    # (n, 8) digit matrix, most significant first.
    digits = (seq[:, None] // 10 ** np.arange(7, -1, -1)) % 10
    # Luhn doubles every second digit from the right of the payload, i.e.
    # columns 1, 3, 5, 7 of the MSB-first matrix.
    doubled = digits[:, 1::2] * 2
    doubled = np.where(doubled > 9, doubled - 9, doubled)
    total = digits[:, 0::2].sum(axis=1) + doubled.sum(axis=1)
    check = (10 - total % 10) % 10
    return [f"{s:08d}{c}" for s, c in zip(seq.tolist(), check.tolist())]


def is_valid_duns(number: str) -> bool:
    """Whether ``number`` is a well-formed 9-digit identifier with valid check digit."""
    if not isinstance(number, str) or len(number) != 9 or not number.isdigit():
        return False
    return int(number[8]) == duns_check_digit(number[:8])


@dataclass(frozen=True)
class DunsNumber:
    """A validated 9-digit site identifier."""

    value: str

    def __post_init__(self) -> None:
        if not is_valid_duns(self.value):
            raise ValueError(f"invalid D-U-N-S number {self.value!r}")

    @classmethod
    def _trusted(cls, value: str) -> "DunsNumber":
        """Wrap a value known to be valid, skipping re-validation.

        Internal fast path for call sites that only handle identifiers
        which already passed validation (generated payloads, registry
        keys).  Hot loops over registered sites spend a measurable share
        of their time re-running the Luhn check otherwise.
        """
        number = cls.__new__(cls)
        object.__setattr__(number, "value", value)
        return number

    @classmethod
    def from_sequence(cls, sequence: int) -> "DunsNumber":
        """Deterministically derive a valid identifier from a counter.

        Used by the simulator: site ``k`` of the synthetic universe receives
        the identifier whose payload is ``k`` zero-padded to 8 digits.
        """
        if sequence < 0 or sequence > 99_999_999:
            raise ValueError(f"sequence {sequence} out of range for 8-digit payload")
        payload = f"{sequence:08d}"
        return cls._trusted(payload + str(duns_check_digit(payload)))

    def __str__(self) -> str:
        return self.value


class DunsRegistry:
    """Hierarchy of site identifiers with domestic-ultimate resolution.

    Each registered site carries its parent identifier (``None`` for a
    domestic ultimate) and a country code.  ``domestic_ultimate`` walks the
    parent chain within a single country; crossing a country boundary stops
    the walk, mirroring how global families decompose into domestic trees.
    """

    def __init__(self) -> None:
        self._parent: dict[str, str | None] = {}
        self._country: dict[str, str] = {}

    def register(self, duns: DunsNumber, *, country: str, parent: DunsNumber | None = None) -> None:
        """Register a site; the parent (if given) must already be registered."""
        key = duns.value
        if key in self._parent:
            raise ValueError(f"duplicate registration of {key}")
        if parent is not None and parent.value == key:
            raise ValueError("a site cannot be its own parent")
        if parent is not None and parent.value not in self._parent:
            raise ValueError(f"parent {parent.value} not registered")
        self._parent[key] = parent.value if parent is not None else None
        self._country[key] = country

    def country_of(self, duns: DunsNumber) -> str:
        """Country code of a registered site."""
        try:
            return self._country[duns.value]
        except KeyError:
            raise KeyError(f"unregistered D-U-N-S {duns.value}") from None

    def domestic_ultimate(self, duns: DunsNumber) -> DunsNumber:
        """Walk up the tree while staying in the site's country.

        The returned identifier is the aggregation key used by the corpus
        builder: all sites mapping to the same domestic ultimate merge into
        one modelled "company".
        """
        key = duns.value
        if key not in self._parent:
            raise KeyError(f"unregistered D-U-N-S {duns.value}")
        country = self._country[key]
        seen = {key}
        while True:
            parent = self._parent[key]
            if parent is None or self._country[parent] != country:
                # Registered keys were validated at registration time.
                return DunsNumber._trusted(key)
            if parent in seen:
                raise ValueError(f"cycle detected in D-U-N-S hierarchy at {parent}")
            seen.add(parent)
            key = parent

    def children_of(self, duns: DunsNumber) -> list[DunsNumber]:
        """Direct children of a site."""
        if duns.value not in self._parent:
            raise KeyError(f"unregistered D-U-N-S {duns.value}")
        return [DunsNumber(k) for k, p in self._parent.items() if p == duns.value]

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[DunsNumber]:
        return (DunsNumber(k) for k in self._parent)

    def __contains__(self, duns: DunsNumber) -> bool:
        return duns.value in self._parent
