"""Degradation ladder: LDA → n-gram → popularity prior.

A request's scoring walks an ordered list of tiers.  Each model tier is
guarded by a :class:`~repro.serve.breaker.CircuitBreaker` and runs inside
the request's remaining deadline budget; a tier that is skipped (breaker
open, budget exhausted), raises, or times out simply hands the request to
the next tier.  The final *floor* tier — a precomputed popularity prior —
is pure array lookup: it cannot fail and needs no budget, so every request
that passes admission gets an answer.  The answering tier is reported in
the result so callers can tell a degraded answer from a full one.

Timed-out model calls run in abandoned daemon threads: the ladder cannot
preempt a numpy kernel (or an injected hang), so it stops *waiting* and
degrades, which is exactly the behaviour the deadline budget promises.
"""

from __future__ import annotations

import contextvars
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import trace
from repro.runtime import faults
from repro.serve.breaker import CircuitBreaker

__all__ = ["Tier", "TierOutcome", "LadderResult", "DegradationLadder"]

#: Scorer signature: (history tokens, threshold override, top_n) ->
#: ``[(token, score), ...]`` best-first.
Scorer = Callable[[list[int], float | None, int], list[tuple[int, float]]]

#: Batched scorer signature: (histories, thresholds, top_ns) -> one ranked
#: list per history, in order.
BatchScorer = Callable[
    [list[list[int]], list[float | None], list[int]],
    list[list[tuple[int, float]]],
]


@dataclass
class Tier:
    """One rung of the ladder: a named scorer behind an optional breaker.

    ``batch_scorer``, when present, answers a whole coalesced batch in one
    call (one GEMM); tiers without one are looped per-request inside the
    same guarded worker when a batch reaches them.
    """

    name: str
    scorer: Scorer
    breaker: CircuitBreaker | None = None
    batch_scorer: BatchScorer | None = None


@dataclass(frozen=True)
class TierOutcome:
    """What happened when the ladder considered one tier."""

    tier: str
    status: str  # ok | breaker_open | no_budget | timeout | error
    latency_s: float = 0.0
    error: str | None = None


@dataclass(frozen=True)
class LadderResult:
    """The answer plus the per-tier audit trail."""

    tier: str
    recommendations: list[tuple[int, float]]
    degraded: bool
    outcomes: tuple[TierOutcome, ...] = field(default=())


class DegradationLadder:
    """Walks the tiers under a deadline budget until one answers.

    Parameters
    ----------
    tiers:
        Model tiers in preference order (strongest first).
    floor:
        The always-available fallback tier; runs inline with no breaker
        and no timeout, and must not raise.
    clock:
        Monotonic seconds source (injectable for tests).
    """

    def __init__(
        self,
        tiers: list[Tier],
        floor: Tier,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if floor.breaker is not None:
            raise ValueError("the floor tier is the guaranteed fallback; no breaker")
        names = [t.name for t in tiers] + [floor.name]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        self.tiers = list(tiers)
        self.floor = floor
        self._clock = clock

    @property
    def tier_names(self) -> list[str]:
        """All tier names, strongest first, floor last."""
        return [t.name for t in self.tiers] + [self.floor.name]

    # ------------------------------------------------------------------
    def _run_guarded(
        self,
        tier: Tier,
        history: list[int],
        threshold: float | None,
        top_n: int,
        budget_s: float,
    ) -> tuple[str, list[tuple[int, float]] | None, float, str | None]:
        """Run one tier's scorer in a worker thread under ``budget_s``.

        Returns ``(status, result, latency, error)``.  On timeout the
        worker thread is abandoned (daemon) — its eventual result is
        discarded and its outcome is reported to the breaker as a failure.
        """
        box: dict[str, object] = {}
        done = threading.Event()
        # The worker inherits the caller's contextvars (request context +
        # trace capture buffer), so spans and counters recorded inside a
        # scorer land in the request's isolated span tree rather than the
        # process-global one.  An abandoned (timed-out) worker may still
        # write into that buffer after the request finishes; the service's
        # telemetry accounting is fail-safe against that.
        context = contextvars.copy_context()

        def worker() -> None:
            try:
                faults.inject(f"serve/score/{tier.name}")
                box["value"] = context.run(tier.scorer, history, threshold, top_n)
            except BaseException as exc:  # noqa: BLE001 - reported, never raised
                box["error"] = exc
            finally:
                done.set()

        started = self._clock()
        thread = threading.Thread(
            target=worker, name=f"serve-score-{tier.name}", daemon=True
        )
        thread.start()
        finished = done.wait(budget_s)
        latency = self._clock() - started
        if not finished:
            return "timeout", None, latency, f"exceeded budget of {budget_s:.3f}s"
        if "error" in box:
            error = box["error"]
            return "error", None, latency, f"{type(error).__name__}: {error}"
        return "ok", box["value"], latency, None  # type: ignore[return-value]

    def score(
        self,
        history: list[int],
        *,
        deadline_s: float,
        threshold: float | None = None,
        top_n: int = 5,
    ) -> LadderResult:
        """Answer from the strongest tier the budget and breakers allow."""
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        started = self._clock()
        outcomes: list[TierOutcome] = []
        for tier in self.tiers:
            breaker = tier.breaker
            if breaker is not None and not breaker.allow():
                outcomes.append(TierOutcome(tier.name, "breaker_open"))
                continue
            remaining = deadline_s - (self._clock() - started)
            if remaining <= 0:
                # The budget is gone: release any probe slot held since
                # allow() without charging the tier a failure.
                if breaker is not None:
                    breaker.cancel()
                outcomes.append(TierOutcome(tier.name, "no_budget"))
                continue
            with trace.span(f"serve.score.{tier.name}"):
                status, result, latency, error = self._run_guarded(
                    tier, history, threshold, top_n, remaining
                )
            if status == "ok":
                if breaker is not None:
                    breaker.record_success(latency)
                outcomes.append(TierOutcome(tier.name, "ok", latency))
                assert result is not None
                return LadderResult(
                    tier=tier.name,
                    recommendations=result[:top_n],
                    degraded=tier is not self.tiers[0],
                    outcomes=tuple(outcomes),
                )
            if breaker is not None:
                breaker.record_failure(latency, reason=status)
            outcomes.append(TierOutcome(tier.name, status, latency, error))
        with trace.span(f"serve.score.{self.floor.name}"):
            floor_started = self._clock()
            result = self.floor.scorer(history, threshold, top_n)
            outcomes.append(
                TierOutcome(self.floor.name, "ok", self._clock() - floor_started)
            )
        return LadderResult(
            tier=self.floor.name,
            recommendations=result[:top_n],
            degraded=bool(self.tiers),
            outcomes=tuple(outcomes),
        )

    # ------------------------------------------------------------------
    # Batched walk
    # ------------------------------------------------------------------
    def _run_guarded_batch(
        self,
        tier: Tier,
        histories: list[list[int]],
        thresholds: list[float | None],
        top_ns: list[int],
        budget_s: float,
    ) -> tuple[str, list[list[tuple[int, float]]] | None, float, str | None]:
        """Run one tier over a whole batch in a worker thread under budget.

        One guarded call answers every batch member: the tier's
        ``batch_scorer`` when it has one (the single-GEMM path), otherwise
        the per-request scorer looped inside the same worker.  Timeout and
        error semantics match :meth:`_run_guarded` — the whole batch
        degrades to the next tier together; it can never half-answer.
        """
        box: dict[str, object] = {}
        done = threading.Event()
        context = contextvars.copy_context()

        def worker() -> None:
            try:
                faults.inject(f"serve/score/{tier.name}")
                if tier.batch_scorer is not None:
                    value = context.run(
                        tier.batch_scorer, histories, thresholds, top_ns
                    )
                else:
                    value = [
                        context.run(tier.scorer, history, threshold, top_n)
                        for history, threshold, top_n in zip(
                            histories, thresholds, top_ns
                        )
                    ]
                if len(value) != len(histories):
                    raise RuntimeError(
                        f"tier {tier.name} returned {len(value)} rankings for "
                        f"{len(histories)} histories"
                    )
                box["value"] = value
            except BaseException as exc:  # noqa: BLE001 - reported, never raised
                box["error"] = exc
            finally:
                done.set()

        started = self._clock()
        thread = threading.Thread(
            target=worker, name=f"serve-score-batch-{tier.name}", daemon=True
        )
        thread.start()
        finished = done.wait(budget_s)
        latency = self._clock() - started
        if not finished:
            return "timeout", None, latency, f"exceeded budget of {budget_s:.3f}s"
        if "error" in box:
            error = box["error"]
            return "error", None, latency, f"{type(error).__name__}: {error}"
        return "ok", box["value"], latency, None  # type: ignore[return-value]

    def score_batch(
        self,
        histories: list[list[int]],
        *,
        deadline_s: float,
        thresholds: list[float | None] | None = None,
        top_ns: list[int] | None = None,
    ) -> list[LadderResult]:
        """Answer a coalesced batch from the strongest tier available.

        ``deadline_s`` is the batch's shared budget — the coalescing layer
        passes the *minimum* remaining budget of the batch members, so no
        member is held past its own deadline.  Tier skips, timeouts and
        errors degrade the whole batch to the next tier together; the
        popularity floor answers each member individually, so every
        admitted request in the batch always gets an answer.  Each result
        carries the same per-tier audit trail the single path reports.
        """
        n = len(histories)
        if n == 0:
            return []
        if thresholds is None:
            thresholds = [None] * n
        if top_ns is None:
            top_ns = [5] * n
        if len(thresholds) != n or len(top_ns) != n:
            raise ValueError("thresholds and top_ns must match the batch size")
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        started = self._clock()
        outcomes: list[TierOutcome] = []
        for tier in self.tiers:
            breaker = tier.breaker
            if breaker is not None and not breaker.allow():
                outcomes.append(TierOutcome(tier.name, "breaker_open"))
                continue
            remaining = deadline_s - (self._clock() - started)
            if remaining <= 0:
                if breaker is not None:
                    breaker.cancel()
                outcomes.append(TierOutcome(tier.name, "no_budget"))
                continue
            with trace.span(f"serve.score_batch.{tier.name}"):
                status, results, latency, error = self._run_guarded_batch(
                    tier, histories, thresholds, top_ns, remaining
                )
            if status == "ok":
                if breaker is not None:
                    breaker.record_success(latency)
                outcomes.append(TierOutcome(tier.name, "ok", latency))
                assert results is not None
                shared = tuple(outcomes)
                degraded = tier is not self.tiers[0]
                return [
                    LadderResult(
                        tier=tier.name,
                        recommendations=results[i][: top_ns[i]],
                        degraded=degraded,
                        outcomes=shared,
                    )
                    for i in range(n)
                ]
            if breaker is not None:
                breaker.record_failure(latency, reason=status)
            outcomes.append(TierOutcome(tier.name, status, latency, error))
        with trace.span(f"serve.score_batch.{self.floor.name}"):
            floor_started = self._clock()
            floor_results = [
                self.floor.scorer(history, threshold, top_n)
                for history, threshold, top_n in zip(histories, thresholds, top_ns)
            ]
            outcomes.append(
                TierOutcome(self.floor.name, "ok", self._clock() - floor_started)
            )
        shared = tuple(outcomes)
        return [
            LadderResult(
                tier=self.floor.name,
                recommendations=floor_results[i][: top_ns[i]],
                degraded=bool(self.tiers),
                outcomes=shared,
            )
            for i in range(n)
        ]
