"""The resilient recommendation service (transport-agnostic core).

:class:`RecommendationService` wires admission control, the bounded
in-flight limiter, the degradation ladder, the hot-swappable model
registry and the similar-company tool into one ``handle(method, path,
body, headers)`` entry point that the stdlib HTTP layer
(:mod:`repro.serve.http`), the tests and the load harness all drive
identically.

The service's contract: **every degradable failure yields a degraded
answer, a 4xx rejection, or a 429 shed — never a 5xx.**  Bad payloads are
quarantined; slow or broken model tiers degrade down the ladder; an
overloaded service sheds with ``Retry-After``; a bad staged model is
rejected while the previous model keeps serving.

Request-scoped telemetry
------------------------
Every request runs inside a :func:`repro.obs.context.request_scope`: the
service honours an inbound ``X-Request-Id`` header (minting one
otherwise), echoes it on the response, stamps it on structured log lines,
and captures the request's span tree into an isolated per-request
:class:`~repro.obs.trace.TraceBuffer` — no cross-request contamination
even under the threaded transport.  Finished requests feed labelled
metrics (``serve.requests{endpoint,outcome}``, per-endpoint latency
histograms with ``request_id`` exemplars), the multi-window SLO burn-rate
monitor, and the flight recorder of slowest/failed requests.  Telemetry
accounting is fail-safe: an exception inside it is logged, never turned
into a 5xx.

Endpoints
---------
* ``POST /recommend`` — install-base payload → tiered recommendations.
* ``POST /similar``   — ``{"duns", "k"}`` → similar companies.
* ``POST /admin/hotswap`` — ``{"name", "path"}`` → validated promotion.
* ``GET /healthz``    — liveness (always 200 while the process runs).
* ``GET /readyz``     — readiness (503 while a hot-swap is in flight).
* ``GET /metrics``    — Prometheus text by default over HTTP; JSON with
  ``Accept: application/json`` (and when called without headers);
  OpenMetrics (with exemplars) when the Accept header asks for it.
* ``GET /slo``        — burn rates + alert states of every objective.
* ``GET /admin/debug`` — flight recorder: JSONL dump, or one request's
  span tree via ``?request_id=``.
* ``GET /admin/profile?seconds=N`` — sampling wall-clock profile.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.data.corpus import Corpus
from repro.obs import context as obs_context
from repro.obs import prom, trace
from repro.obs.flight import FlightRecorder
from repro.obs.logging import get_logger
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import Objective, SLOMonitor
from repro.data.linkage import EntityResolver
from repro.serve.admission import AdmissionError, AdmissionPolicy, QuarantineLog
from repro.serve.batch import MicroBatcher
from repro.serve.breaker import CircuitBreaker
from repro.serve.ladder import DegradationLadder, Tier
from repro.serve.registry import ModelRegistry, SwapReport
from repro.serve.topk_cache import TopKCache

__all__ = ["ServiceConfig", "ServiceResponse", "RecommendationService"]

#: Paths that get their own ``endpoint`` label; anything else is folded
#: into ``other`` so a URL scanner cannot explode metric cardinality.
_KNOWN_ENDPOINTS = frozenset(
    {
        "/recommend",
        "/similar",
        "/admin/hotswap",
        "/healthz",
        "/readyz",
        "/metrics",
        "/slo",
        "/admin/debug",
        "/admin/profile",
    }
)

#: Endpoints that do model work: only these burn SLO budget and compete
#: for flight-recorder slots (scrapes and health checks stay out).
_WORK_ENDPOINTS = frozenset({"/recommend", "/similar", "/admin/hotswap"})

#: Numeric encoding of breaker states for the ``serve.breaker.state`` gauge.
_BREAKER_STATE_VALUE = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving layer (all enforced per request)."""

    #: Concurrent requests admitted before load-shedding with 429.
    max_inflight: int = 32
    #: ``Retry-After`` seconds advertised on a shed.
    retry_after_s: float = 1.0
    #: Deadline budget for requests that do not carry ``deadline_ms``.
    default_deadline_ms: float = 250.0
    #: Hard ceiling on a request-supplied deadline.
    max_deadline_ms: float = 5000.0
    #: Histories longer than this are rejected with 413.
    max_history: int = 64
    default_top_n: int = 5
    max_top_n: int = 50
    #: Default phi of the tier recommenders.
    default_threshold: float = 0.1
    #: Breaker tuning shared by every model tier.
    breaker_failure_threshold: int = 3
    breaker_window: int = 8
    breaker_recovery_s: float = 2.0
    breaker_latency_budget_s: float | None = None
    #: Perplexity gate for hot-swaps.
    swap_tolerance: float = 1.25
    #: Optional JSONL file quarantined payloads are appended to.
    quarantine_path: str | None = None
    #: Resolve ``name`` fields on /similar through the entity resolver
    #: built over the serving companies' names (linear startup cost in
    #: corpus size; disable for huge corpora that only take D-U-N-S).
    resolve_names: bool = True
    #: Replay windows the canary gate shadow-scores a swap candidate
    #: over before promotion; 0 disables the canary (perplexity gate
    #: only, the historical behaviour).
    canary_windows: int = 0
    #: Per-window recall/precision slack a candidate may lose before a
    #: window counts as regressed.
    canary_quality_margin: float = 0.05
    #: Regressed windows tolerated before the canary rejects.
    canary_max_regressed: int = 1
    #: JS-divergence ceiling between incumbent and candidate
    #: recommendation distributions on replayed traffic (looser than the
    #: DriftMonitor's 0.05: healthy refits are not bit-stable).
    canary_divergence_threshold: float = 0.2

    # -- transport ------------------------------------------------------
    #: Listen backlog of the accept socket.  socketserver's default of 5
    #: resets connections under a burst of simultaneous connects;
    #: admission control (shed with 429) is the overload story, not
    #: TCP-level resets.
    listen_backlog: int = 128
    #: SO_REUSEADDR on the listen socket (fast rebinds across restarts).
    reuse_address: bool = True
    #: SO_REUSEPORT: every worker of a pre-fork fleet binds the same port
    #: and the kernel spreads accepts across processes (shared-nothing).
    reuse_port: bool = False

    # -- serving speed --------------------------------------------------
    #: Micro-batching window for coalescing concurrent /recommend scoring
    #: into one batched GEMM.  0 disables batching entirely: every request
    #: scores on the single path, bit-identical to the historical service.
    batch_window_ms: float = 0.0
    #: Hard cap on coalesced batch size; a full batch executes at once.
    batch_max: int = 16
    #: Fraction of a request's deadline budget it may spend queued waiting
    #: for batch-mates (the rest is reserved for scoring).
    batch_wait_fraction: float = 0.5
    #: Entries in the top-k result cache; 0 disables caching.
    topk_cache_size: int = 0
    #: Similarity backend answering /similar: ``exact`` (true cosine, one
    #: matrix–vector product) or ``ann`` (LSH probe + exact re-rank; falls
    #: back to exact when the tool carries no index).
    similarity: str = "exact"

    # -- request-scoped telemetry --------------------------------------
    #: Master switch for per-request accounting (labelled metrics, SLO
    #: counting, flight recording).  Off is the baseline the telemetry
    #: overhead benchmark compares against; ids are still minted/echoed.
    telemetry: bool = True
    #: Capture a per-request span tree (needed by the flight recorder).
    request_spans: bool = True
    #: Slots per flight-recorder section (failed ring / slowest heap).
    flight_capacity: int = 64
    #: Successful requests at/over this latency always compete for a
    #: flight-recorder slot (None: only the slowest-so-far do).
    flight_slow_threshold_ms: float | None = None
    #: Hard ceiling on ``/admin/profile?seconds=``.
    profile_max_seconds: float = 10.0

    # -- SLOs -----------------------------------------------------------
    #: Good fraction targets per objective.
    slo_availability_target: float = 0.999
    slo_latency_target: float = 0.99
    #: A 2xx answer slower than this burns the latency budget.
    slo_latency_threshold_ms: float = 250.0
    #: Degraded (non-primary-tier) answers burn the quality budget.
    slo_quality_target: float = 0.95
    #: Multi-window burn-rate pair + page threshold.
    slo_fast_window_s: float = 300.0
    slo_slow_window_s: float = 3600.0
    slo_burn_threshold: float = 14.4


@dataclass(frozen=True)
class ServiceResponse:
    """Transport-agnostic response: status, JSON body *or* raw text.

    JSON responses carry ``body`` (a dict); exposition-format responses
    (Prometheus text, flight-recorder JSONL) carry ``text`` with a
    matching ``content_type``.  ``payload()`` is what transports write.
    """

    status: int
    body: dict[str, Any] | None = None
    headers: dict[str, str] = field(default_factory=dict)
    text: str | None = None
    content_type: str = "application/json"

    def to_json(self) -> bytes:
        """The JSON body serialised for the HTTP layer."""
        return json.dumps(self.body if self.body is not None else {}, sort_keys=True).encode("utf-8")

    def payload(self) -> bytes:
        """The bytes a transport should write (text wins over body)."""
        if self.text is not None:
            return self.text.encode("utf-8")
        return self.to_json()


class RecommendationService:
    """Admission-controlled, degradation-laddered recommendation service.

    Parameters
    ----------
    corpus:
        The serving universe (vocabulary + popularity floor source).
    registry:
        Hot-swappable model slots; ``tiers`` names must be installed.
    tiers:
        Slot names forming the ladder, strongest first.  The popularity
        floor is always appended automatically.
    tool:
        Optional :class:`~repro.app.tool.SalesRecommendationTool` backing
        ``/similar``.
    feature_slot:
        Name of the registry slot whose model produced ``tool``'s company
        features.  When that slot is hot-swapped, the tool's features (and
        its ANN index, if built) are refreshed from the promoted model.
    config, clock, metrics:
        Tunables, injectable monotonic clock, and the metrics registry
        (the service owns its own by default so counters always record).
    """

    def __init__(
        self,
        *,
        corpus: Corpus,
        registry: ModelRegistry,
        tiers: tuple[str, ...] = ("lda", "ngram"),
        tool: Any = None,
        feature_slot: str | None = None,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        aliases: Mapping[str, str] | None = None,
    ) -> None:
        self.corpus = corpus
        self.registry = registry
        self.tool = tool
        self.feature_slot = feature_slot
        self.config = config or ServiceConfig()
        if self.config.similarity not in ("exact", "ann"):
            raise ValueError(
                f"similarity must be 'exact' or 'ann', got {self.config.similarity!r}"
            )
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._log = get_logger("serve.service")

        resolver = None
        resolver_duns: list[str] | None = None
        if self.config.resolve_names:
            names: list[str] = []
            resolver_duns = []
            for company in corpus.companies:
                names.append(company.name)
                resolver_duns.append(company.duns.value)
            resolver = EntityResolver(names)
        self.policy = AdmissionPolicy(
            corpus.vocabulary,
            max_history=self.config.max_history,
            default_top_n=self.config.default_top_n,
            max_top_n=self.config.max_top_n,
            default_deadline_s=self.config.default_deadline_ms / 1000.0,
            max_deadline_s=self.config.max_deadline_ms / 1000.0,
            resolver=resolver,
            resolver_duns=resolver_duns,
            aliases=aliases,
        )
        self.quarantine = QuarantineLog(self.config.quarantine_path)
        self.flight = FlightRecorder(
            capacity=self.config.flight_capacity,
            slow_threshold_ms=self.config.flight_slow_threshold_ms,
        )
        self.slo = SLOMonitor(
            [
                Objective(
                    "availability",
                    self.config.slo_availability_target,
                    "request neither shed nor internally failed",
                ),
                Objective(
                    "latency",
                    self.config.slo_latency_target,
                    f"2xx answered within {self.config.slo_latency_threshold_ms:g} ms",
                ),
                Objective(
                    "quality",
                    self.config.slo_quality_target,
                    "recommendation answered by the primary model tier",
                ),
            ],
            fast_window_s=self.config.slo_fast_window_s,
            slow_window_s=self.config.slo_slow_window_s,
            burn_threshold=self.config.slo_burn_threshold,
            clock=clock,
        )

        for name in tiers:
            registry.model(name)  # raises early on a missing slot
        self.ladder = DegradationLadder(
            [
                Tier(
                    name,
                    self._tier_scorer(name),
                    breaker=CircuitBreaker(
                        name,
                        failure_threshold=self.config.breaker_failure_threshold,
                        window=self.config.breaker_window,
                        recovery_time=self.config.breaker_recovery_s,
                        latency_budget=self.config.breaker_latency_budget_s,
                        clock=clock,
                        on_transition=self._on_breaker_transition,
                    ),
                    batch_scorer=self._tier_batch_scorer(name),
                )
                for name in tiers
            ],
            floor=Tier("popularity", self._popularity_scorer()),
            clock=clock,
        )

        self.topk_cache = (
            TopKCache(self.config.topk_cache_size)
            if self.config.topk_cache_size > 0
            else None
        )
        self.batcher = (
            MicroBatcher(
                self._score_single,
                self._score_batched,
                window_s=self.config.batch_window_ms / 1000.0,
                batch_max=self.config.batch_max,
                wait_fraction=self.config.batch_wait_fraction,
                clock=clock,
            )
            if self.config.batch_window_ms > 0
            else None
        )
        registry.subscribe(self._on_model_swap)

        self._instrument_cache: dict[tuple, Any] = {}
        self._inflight = 0
        self._inflight_by_endpoint: dict[str, int] = {}
        self._inflight_lock = threading.Lock()
        self._ready = True
        self._started_at = self._clock()

    def close(self) -> None:
        """Release background resources (the batch collector thread)."""
        if self.batcher is not None:
            self.batcher.close()

    # ------------------------------------------------------------------
    # Metrics plumbing.  Instruments carry their own locks (see
    # repro.obs.metrics), so these helpers are plain lookups — safe to
    # call concurrently from every transport thread.  Resolved
    # instruments are memoized per (name, labels): the service's label
    # values are bounded (normalized endpoints, outcome/tier/reason
    # enums), so the cache is small and the hot path skips the
    # registry's key construction on every request.
    # ------------------------------------------------------------------
    def _instrument(self, kind: str, name: str, labels: Mapping[str, str] | None):
        key = (name, tuple(sorted(labels.items())) if labels else ())
        instrument = self._instrument_cache.get(key)
        if instrument is None:
            if kind == "counter":
                instrument = self.metrics.counter(name, labels)
            elif kind == "gauge":
                instrument = self.metrics.gauge(name, labels)
            else:
                instrument = self.metrics.histogram(
                    name, labels, buckets=DEFAULT_LATENCY_BUCKETS_MS
                )
            self._instrument_cache[key] = instrument
        return instrument

    def _inc(
        self, name: str, labels: Mapping[str, str] | None = None, amount: float = 1.0
    ) -> None:
        self._instrument("counter", name, labels).inc(amount)

    def _set_gauge(
        self, name: str, labels: Mapping[str, str] | None, value: float
    ) -> None:
        self._instrument("gauge", name, labels).set(value)

    def _latency_histogram(self, endpoint: str):
        return self._instrument("histogram", "serve.latency.ms", {"endpoint": endpoint})

    def _on_breaker_transition(self, name: str, old: str, new: str) -> None:
        self._inc("serve.breaker.transitions", {"tier": name, "state": new})
        self._set_gauge(
            "serve.breaker.state",
            {"tier": name},
            _BREAKER_STATE_VALUE.get(new, -1.0),
        )
        self._log.warning(
            "breaker %s: %s -> %s",
            name,
            old,
            new,
            extra={"obs": {"tier": name, "from": old, "to": new}},
        )

    def _refresh_gauges(self) -> None:
        """Bring point-in-time gauges up to date before an export."""
        for tier in self.ladder.tiers:
            if tier.breaker is not None:
                self._set_gauge(
                    "serve.breaker.state",
                    {"tier": tier.name},
                    _BREAKER_STATE_VALUE.get(tier.breaker.state, -1.0),
                )
        with self._inflight_lock:
            by_endpoint = dict(self._inflight_by_endpoint)
        for endpoint, value in by_endpoint.items():
            self._set_gauge("serve.inflight", {"endpoint": endpoint}, value)

    # ------------------------------------------------------------------
    # Tier scorers
    # ------------------------------------------------------------------
    def _tier_scorer(self, name: str):
        def scorer(
            history: list[int], threshold: float | None, top_n: int
        ) -> list[tuple[int, float]]:
            recommender = self.registry.recommender(name)
            scored = recommender.recommend_scored(list(history), threshold=threshold)
            if scored:
                return scored[:top_n]
            # Nothing above phi: still answer with the best unowned
            # candidates so a degraded tier never goes silent.
            scores = recommender.scores(list(history))
            return [
                (token, float(scores[token]))
                for token in recommender.top_k(list(history), top_n)
            ]

        return scorer

    def _tier_batch_scorer(self, name: str):
        """Batched twin of :meth:`_tier_scorer`: one GEMM, per-row ranking.

        ``batch_next_product_proba`` scores every history in a single
        model call (LDA's batched fold-in is one matrix product); the
        per-row thresholding/ranking then mirrors
        ``ThresholdRecommender.recommend_scored`` / ``top_k`` exactly —
        same eligibility rule, same stable tie-break — so a batched answer
        is bit-identical to the single-request path's.
        """

        def batch_scorer(
            histories: list[list[int]],
            thresholds: list[float | None],
            top_ns: list[int],
        ) -> list[list[tuple[int, float]]]:
            recommender = self.registry.recommender(name)
            model = recommender.model
            clean = [model.validate_history(list(h)) for h in histories]
            matrix = model.batch_next_product_proba(clean)
            results: list[list[tuple[int, float]]] = []
            for i, history in enumerate(clean):
                scores = matrix[i]
                phi = (
                    recommender.threshold
                    if thresholds[i] is None
                    else thresholds[i]
                )
                owned = np.zeros(scores.shape[0], dtype=bool)
                if history:
                    owned[np.asarray(history, dtype=np.intp)] = True
                eligible = np.flatnonzero((scores >= phi) & ~owned)
                if len(eligible) == 0:
                    # Nothing above phi: same best-unowned fallback as the
                    # single path, so the tier never goes silent.
                    eligible = np.flatnonzero(~owned)
                order = np.argsort(-scores[eligible], kind="stable")
                ranked = eligible[order][: top_ns[i]]
                results.append([(int(t), float(scores[t])) for t in ranked])
            return results

        return batch_scorer

    # ------------------------------------------------------------------
    # Batching entry points (MicroBatcher callbacks)
    # ------------------------------------------------------------------
    def _score_single(
        self,
        history: list[int],
        threshold: float | None,
        top_n: int,
        deadline_s: float,
    ):
        return self.ladder.score(
            history, deadline_s=deadline_s, threshold=threshold, top_n=top_n
        )

    def _score_batched(
        self,
        histories: list[list[int]],
        thresholds: list[float | None],
        top_ns: list[int],
        budget_s: float,
    ):
        return self.ladder.score_batch(
            histories, deadline_s=budget_s, thresholds=thresholds, top_ns=top_ns
        )

    # ------------------------------------------------------------------
    # Hot-swap consumers
    # ------------------------------------------------------------------
    def _on_model_swap(self, report: SwapReport) -> None:
        """Registry promotion hook: drop stale caches, refresh features.

        The top-k cache is generation-keyed, so stale entries are already
        unreachable — clearing reclaims their memory.  When the promoted
        slot is the one whose model produced the similarity features, the
        tool's feature matrix (and ANN index) is rebuilt from the new
        model, stamped with the new generation.
        """
        if self.topk_cache is not None:
            dropped = self.topk_cache.invalidate()
            if dropped:
                self._inc(
                    "serve.cache.invalidate", {"endpoint": "/recommend"}, dropped
                )
        if self.tool is None or report.name != self.feature_slot:
            return
        model = self.registry.model(report.name)
        company_features = getattr(model, "company_features", None)
        refresh = getattr(self.tool, "refresh_features", None)
        if company_features is None or refresh is None:
            self._log.warning(
                "slot %s promoted but its model exposes no company_features; "
                "the similarity tool keeps serving generation %d features",
                report.name,
                self.tool.model_version if hasattr(self.tool, "model_version") else -1,
            )
            return
        refresh(
            company_features(self.tool.corpus), model_version=report.generation
        )
        self._log.info(
            "similarity features refreshed from %s v%d (generation %d)",
            report.name,
            report.version,
            report.generation,
        )

    def _popularity_scorer(self):
        counts = self.corpus.binary_matrix().sum(axis=0)
        popularity = counts / counts.sum()

        def scorer(
            history: list[int], threshold: float | None, top_n: int
        ) -> list[tuple[int, float]]:
            del threshold  # the floor ignores phi: it always answers
            owned = set(history)
            ranked = [
                (int(token), float(popularity[token]))
                for token in popularity.argsort()[::-1]
                if int(token) not in owned
            ]
            return ranked[:top_n]

        return scorer

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _header(headers: Mapping[str, str] | None, name: str) -> str | None:
        """Case-insensitive header lookup over any mapping (or None)."""
        if not headers:
            return None
        lowered = name.lower()
        for key, value in headers.items():
            if key.lower() == lowered:
                return value
        return None

    def handle(
        self,
        method: str,
        path: str,
        body: bytes | str | dict | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> ServiceResponse:
        """Serve one request; the single entry point for every transport.

        Runs inside a request scope: an inbound ``X-Request-Id`` header is
        honoured (sanitised) or an id is minted, the id is echoed on the
        response, and the request's spans are captured into an isolated
        buffer feeding the flight recorder.
        """
        method = method.upper()
        path, _, query = path.partition("?")
        params = urllib.parse.parse_qs(query)
        inbound_id = obs_context.sanitize_request_id(
            self._header(headers, obs_context.REQUEST_ID_HEADER)
        )
        started = self._clock()
        capture = self.config.telemetry and self.config.request_spans
        with obs_context.request_scope(inbound_id, capture_spans=capture) as ctx:
            try:
                response = self._route(method, path, params, body, headers)
            except Exception:  # noqa: BLE001 - last-resort guard; must stay unreached
                self._log.error("unhandled service error", exc_info=True)
                response = ServiceResponse(
                    500, {"error": "internal", "detail": "unexpected failure"}
                )
            response.headers.setdefault(obs_context.REQUEST_ID_HEADER, ctx.request_id)
            if self.config.telemetry:
                latency_ms = (self._clock() - started) * 1000.0
                try:
                    self._account(ctx, method, path, response, latency_ms)
                except Exception:  # noqa: BLE001 - telemetry must never cause a 5xx
                    self._log.error("telemetry accounting failed", exc_info=True)
            return response

    def _account(
        self,
        ctx: obs_context.RequestContext,
        method: str,
        path: str,
        response: ServiceResponse,
        latency_ms: float,
    ) -> None:
        """Feed one finished request into metrics, SLOs and the recorder."""
        endpoint = path if path in _KNOWN_ENDPOINTS else "other"
        status = response.status
        body = response.body if isinstance(response.body, dict) else {}
        if status == 429:
            outcome = "shed"
        elif status == 503:
            # Deliberate unavailability (readiness probe during a swap),
            # not an internal failure — keep "error" meaning uncaught 5xx.
            outcome = "unavailable"
        elif status >= 500:
            outcome = "error"
        elif status >= 400:
            outcome = "rejected"
        elif body.get("degraded"):
            outcome = "degraded"
        else:
            outcome = "ok"
        self._inc("serve.requests", {"endpoint": endpoint, "outcome": outcome})
        self._latency_histogram(endpoint).observe(
            latency_ms,
            exemplar={"request_id": ctx.request_id},
            ts=time.time(),
        )
        if endpoint not in _WORK_ENDPOINTS:
            return
        slo_outcomes: dict[str, bool] = {
            "availability": status != 429 and status < 500
        }
        if 200 <= status < 300:
            slo_outcomes["latency"] = (
                latency_ms <= self.config.slo_latency_threshold_ms
            )
            if endpoint == "/recommend" and "degraded" in body:
                slo_outcomes["quality"] = not body["degraded"]
        self.slo.record(slo_outcomes)
        extra: dict[str, Any] = {"outcome": outcome, "method": method}
        if "tier" in body:
            extra["tier"] = body["tier"]
        self.flight.record(
            request_id=ctx.request_id,
            trace_id=ctx.trace_id,
            endpoint=endpoint,
            status=status,
            latency_ms=latency_ms,
            failed=status >= 400,
            spans=ctx.spans,  # callable: serialized only when kept
            **extra,
        )

    def _route(
        self,
        method: str,
        path: str,
        params: Mapping[str, list[str]],
        body: Any,
        headers: Mapping[str, str] | None,
    ) -> ServiceResponse:
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return ServiceResponse(
                200,
                {"status": "alive", "uptime_s": round(self._clock() - self._started_at, 3)},
            )
        if path == "/readyz":
            if method != "GET":
                return self._method_not_allowed("GET")
            if self._ready:
                return ServiceResponse(200, {"ready": True, "models": self.registry.snapshot()})
            return ServiceResponse(503, {"ready": False, "reason": "model swap in progress"})
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._metrics_response(headers)
        if path == "/slo":
            if method != "GET":
                return self._method_not_allowed("GET")
            return ServiceResponse(200, self.slo.evaluate())
        if path == "/admin/debug":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._debug_response(params)
        if path == "/admin/profile":
            if method != "GET":
                return self._method_not_allowed("GET")
            return self._profile_response(params)
        if path == "/recommend":
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._with_admission("/recommend", body, self._recommend)
        if path == "/similar":
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._with_admission("/similar", body, self._similar)
        if path == "/admin/hotswap":
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._with_admission("/admin/hotswap", body, self._hotswap)
        return ServiceResponse(404, {"error": "not_found", "detail": f"unknown path {path}"})

    @staticmethod
    def _method_not_allowed(allowed: str) -> ServiceResponse:
        return ServiceResponse(
            405, {"error": "method_not_allowed"}, headers={"Allow": allowed}
        )

    # ------------------------------------------------------------------
    # Telemetry endpoints
    # ------------------------------------------------------------------
    def _metrics_response(self, headers: Mapping[str, str] | None) -> ServiceResponse:
        """Content-negotiated /metrics.

        Called without headers (the embedded/test path) it keeps the
        historical JSON shape.  Over HTTP the default is Prometheus text
        0.0.4; ``Accept: application/json`` selects JSON and an Accept
        mentioning ``openmetrics`` selects OpenMetrics, which is the only
        text format that can carry the ``request_id`` bucket exemplars.
        """
        accept = self._header(headers, "Accept") or ""
        if headers is None or "application/json" in accept:
            return ServiceResponse(200, self.metrics_snapshot())
        self._refresh_gauges()
        openmetrics = "openmetrics" in accept
        text = prom.render(self.metrics, openmetrics=openmetrics)
        content_type = (
            prom.CONTENT_TYPE_OPENMETRICS if openmetrics else prom.CONTENT_TYPE_TEXT
        )
        return ServiceResponse(200, None, text=text, content_type=content_type)

    def _debug_response(self, params: Mapping[str, list[str]]) -> ServiceResponse:
        request_id = params.get("request_id", [None])[0]
        if request_id:
            record = self.flight.lookup(request_id)
            if record is None:
                return ServiceResponse(
                    404,
                    {
                        "error": "not_found",
                        "detail": f"request {request_id!r} is not in the flight recorder",
                    },
                )
            return ServiceResponse(200, dict(record))
        section = params.get("section", ["all"])[0]
        if section not in ("all", "failed", "slow"):
            return ServiceResponse(
                400, {"error": "bad_request", "detail": f"unknown section {section!r}"}
            )
        limit: int | None = None
        raw_limit = params.get("limit", [None])[0]
        if raw_limit is not None:
            try:
                limit = int(raw_limit)
            except ValueError:
                return ServiceResponse(
                    400, {"error": "bad_request", "detail": "limit must be an integer"}
                )
        text = self.flight.dump_jsonl(section=section, limit=limit)
        return ServiceResponse(
            200, None, text=text, content_type="application/x-ndjson"
        )

    def _profile_response(self, params: Mapping[str, list[str]]) -> ServiceResponse:
        raw = params.get("seconds", ["1.0"])[0]
        try:
            seconds = float(raw)
        except ValueError:
            return ServiceResponse(
                400, {"error": "bad_request", "detail": "seconds must be a number"}
            )
        if seconds <= 0:
            return ServiceResponse(
                400, {"error": "bad_request", "detail": "seconds must be positive"}
            )
        seconds = min(seconds, self.config.profile_max_seconds)
        report = SamplingProfiler().run_for(seconds)
        return ServiceResponse(200, report)

    # ------------------------------------------------------------------
    # Admission-scoped endpoints
    # ------------------------------------------------------------------
    def _parse_body(self, body: Any) -> Any:
        if isinstance(body, (bytes, str)):
            try:
                return json.loads(body)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise AdmissionError(400, "malformed", f"body is not valid JSON: {exc}")
        return body if body is not None else {}

    def _with_admission(
        self,
        endpoint: str,
        body: Any,
        handler: Callable[[Any], ServiceResponse],
    ) -> ServiceResponse:
        """Shed on overload, then parse + validate + dispatch one request."""
        with self._inflight_lock:
            if self._inflight >= self.config.max_inflight:
                self._inc("serve.shed", {"endpoint": endpoint})
                return ServiceResponse(
                    429,
                    {
                        "error": "overloaded",
                        "detail": f"more than {self.config.max_inflight} requests in flight",
                    },
                    headers={"Retry-After": f"{self.config.retry_after_s:g}"},
                )
            self._inflight += 1
            self._inflight_by_endpoint[endpoint] = (
                self._inflight_by_endpoint.get(endpoint, 0) + 1
            )
            self._set_gauge(
                "serve.inflight", {"endpoint": endpoint},
                self._inflight_by_endpoint[endpoint],
            )
        try:
            with trace.span("serve.request"):
                payload = None
                try:
                    payload = self._parse_body(body)
                    response = handler(payload)
                except AdmissionError as exc:
                    self._inc(
                        "serve.rejected",
                        {"endpoint": endpoint, "reason": exc.reason},
                    )
                    self.quarantine.record(
                        exc.reason, exc.detail, payload if payload is not None else repr(body)
                    )
                    response = ServiceResponse(
                        exc.status, {"error": exc.reason, "detail": exc.detail}
                    )
            return response
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                self._inflight_by_endpoint[endpoint] -= 1
                self._set_gauge(
                    "serve.inflight", {"endpoint": endpoint},
                    self._inflight_by_endpoint[endpoint],
                )

    def _recommend(self, payload: Any) -> ServiceResponse:
        request = self.policy.validate_recommend(payload)
        history = list(request.history)
        cache_key = None
        result = None
        path = "single"
        batch_size = 1
        waited_ms = 0.0
        if self.topk_cache is not None:
            # Generation in the key makes a hot-swap atomically orphan
            # every entry computed against the previous serving set.
            cache_key = (
                self.registry.generation,
                tuple(history),
                request.threshold,
                request.top_n,
            )
            result = self.topk_cache.get(cache_key)
            if result is not None:
                path = "cached"
                self._inc("serve.cache.hit", {"endpoint": "/recommend"})
            else:
                self._inc("serve.cache.miss", {"endpoint": "/recommend"})
        if result is None:
            if self.batcher is not None:
                answer = self.batcher.submit(
                    history, request.threshold, request.top_n, request.deadline_s
                )
                result = answer.result
                path = answer.path
                batch_size = answer.batch_size
                waited_ms = answer.waited_ms
            else:
                result = self.ladder.score(
                    history,
                    deadline_s=request.deadline_s,
                    threshold=request.threshold,
                    top_n=request.top_n,
                )
            if cache_key is not None and not result.degraded:
                # Degraded answers reflect a transient outage, not the
                # model — they must not outlive the condition.
                evicted = self.topk_cache.put(cache_key, result)
                if evicted:
                    self._inc(
                        "serve.cache.evict", {"endpoint": "/recommend"}, evicted
                    )
        self._inc("serve.tier.answers", {"tier": result.tier})
        self._inc("serve.path", {"endpoint": "/recommend", "path": path})
        return ServiceResponse(
            200,
            {
                "tier": result.tier,
                "degraded": result.degraded,
                "path": path,
                "batch_size": batch_size,
                "queue_wait_ms": round(waited_ms, 3),
                "recommendations": [
                    {
                        "token": token,
                        "category": self.corpus.vocabulary[token],
                        "score": round(score, 6),
                    }
                    for token, score in result.recommendations
                ],
                "outcomes": [
                    {
                        "tier": outcome.tier,
                        "status": outcome.status,
                        "latency_ms": round(outcome.latency_s * 1000.0, 3),
                        **({"error": outcome.error} if outcome.error else {}),
                    }
                    for outcome in result.outcomes
                ],
                "model_versions": {
                    name: self.registry.version(name)
                    for name in self.registry.names()
                },
            },
        )

    def _similar(self, payload: Any) -> ServiceResponse:
        if self.tool is None:
            raise AdmissionError(
                404, "not_configured", "this deployment has no similarity index"
            )
        request = self.policy.validate_similar_detail(payload)
        duns, k = request.duns, request.k
        detail = getattr(self.tool, "similar_companies_detail", None)
        try:
            if detail is not None:
                hits, backend = detail(duns, k=k, backend=self.config.similarity)
            else:
                hits = self.tool.similar_companies(duns, k=k)
                backend = "exact"
        except KeyError:
            raise AdmissionError(404, "unknown_company", f"company {duns} is not in the corpus")
        self._inc("serve.path", {"endpoint": "/similar", "path": backend})
        body_resolution = (
            {"resolution": request.resolution} if request.resolution else {}
        )
        return ServiceResponse(
            200,
            {
                "duns": duns,
                "backend": backend,
                **body_resolution,
                "similar": [
                    {"duns": hit.duns, "name": hit.name, "similarity": round(hit.similarity, 6)}
                    for hit in hits
                ],
            },
        )

    def _hotswap(self, payload: Any) -> ServiceResponse:
        fields = payload if isinstance(payload, dict) else {}
        name = fields.get("name")
        path = fields.get("path")
        if not isinstance(name, str) or not isinstance(path, str):
            raise AdmissionError(
                422, "schema", "hotswap requires string 'name' and 'path' fields"
            )
        # Readiness drops for the duration of validation + promotion; the
        # previous model keeps answering /recommend throughout.
        self._ready = False
        try:
            report = self.registry.swap(name, path)
        finally:
            self._ready = True
        self._inc("serve.swap", {"status": report.status})
        status = 200 if report.status == "promoted" else 409
        return ServiceResponse(status, report.as_dict())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether the service currently reports ready."""
        return self._ready

    def metrics_snapshot(self) -> dict[str, Any]:
        """Counters + breaker states + quarantine depth, JSON-encodable.

        Labelled series appear under ``name{key="value",...}`` keys; this
        is the JSON representation of /metrics (and what ``repro obs top``
        polls).
        """
        self._refresh_gauges()
        snapshot = self.metrics.snapshot()
        snapshot["breakers"] = {
            tier.name: tier.breaker.snapshot()
            for tier in self.ladder.tiers
            if tier.breaker is not None
        }
        snapshot["quarantine"] = {"total": self.quarantine.total}
        snapshot["models"] = self.registry.snapshot()
        snapshot["tiers"] = self.ladder.tier_names
        snapshot["flight"] = self.flight.stats()
        if self.topk_cache is not None:
            snapshot["topk_cache"] = self.topk_cache.stats()
        if self.batcher is not None:
            snapshot["batcher"] = self.batcher.stats()
        ann = getattr(self.tool, "ann_index", None) if self.tool is not None else None
        if ann is not None:
            snapshot["ann"] = ann.stats()
        return snapshot
