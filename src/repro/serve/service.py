"""The resilient recommendation service (transport-agnostic core).

:class:`RecommendationService` wires admission control, the bounded
in-flight limiter, the degradation ladder, the hot-swappable model
registry and the similar-company tool into one ``handle(method, path,
body)`` entry point that the stdlib HTTP layer (:mod:`repro.serve.http`),
the tests and the load harness all drive identically.

The service's contract: **every degradable failure yields a degraded
answer, a 4xx rejection, or a 429 shed — never a 5xx.**  Bad payloads are
quarantined; slow or broken model tiers degrade down the ladder; an
overloaded service sheds with ``Retry-After``; a bad staged model is
rejected while the previous model keeps serving.

Endpoints
---------
* ``POST /recommend`` — install-base payload → tiered recommendations.
* ``POST /similar``   — ``{"duns", "k"}`` → similar companies.
* ``POST /admin/hotswap`` — ``{"name", "path"}`` → validated promotion.
* ``GET /healthz``    — liveness (always 200 while the process runs).
* ``GET /readyz``     — readiness (503 while a hot-swap is in flight).
* ``GET /metrics``    — counters, latency histogram, breaker states.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.data.corpus import Corpus
from repro.obs import trace
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionError, AdmissionPolicy, QuarantineLog
from repro.serve.breaker import CircuitBreaker
from repro.serve.ladder import DegradationLadder, Tier
from repro.serve.registry import ModelRegistry

__all__ = ["ServiceConfig", "ServiceResponse", "RecommendationService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving layer (all enforced per request)."""

    #: Concurrent requests admitted before load-shedding with 429.
    max_inflight: int = 32
    #: ``Retry-After`` seconds advertised on a shed.
    retry_after_s: float = 1.0
    #: Deadline budget for requests that do not carry ``deadline_ms``.
    default_deadline_ms: float = 250.0
    #: Hard ceiling on a request-supplied deadline.
    max_deadline_ms: float = 5000.0
    #: Histories longer than this are rejected with 413.
    max_history: int = 64
    default_top_n: int = 5
    max_top_n: int = 50
    #: Default phi of the tier recommenders.
    default_threshold: float = 0.1
    #: Breaker tuning shared by every model tier.
    breaker_failure_threshold: int = 3
    breaker_window: int = 8
    breaker_recovery_s: float = 2.0
    breaker_latency_budget_s: float | None = None
    #: Perplexity gate for hot-swaps.
    swap_tolerance: float = 1.25
    #: Optional JSONL file quarantined payloads are appended to.
    quarantine_path: str | None = None


@dataclass(frozen=True)
class ServiceResponse:
    """Transport-agnostic response: status, JSON body, extra headers."""

    status: int
    body: dict[str, Any]
    headers: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> bytes:
        """The body serialised for the HTTP layer."""
        return json.dumps(self.body, sort_keys=True).encode("utf-8")


class RecommendationService:
    """Admission-controlled, degradation-laddered recommendation service.

    Parameters
    ----------
    corpus:
        The serving universe (vocabulary + popularity floor source).
    registry:
        Hot-swappable model slots; ``tiers`` names must be installed.
    tiers:
        Slot names forming the ladder, strongest first.  The popularity
        floor is always appended automatically.
    tool:
        Optional :class:`~repro.app.tool.SalesRecommendationTool` backing
        ``/similar``.
    config, clock, metrics:
        Tunables, injectable monotonic clock, and the metrics registry
        (the service owns its own by default so counters always record).
    """

    def __init__(
        self,
        *,
        corpus: Corpus,
        registry: ModelRegistry,
        tiers: tuple[str, ...] = ("lda", "ngram"),
        tool: Any = None,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.corpus = corpus
        self.registry = registry
        self.tool = tool
        self.config = config or ServiceConfig()
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._log = get_logger("serve.service")

        self.policy = AdmissionPolicy(
            corpus.vocabulary,
            max_history=self.config.max_history,
            default_top_n=self.config.default_top_n,
            max_top_n=self.config.max_top_n,
            default_deadline_s=self.config.default_deadline_ms / 1000.0,
            max_deadline_s=self.config.max_deadline_ms / 1000.0,
        )
        self.quarantine = QuarantineLog(self.config.quarantine_path)

        for name in tiers:
            registry.model(name)  # raises early on a missing slot
        self.ladder = DegradationLadder(
            [
                Tier(
                    name,
                    self._tier_scorer(name),
                    breaker=CircuitBreaker(
                        name,
                        failure_threshold=self.config.breaker_failure_threshold,
                        window=self.config.breaker_window,
                        recovery_time=self.config.breaker_recovery_s,
                        latency_budget=self.config.breaker_latency_budget_s,
                        clock=clock,
                        on_transition=self._on_breaker_transition,
                    ),
                )
                for name in tiers
            ],
            floor=Tier("popularity", self._popularity_scorer()),
            clock=clock,
        )

        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._ready = True
        self._started_at = self._clock()

    # ------------------------------------------------------------------
    # Metrics plumbing (service counters always record, thread-safely)
    # ------------------------------------------------------------------
    def _inc(self, name: str, amount: float = 1.0) -> None:
        with self._metrics_lock:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.metrics.histogram(name).observe(value)

    def _set_gauge(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.metrics.gauge(name).set(value)

    def _on_breaker_transition(self, name: str, old: str, new: str) -> None:
        self._inc(f"serve.breaker.{name}.{new}")
        self._log.warning("breaker %s: %s -> %s", name, old, new)

    # ------------------------------------------------------------------
    # Tier scorers
    # ------------------------------------------------------------------
    def _tier_scorer(self, name: str):
        def scorer(
            history: list[int], threshold: float | None, top_n: int
        ) -> list[tuple[int, float]]:
            recommender = self.registry.recommender(name)
            scored = recommender.recommend_scored(list(history), threshold=threshold)
            if scored:
                return scored[:top_n]
            # Nothing above phi: still answer with the best unowned
            # candidates so a degraded tier never goes silent.
            scores = recommender.scores(list(history))
            return [
                (token, float(scores[token]))
                for token in recommender.top_k(list(history), top_n)
            ]

        return scorer

    def _popularity_scorer(self):
        counts = self.corpus.binary_matrix().sum(axis=0)
        popularity = counts / counts.sum()

        def scorer(
            history: list[int], threshold: float | None, top_n: int
        ) -> list[tuple[int, float]]:
            del threshold  # the floor ignores phi: it always answers
            owned = set(history)
            ranked = [
                (int(token), float(popularity[token]))
                for token in popularity.argsort()[::-1]
                if int(token) not in owned
            ]
            return ranked[:top_n]

        return scorer

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, body: bytes | str | dict | None = None
    ) -> ServiceResponse:
        """Serve one request; the single entry point for every transport."""
        try:
            return self._route(method.upper(), path, body)
        except Exception:  # noqa: BLE001 - last-resort guard; must stay unreached
            self._inc("serve.errors")
            self._log.error("unhandled service error", exc_info=True)
            return ServiceResponse(500, {"error": "internal", "detail": "unexpected failure"})

    def _route(self, method: str, path: str, body: Any) -> ServiceResponse:
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return ServiceResponse(
                200,
                {"status": "alive", "uptime_s": round(self._clock() - self._started_at, 3)},
            )
        if path == "/readyz":
            if method != "GET":
                return self._method_not_allowed("GET")
            if self._ready:
                return ServiceResponse(200, {"ready": True, "models": self.registry.snapshot()})
            return ServiceResponse(503, {"ready": False, "reason": "model swap in progress"})
        if path == "/metrics":
            if method != "GET":
                return self._method_not_allowed("GET")
            return ServiceResponse(200, self.metrics_snapshot())
        if path == "/recommend":
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._with_admission(body, self._recommend)
        if path == "/similar":
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._with_admission(body, self._similar)
        if path == "/admin/hotswap":
            if method != "POST":
                return self._method_not_allowed("POST")
            return self._with_admission(body, self._hotswap)
        return ServiceResponse(404, {"error": "not_found", "detail": f"unknown path {path}"})

    @staticmethod
    def _method_not_allowed(allowed: str) -> ServiceResponse:
        return ServiceResponse(
            405, {"error": "method_not_allowed"}, headers={"Allow": allowed}
        )

    def _parse_body(self, body: Any) -> Any:
        if isinstance(body, (bytes, str)):
            try:
                return json.loads(body)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise AdmissionError(400, "malformed", f"body is not valid JSON: {exc}")
        return body if body is not None else {}

    def _with_admission(
        self, body: Any, endpoint: Callable[[Any], ServiceResponse]
    ) -> ServiceResponse:
        """Shed on overload, then parse + validate + dispatch one request."""
        started = self._clock()
        with self._inflight_lock:
            if self._inflight >= self.config.max_inflight:
                self._inc("serve.shed")
                return ServiceResponse(
                    429,
                    {
                        "error": "overloaded",
                        "detail": f"more than {self.config.max_inflight} requests in flight",
                    },
                    headers={"Retry-After": f"{self.config.retry_after_s:g}"},
                )
            self._inflight += 1
            self._set_gauge("serve.inflight", self._inflight)
        self._inc("serve.requests")
        try:
            with trace.span("serve.request"):
                payload = None
                try:
                    payload = self._parse_body(body)
                    response = endpoint(payload)
                except AdmissionError as exc:
                    self._inc("serve.rejected")
                    self._inc(f"serve.rejected.{exc.reason}")
                    self.quarantine.record(
                        exc.reason, exc.detail, payload if payload is not None else repr(body)
                    )
                    response = ServiceResponse(
                        exc.status, {"error": exc.reason, "detail": exc.detail}
                    )
            self._observe("serve.latency_ms", (self._clock() - started) * 1000.0)
            return response
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                self._set_gauge("serve.inflight", self._inflight)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _recommend(self, payload: Any) -> ServiceResponse:
        request = self.policy.validate_recommend(payload)
        result = self.ladder.score(
            list(request.history),
            deadline_s=request.deadline_s,
            threshold=request.threshold,
            top_n=request.top_n,
        )
        self._inc(f"serve.tier.{result.tier}")
        if result.degraded:
            self._inc("serve.degraded")
        else:
            self._inc("serve.ok")
        return ServiceResponse(
            200,
            {
                "tier": result.tier,
                "degraded": result.degraded,
                "recommendations": [
                    {
                        "token": token,
                        "category": self.corpus.vocabulary[token],
                        "score": round(score, 6),
                    }
                    for token, score in result.recommendations
                ],
                "outcomes": [
                    {
                        "tier": outcome.tier,
                        "status": outcome.status,
                        "latency_ms": round(outcome.latency_s * 1000.0, 3),
                        **({"error": outcome.error} if outcome.error else {}),
                    }
                    for outcome in result.outcomes
                ],
                "model_versions": {
                    name: self.registry.version(name)
                    for name in self.registry.names()
                },
            },
        )

    def _similar(self, payload: Any) -> ServiceResponse:
        if self.tool is None:
            raise AdmissionError(
                404, "not_configured", "this deployment has no similarity index"
            )
        duns, k = self.policy.validate_similar(payload)
        try:
            hits = self.tool.similar_companies(duns, k=k)
        except KeyError:
            raise AdmissionError(404, "unknown_company", f"company {duns} is not in the corpus")
        self._inc("serve.ok")
        return ServiceResponse(
            200,
            {
                "duns": duns,
                "similar": [
                    {"duns": hit.duns, "name": hit.name, "similarity": round(hit.similarity, 6)}
                    for hit in hits
                ],
            },
        )

    def _hotswap(self, payload: Any) -> ServiceResponse:
        fields = payload if isinstance(payload, dict) else {}
        name = fields.get("name")
        path = fields.get("path")
        if not isinstance(name, str) or not isinstance(path, str):
            raise AdmissionError(
                422, "schema", "hotswap requires string 'name' and 'path' fields"
            )
        # Readiness drops for the duration of validation + promotion; the
        # previous model keeps answering /recommend throughout.
        self._ready = False
        try:
            report = self.registry.swap(name, path)
        finally:
            self._ready = True
        self._inc(f"serve.swap.{report.status}")
        status = 200 if report.status == "promoted" else 409
        return ServiceResponse(status, report.as_dict())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether the service currently reports ready."""
        return self._ready

    def metrics_snapshot(self) -> dict[str, Any]:
        """Counters + breaker states + quarantine depth, JSON-encodable."""
        with self._metrics_lock:
            snapshot = self.metrics.snapshot()
        snapshot["breakers"] = {
            tier.name: tier.breaker.snapshot()
            for tier in self.ladder.tiers
            if tier.breaker is not None
        }
        snapshot["quarantine"] = {"total": self.quarantine.total}
        snapshot["models"] = self.registry.snapshot()
        snapshot["tiers"] = self.ladder.tier_names
        return snapshot
