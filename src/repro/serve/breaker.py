"""Per-model circuit breaker: closed → open → half-open.

Each degradation-ladder tier (see :mod:`repro.serve.ladder`) scores
requests through a breaker.  While *closed*, calls flow and outcomes are
recorded over a sliding window of recent calls; once the window holds
``failure_threshold`` failures the breaker *opens* and the tier is skipped
without spending any of the request's deadline budget.  After
``recovery_time`` seconds the breaker moves to *half-open* and admits a
single probe call: a probe success closes the breaker (window cleared), a
probe failure re-opens it and restarts the recovery clock.

Failures are both raised exceptions and — when ``latency_budget`` is set —
successful calls that took too long, so a model that silently degrades to
pathological latency trips the breaker exactly like one that raises.

The clock is injectable (any ``() -> float`` in seconds) so tests drive
open/half-open transitions deterministically without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure/latency-rate driven circuit breaker for one scoring tier.

    Parameters
    ----------
    name:
        Display/metrics name (usually the tier name).
    failure_threshold:
        Failures within the sliding window that trip the breaker.
    window:
        Number of most recent calls the failure count is computed over.
    recovery_time:
        Seconds the breaker stays open before admitting a half-open probe.
    latency_budget:
        When set, a successful call slower than this many seconds counts
        as a failure.
    clock:
        Monotonic seconds source; injectable for deterministic tests.
    on_transition:
        Optional ``(name, old_state, new_state)`` callback fired under the
        breaker lock on every state change.
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        window: int = 8,
        recovery_time: float = 5.0,
        latency_budget: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if window < failure_threshold:
            raise ValueError("window must be >= failure_threshold")
        if recovery_time <= 0:
            raise ValueError("recovery_time must be positive")
        if latency_budget is not None and latency_budget <= 0:
            raise ValueError("latency_budget must be positive when set")
        self.name = name
        self.failure_threshold = failure_threshold
        self.window = window
        self.recovery_time = recovery_time
        self.latency_budget = latency_budget
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._probe_inflight = False

    # ------------------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state and self._on_transition is not None:
            self._on_transition(self.name, old, new_state)

    @property
    def state(self) -> str:
        """Current state, accounting for recovery-time expiry."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and self._clock() - self._opened_at >= self.recovery_time:
            self._transition(HALF_OPEN)
            self._probe_inflight = False

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed now.

        In the half-open state only one probe is admitted at a time; the
        caller that got ``True`` must report the outcome via
        :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def cancel(self) -> None:
        """An admitted call was never made; release any held probe slot.

        Records no outcome — used when the request's deadline budget ran
        out between :meth:`allow` and the call itself.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False

    def record_success(self, latency: float = 0.0) -> None:
        """Report a completed call; slow successes may still count as failures."""
        if self.latency_budget is not None and latency > self.latency_budget:
            self.record_failure(latency, reason="latency")
            return
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._outcomes.clear()
                self._transition(CLOSED)
                return
            self._outcomes.append(False)

    def record_failure(self, latency: float | None = None, *, reason: str = "error") -> None:
        """Report a failed (raised, timed-out, or over-budget) call."""
        del latency, reason  # recorded by the caller's metrics, not here
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._opened_at = self._clock()
                self._transition(OPEN)
                return
            self._outcomes.append(True)
            if self._state == CLOSED and sum(self._outcomes) >= self.failure_threshold:
                self._opened_at = self._clock()
                self._transition(OPEN)

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view for health/metrics endpoints."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "recent_failures": sum(self._outcomes),
                "window": self.window,
                "failure_threshold": self.failure_threshold,
                "recovery_time_s": self.recovery_time,
            }
