"""Approximate nearest-neighbor search over company vectors (pure numpy).

Serving's ``/similar`` endpoint must answer "which companies look like this
one" from topic/embedding vectors at corpus scales where the brute-force
matrix–vector product stops being sub-millisecond.  :class:`LSHIndex` is a
random-hyperplane (signed random projection) locality-sensitive hash over
cosine similarity:

* each of ``n_tables`` hash tables assigns every company a ``n_bits``-bit
  signature — the signs of its projections onto seeded Gaussian
  hyperplanes — and buckets companies by signature;
* a query gathers the candidates sharing its bucket in any table, widening
  through multi-probing (signatures at Hamming distance 1, then 2) until
  enough candidates are in hand;
* the candidate set is **exactly re-ranked** with the true cosine scores,
  so the returned similarities are identical to the brute-force path for
  every company the probe reached — the approximation is only in recall,
  never in the reported scores.

The index is deterministic in ``(dim, n_tables, n_bits, seed)``: the
hyperplanes are drawn once from a seeded generator, so rebuilding after a
model hot-swap (same shape, new vectors) reuses them and an index built
incrementally via :meth:`add` is query-identical to one built in a single
shot.  :meth:`recall_at_k` is the build-time self-check against the exact
path that the serving bootstrap runs before trusting the index.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro._validation import check_matrix, check_positive_int
from repro.analysis.similarity import top_k_from_scores
from repro.obs.logging import get_logger

__all__ = ["LSHIndex", "unit_rows"]


def unit_rows(features: np.ndarray) -> np.ndarray:
    """Rows scaled to unit L2 norm; zero rows stay zero (dissimilar to all)."""
    matrix = check_matrix(features, "features")
    norms = np.linalg.norm(matrix, axis=1)
    safe = np.where(norms == 0.0, 1.0, norms)
    return matrix / safe[:, None]


class LSHIndex:
    """Multi-table random-hyperplane LSH with exact candidate re-ranking.

    Parameters
    ----------
    dim:
        Dimensionality of the indexed vectors.
    n_tables:
        Independent hash tables; each adds a chance to catch a neighbor.
    n_bits:
        Signature bits per table; buckets hold ``~N / 2**n_bits`` rows.
    seed:
        Seeds the hyperplane draw — the whole index layout is a pure
        function of ``(dim, n_tables, n_bits, seed)`` plus the add order.
    min_candidates:
        Probing widens (radius 0 → 1 → 2 → full scan) until at least this
        many candidates are gathered, so sparse buckets degrade to more
        work, never to an empty answer.
    """

    def __init__(
        self,
        dim: int,
        *,
        n_tables: int = 8,
        n_bits: int = 12,
        seed: int = 0,
        min_candidates: int = 64,
    ) -> None:
        check_positive_int(dim, "dim")
        check_positive_int(n_tables, "n_tables")
        check_positive_int(n_bits, "n_bits")
        if n_bits > 62:
            raise ValueError(f"n_bits must fit an int64 signature, got {n_bits}")
        check_positive_int(min_candidates, "min_candidates")
        self.dim = dim
        self.n_tables = n_tables
        self.n_bits = n_bits
        self.seed = seed
        self.min_candidates = min_candidates
        rng = np.random.default_rng(seed)
        #: ``(n_tables * n_bits, dim)`` hyperplane normals, fixed for life.
        self._planes = rng.standard_normal((n_tables * n_bits, dim))
        self._bit_values = (1 << np.arange(n_bits, dtype=np.int64))
        self._tables: list[dict[int, np.ndarray]] = [{} for _ in range(n_tables)]
        self._unit = np.zeros((0, dim), dtype=np.float64)
        #: Version of the model whose vectors are indexed (hot-swap stamp).
        self.model_version = 0
        self.build_recall: float | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        features: np.ndarray,
        *,
        n_tables: int = 8,
        n_bits: int = 12,
        seed: int = 0,
        min_candidates: int = 64,
        model_version: int = 0,
        check_recall_k: int = 10,
        check_recall_queries: int = 32,
        min_recall: float | None = None,
    ) -> "LSHIndex":
        """Index a feature matrix and run the recall self-check.

        ``min_recall`` turns the self-check into a gate: a build whose
        sampled recall@``check_recall_k`` falls below it raises
        :class:`ValueError` instead of silently serving bad neighbors.
        """
        matrix = check_matrix(features, "features")
        index = cls(
            matrix.shape[1],
            n_tables=n_tables,
            n_bits=n_bits,
            seed=seed,
            min_candidates=min_candidates,
        )
        index.model_version = model_version
        index.add(matrix)
        if check_recall_queries > 0 and index.size > check_recall_k + 1:
            index.build_recall = index.recall_at_k(
                k=check_recall_k, n_queries=check_recall_queries, seed=seed
            )
            get_logger("serve.ann").info(
                "LSH index built: %d vectors, %d tables x %d bits, "
                "recall@%d self-check %.4f",
                index.size,
                n_tables,
                n_bits,
                check_recall_k,
                index.build_recall,
            )
            if min_recall is not None and index.build_recall < min_recall:
                raise ValueError(
                    f"LSH build-time recall@{check_recall_k} "
                    f"{index.build_recall:.4f} is below the required "
                    f"{min_recall:.4f}; raise n_tables/n_bits/min_candidates"
                )
        return index

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return self._unit.shape[0]

    def _signatures(self, unit: np.ndarray) -> np.ndarray:
        """``(rows, n_tables)`` int64 signatures of unit-normalized rows."""
        bits = (unit @ self._planes.T) >= 0.0
        bits = bits.reshape(unit.shape[0], self.n_tables, self.n_bits)
        return bits @ self._bit_values

    def add(self, features: np.ndarray) -> np.ndarray:
        """Append rows to the index; returns the assigned row ids.

        This is the incremental path a hot-swap or corpus growth uses: the
        hyperplanes never change, so an index grown by repeated ``add``
        calls answers queries identically to one built in a single shot.
        """
        matrix = check_matrix(features, "features")
        if matrix.shape[1] != self.dim:
            raise ValueError(
                f"vectors have dim {matrix.shape[1]}, index expects {self.dim}"
            )
        unit = unit_rows(matrix)
        n = unit.shape[0]
        ids = np.arange(self.size, self.size + n, dtype=np.int64)
        signatures = self._signatures(unit)
        for t in range(self.n_tables):
            column = signatures[:, t]
            order = np.argsort(column, kind="stable")
            keys, starts = np.unique(column[order], return_index=True)
            bounds = np.append(starts, n)
            table = self._tables[t]
            for j, key in enumerate(keys):
                chunk = ids[order[starts[j] : bounds[j + 1]]]
                previous = table.get(int(key))
                table[int(key)] = (
                    chunk if previous is None else np.concatenate([previous, chunk])
                )
        self._unit = np.vstack([self._unit, unit]) if self.size else unit
        return ids

    def rebuild(self, features: np.ndarray, *, model_version: int | None = None) -> None:
        """Re-index a fresh vector set under the *same* hyperplanes.

        The hot-swap path: a promoted model publishes new company vectors;
        the bucket layout is recomputed through the incremental
        :meth:`add` machinery while the seeded hyperplanes stay fixed.
        """
        self._tables = [{} for _ in range(self.n_tables)]
        self._unit = np.zeros((0, self.dim), dtype=np.float64)
        self.add(features)
        if model_version is not None:
            self.model_version = model_version

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _candidates(self, signatures: np.ndarray, need: int) -> np.ndarray:
        """Candidate ids for one query, widening probes until ``need`` found."""
        parts: list[np.ndarray] = []
        total = 0
        for t in range(self.n_tables):
            bucket = self._tables[t].get(int(signatures[t]))
            if bucket is not None:
                parts.append(bucket)
                total += len(bucket)
        if total < need:  # radius-1 multi-probe: flip each signature bit
            for t in range(self.n_tables):
                signature = int(signatures[t])
                table = self._tables[t]
                for b in range(self.n_bits):
                    bucket = table.get(signature ^ (1 << b))
                    if bucket is not None:
                        parts.append(bucket)
                        total += len(bucket)
        if total < need:  # radius-2: flip bit pairs (rare; sparse tables)
            for t in range(self.n_tables):
                signature = int(signatures[t])
                table = self._tables[t]
                for b1 in range(self.n_bits):
                    flipped = signature ^ (1 << b1)
                    for b2 in range(b1 + 1, self.n_bits):
                        bucket = table.get(flipped ^ (1 << b2))
                        if bucket is not None:
                            parts.append(bucket)
                            total += len(bucket)
        if total < min(need, self.size):  # degenerate layout: scan everything
            return np.arange(self.size, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def search(
        self,
        vector: np.ndarray,
        k: int,
        *,
        exclude: int | Sequence[int] | None = None,
    ) -> list[tuple[int, float]]:
        """Top-``k`` indexed rows by cosine similarity to ``vector``.

        Candidates come from the hash tables; scores come from an exact
        dot product against the stored unit vectors, ranked with the same
        deterministic tie-breaking as the brute-force path.  ``exclude``
        removes row ids (typically the query company itself).
        """
        check_positive_int(k, "k")
        query = np.asarray(vector, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(f"query has dim {query.shape[0]}, index expects {self.dim}")
        if self.size == 0:
            return []
        norm = float(np.linalg.norm(query))
        if norm == 0.0:
            return []
        query = query / norm
        signatures = self._signatures(query[None, :])[0]
        need = max(self.min_candidates, 4 * k)
        candidates = self._candidates(signatures, need)
        if exclude is not None:
            drop = np.atleast_1d(np.asarray(exclude, dtype=np.int64))
            candidates = candidates[~np.isin(candidates, drop)]
        if len(candidates) == 0:
            return []
        scores = self._unit[candidates] @ query
        top = top_k_from_scores(scores, min(k, len(candidates)))
        return [(int(candidates[i]), float(scores[i])) for i in top]

    # ------------------------------------------------------------------
    # Self-check
    # ------------------------------------------------------------------
    def recall_at_k(self, *, k: int = 10, n_queries: int = 32, seed: int = 0) -> float:
        """Mean recall@``k`` of the probe path against exact brute force.

        Queries are sampled from the indexed vectors themselves; the exact
        answer is the full matrix–vector product over the stored unit
        matrix.  This is the build-time self-check, also exposed for tests
        and the benchmark gate.
        """
        check_positive_int(k, "k")
        check_positive_int(n_queries, "n_queries")
        if self.size <= k:
            raise ValueError(f"need more than k={k} indexed vectors, have {self.size}")
        rng = np.random.default_rng(seed)
        queries = rng.choice(self.size, size=min(n_queries, self.size), replace=False)
        hits = 0
        for q in queries:
            scores = self._unit @ self._unit[q]
            exact = {int(i) for i in top_k_from_scores(scores, k, exclude=int(q))}
            approx = {i for i, _ in self.search(self._unit[q], k, exclude=int(q))}
            hits += len(exact & approx)
        return hits / (len(queries) * k)

    def bench_query_s(self, vector: np.ndarray, k: int, *, repeats: int = 10) -> float:
        """Best-of-``repeats`` wall time of one :meth:`search` call."""
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            self.search(vector, k)
            best = min(best, time.perf_counter() - started)
        return best

    def stats(self) -> dict[str, float | int]:
        """Occupancy summary for logs and ``/metrics`` style snapshots."""
        bucket_sizes = [len(b) for table in self._tables for b in table.values()]
        return {
            "size": self.size,
            "tables": self.n_tables,
            "bits": self.n_bits,
            "buckets": len(bucket_sizes),
            "mean_bucket": float(np.mean(bucket_sizes)) if bucket_sizes else 0.0,
            "max_bucket": max(bucket_sizes) if bucket_sizes else 0,
            "model_version": self.model_version,
        }
