"""Request micro-batching: coalesce concurrent scoring into one GEMM.

At low request rates, scoring one request at a time is optimal — there is
nothing to coalesce and any wait is pure added latency.  Under concurrency
the picture flips: N threads each running a tiny fold-in fight over the
GIL and launch N separate numpy kernels, while a single batched
``batch_next_product_proba`` call scores all N histories in one GEMM.
:class:`MicroBatcher` switches between the two regimes automatically:

* a request arriving while the batcher is **idle** (nothing queued,
  nothing executing) runs the single-request path immediately — zero
  added latency at low RPS, answers bit-identical to an unbatched
  service;
* requests arriving while work is in flight queue up; a collector thread
  drains them into batches of up to ``batch_max``, waiting at most the
  batching window — and never past any queued request's deadline
  allowance (``wait_fraction`` of its budget), so a request never burns
  its deadline waiting for batch-mates;
* a drained batch of one runs the single-request path (bit-identical by
  construction); larger batches run the batched ladder walk under the
  *minimum* remaining budget of their members;
* if the batched path fails for any reason, every member **individually**
  falls back to the single-request path under its own remaining budget —
  a batch failure degrades per-request through the ladder and never takes
  batch-mates down with it.

The returned :class:`BatchedAnswer` reports which path answered
(``single`` or ``batched``), the batch size, and the queue wait, feeding
the service's audit trail and the ``serve.path{...}`` counters the bench
harness uses to prove coalescing actually happened.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.logging import get_logger

__all__ = ["BatchedAnswer", "MicroBatcher"]

#: Single-request scorer: (history, threshold, top_n, deadline_s) -> result.
SingleScorer = Callable[[list[int], float | None, int, float], object]
#: Batched scorer: (histories, thresholds, top_ns, budget_s) -> results.
BatchScorer = Callable[
    [list[list[int]], list[float | None], list[int], float], list[object]
]

#: Floor budget handed to fallback scoring when a deadline is nearly spent;
#: the ladder's popularity floor still answers inside it.
_MIN_BUDGET_S = 1e-4


@dataclass(frozen=True)
class BatchedAnswer:
    """One request's result plus the coalescing audit trail."""

    result: object
    path: str  # "single" | "batched"
    batch_size: int
    waited_ms: float


@dataclass
class _Pending:
    """A queued request waiting to be drained into a batch."""

    history: list[int]
    threshold: float | None
    top_n: int
    deadline_s: float
    enqueued: float
    #: Collection must start by this instant, whatever the window says.
    latest_start: float
    done: threading.Event = field(default_factory=threading.Event)
    result: object | None = None
    error: BaseException | None = None
    path: str = "single"
    batch_size: int = 1
    waited_s: float = 0.0


class MicroBatcher:
    """Window-bounded, deadline-aware coalescing of scoring requests.

    Parameters
    ----------
    score_single:
        The unbatched scoring path (the ladder's per-request walk).
    score_batch:
        The batched scoring path; must return one result per history, in
        order.
    window_s:
        Longest a batch collects before executing.
    batch_max:
        Hard cap on batch size; a full batch executes immediately.
    wait_fraction:
        Fraction of a request's deadline budget it may spend waiting for
        batch-mates (the rest is reserved for execution).
    clock:
        Monotonic seconds source (injectable for tests).
    """

    def __init__(
        self,
        score_single: SingleScorer,
        score_batch: BatchScorer,
        *,
        window_s: float = 0.002,
        batch_max: int = 16,
        wait_fraction: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if not 0.0 < wait_fraction <= 1.0:
            raise ValueError(f"wait_fraction must be in (0, 1], got {wait_fraction}")
        self._score_single = score_single
        self._score_batch = score_batch
        self.window_s = window_s
        self.batch_max = batch_max
        self.wait_fraction = wait_fraction
        self._clock = clock
        self._cond = threading.Condition()
        self._queue: deque[_Pending] = deque()
        self._inflight = 0  # executions in progress (direct + batched)
        self._closed = False
        self._log = get_logger("serve.batch")
        self._collector = threading.Thread(
            target=self._collect_loop, name="serve-batch-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Submission (request threads)
    # ------------------------------------------------------------------
    def submit(
        self,
        history: list[int],
        threshold: float | None,
        top_n: int,
        deadline_s: float,
    ) -> BatchedAnswer:
        """Score one request, coalescing with concurrent arrivals.

        Blocks until the result is ready; total time is bounded by the
        queue wait allowance plus the request's own deadline budget.
        """
        now = self._clock()
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            if self._inflight == 0 and not self._queue:
                # Idle: the single-request fall-through, zero added latency.
                self._inflight += 1
                direct = True
            else:
                direct = False
                pending = _Pending(
                    history=list(history),
                    threshold=threshold,
                    top_n=top_n,
                    deadline_s=deadline_s,
                    enqueued=now,
                    latest_start=now
                    + min(self.window_s, self.wait_fraction * deadline_s),
                )
                self._queue.append(pending)
                self._cond.notify_all()
        if direct:
            try:
                result = self._score_single(list(history), threshold, top_n, deadline_s)
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()
            return BatchedAnswer(result, "single", 1, 0.0)
        # Generous timeout: the collector starts the batch within the wait
        # allowance and execution is deadline-bounded; the margin only
        # matters if the collector thread itself is wedged.
        if not pending.done.wait(timeout=self.window_s + deadline_s + 30.0):
            self._log.error("batch collector unresponsive; scoring request solo")
            with self._cond:
                try:
                    self._queue.remove(pending)
                except ValueError:
                    pass  # already drained; keep waiting for its result
            if not pending.done.is_set():
                remaining = max(
                    deadline_s - (self._clock() - pending.enqueued), _MIN_BUDGET_S
                )
                pending.result = self._score_single(
                    list(history), threshold, top_n, remaining
                )
                pending.done.set()
            pending.done.wait()
        if pending.error is not None:
            raise pending.error
        return BatchedAnswer(
            pending.result, pending.path, pending.batch_size, pending.waited_s * 1000.0
        )

    # ------------------------------------------------------------------
    # Collection (dedicated thread)
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed:
                    for pending in self._queue:
                        pending.error = RuntimeError("MicroBatcher closed")
                        pending.done.set()
                    self._queue.clear()
                    return
                # Collect until the batch fills or the earliest wait
                # allowance among queued requests expires.
                while len(self._queue) < self.batch_max:
                    now = self._clock()
                    wake = min(p.latest_start for p in self._queue)
                    if now >= wake:
                        break
                    self._cond.wait(timeout=min(wake - now, 0.05))
                batch = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), self.batch_max))
                ]
                self._inflight += 1
            try:
                self._execute(batch)
            except BaseException:  # noqa: BLE001 - collector must survive
                self._log.error("batch execution failed unexpectedly", exc_info=True)
                for pending in batch:
                    if not pending.done.is_set():
                        pending.error = RuntimeError("batch execution failed")
                        pending.done.set()
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    def _remaining(self, pending: _Pending, now: float) -> float:
        return pending.deadline_s - (now - pending.enqueued)

    def _execute(self, batch: list[_Pending]) -> None:
        now = self._clock()
        for pending in batch:
            pending.waited_s = now - pending.enqueued
        if len(batch) == 1:
            # A lone request takes the exact single-request path: batch-of-1
            # is bit-identical to an unbatched service by construction.
            self._solo(batch[0])
            return
        budget = max(min(self._remaining(p, now) for p in batch), _MIN_BUDGET_S)
        results: list[object] | None = None
        try:
            results = self._score_batch(
                [list(p.history) for p in batch],
                [p.threshold for p in batch],
                [p.top_n for p in batch],
                budget,
            )
            if results is not None and len(results) != len(batch):
                raise RuntimeError(
                    f"batch scorer returned {len(results)} results for "
                    f"{len(batch)} requests"
                )
        except BaseException:  # noqa: BLE001 - degrade per-request below
            self._log.warning(
                "batched scoring failed; degrading %d requests to the "
                "single-request path",
                len(batch),
                exc_info=True,
            )
            results = None
        if results is not None:
            for pending, result in zip(batch, results):
                pending.result = result
                pending.path = "batched"
                pending.batch_size = len(batch)
                pending.done.set()
            return
        # Batch failure never fails batch-mates: each member degrades
        # through the ladder on its own remaining budget.
        for pending in batch:
            self._solo(pending)

    def _solo(self, pending: _Pending) -> None:
        remaining = max(
            self._remaining(pending, self._clock()), _MIN_BUDGET_S
        )
        try:
            pending.result = self._score_single(
                list(pending.history), pending.threshold, pending.top_n, remaining
            )
            pending.path = "single"
            pending.batch_size = 1
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            pending.error = exc
        finally:
            pending.done.set()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the collector; queued requests fail, new submits raise."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._collector.join(timeout=5.0)

    def stats(self) -> dict[str, int]:
        """Point-in-time queue depth and in-flight executions."""
        with self._cond:
            return {"queued": len(self._queue), "inflight": self._inflight}
