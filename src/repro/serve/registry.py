"""Model registry with validated, atomic hot-swap.

The serving layer never points at a model object directly; it resolves
models through this registry on every request.  A *swap* stages a
candidate (an in-memory model or a saved artifact path), validates it
against a held-out reference slice, and only then atomically replaces the
serving record.  Validation is :class:`~repro.app.drift.DriftMonitor`-
gated: the candidate's perplexity on the reference slice must be finite
and within ``perplexity_tolerance`` of the *currently serving* model's
reference perplexity (the monitor's baseline).  A candidate that fails to
load (corrupt artifact), is unfitted, disagrees on vocabulary, or flunks
the perplexity gate is rejected — the previous model keeps serving
throughout, bit-identically, and the rejection is recorded in the swap
history.

With a :class:`~repro.replay.canary.CanaryGate` installed, validation
extends from "is the artifact sane" to "does it survive yesterday's
traffic": the candidate is shadow-scored against the incumbent on
replayed time-sliced windows, and a candidate whose windowed quality or
recommendation distribution regresses is rejected on the same path —
the admin endpoint surfaces it as a 409 with the canary verdict
attached, and the fleet's all-or-nothing generation apply (which runs
:meth:`ModelRegistry.validate` per slot) inherits the gate for free.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.app.drift import DriftMonitor
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel
from repro.obs.logging import get_logger
from repro.recommend.recommender import ThresholdRecommender
from repro.replay.canary import CanaryGate
from repro.runtime import faults
from repro.serve.admission import AdmissionError

__all__ = ["SwapReport", "ModelRegistry"]


@dataclass(frozen=True)
class SwapReport:
    """Outcome of one staged swap attempt."""

    name: str
    status: str  # promoted | rejected
    reason: str
    version: int
    candidate_perplexity: float | None = None
    baseline_perplexity: float | None = None
    tolerance: float | None = None
    #: Registry-wide monotonic generation after this attempt; bumped only
    #: by promotions, so it names the model era an answer came from.
    generation: int = 0
    #: Canary verdict summary when a canary gate ran for this attempt.
    canary: dict[str, object] | None = None

    def as_dict(self) -> dict[str, object]:
        """JSON-encodable view for the admin endpoint response."""
        payload: dict[str, object] = {
            "name": self.name,
            "status": self.status,
            "reason": self.reason,
            "version": self.version,
            "candidate_perplexity": self.candidate_perplexity,
            "baseline_perplexity": self.baseline_perplexity,
            "tolerance": self.tolerance,
            "generation": self.generation,
        }
        if self.canary is not None:
            payload["canary"] = self.canary
        return payload


@dataclass(frozen=True)
class _Record:
    """One atomically-swapped serving slot."""

    model: GenerativeModel
    recommender: ThresholdRecommender
    monitor: DriftMonitor
    version: int


class ModelRegistry:
    """Named serving slots, each hot-swappable behind validation.

    Parameters
    ----------
    reference:
        Held-out slice used as the validation yardstick for every swap.
    perplexity_tolerance:
        A candidate may be at most this factor worse than the serving
        model on the reference slice.
    threshold:
        Default phi for the recommenders built around serving models.
    canary:
        Optional :class:`~repro.replay.canary.CanaryGate`; when set,
        every swap/validate additionally shadow-scores the candidate
        against the incumbent on replayed traffic.
    clock:
        Injectable seconds source recorded with swaps (tests).
    """

    def __init__(
        self,
        reference: Corpus,
        *,
        perplexity_tolerance: float = 1.25,
        threshold: float = 0.1,
        canary: CanaryGate | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if perplexity_tolerance < 1.0:
            raise ValueError("perplexity_tolerance must be >= 1")
        self.reference = reference
        self.perplexity_tolerance = perplexity_tolerance
        self.threshold = threshold
        self.canary = canary
        self._clock = clock
        self._records: dict[str, _Record] = {}
        self._swap_lock = threading.Lock()
        self.history: list[SwapReport] = []
        self._generation = 0
        self._subscribers: list[Callable[[SwapReport], None]] = []
        self._log = get_logger("serve.registry")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Registered slot names."""
        return sorted(self._records)

    def _record(self, name: str) -> _Record:
        try:
            return self._records[name]
        except KeyError:
            raise KeyError(f"no model registered under {name!r}") from None

    def model(self, name: str) -> GenerativeModel:
        """The currently serving model of a slot."""
        return self._record(name).model

    def recommender(self, name: str) -> ThresholdRecommender:
        """The recommender wrapping the currently serving model."""
        return self._record(name).recommender

    def monitor(self, name: str) -> DriftMonitor:
        """The drift monitor watching the currently serving model."""
        return self._record(name).monitor

    def version(self, name: str) -> int:
        """Monotonic version of a slot; bumped on every promotion."""
        return self._record(name).version

    @property
    def generation(self) -> int:
        """Registry-wide monotonic model generation.

        Bumped on every install and every promotion — never on a
        rejection.  Consumers that must not outlive a model era (the top-k
        result cache, the ANN index) key or stamp their state with this
        value, so a hot-swap atomically orphans anything derived from the
        previous serving set.
        """
        return self._generation

    def subscribe(self, callback: Callable[[SwapReport], None]) -> None:
        """Register a callback fired after every successful promotion.

        Callbacks run synchronously inside the swap (before the admin
        response is returned), so cache invalidation and index refreshes
        are complete by the time the promotion is acknowledged.  Callback
        exceptions are logged, never propagated — a misbehaving consumer
        cannot turn a valid promotion into a failure.
        """
        self._subscribers.append(callback)

    def _notify(self, report: SwapReport) -> None:
        for callback in list(self._subscribers):
            try:
                callback(report)
            except Exception:  # noqa: BLE001 - consumers must not break swaps
                self._log.error(
                    "swap subscriber %r failed for %s v%d",
                    callback,
                    report.name,
                    report.version,
                    exc_info=True,
                )

    def serving_perplexity(self, name: str) -> float:
        """The serving model's perplexity on the reference slice."""
        return self._record(name).monitor.reference_perplexity

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Version/perplexity view of every slot for health endpoints."""
        return {
            name: {
                "version": record.version,
                "model": type(record.model).__name__,
                "reference_perplexity": record.monitor.reference_perplexity,
            }
            for name, record in sorted(self._records.items())
        }

    # ------------------------------------------------------------------
    # Install / swap
    # ------------------------------------------------------------------
    def _build_record(self, model: GenerativeModel, version: int) -> _Record:
        monitor = DriftMonitor(
            model, self.reference, perplexity_tolerance=self.perplexity_tolerance
        )
        return _Record(
            model=model,
            recommender=ThresholdRecommender(model, threshold=self.threshold),
            monitor=monitor,
            version=version,
        )

    def install(self, name: str, model: GenerativeModel) -> None:
        """Install the initial model of a slot (validated, version 1)."""
        if name in self._records:
            raise ValueError(f"slot {name!r} already installed; use swap()")
        if not isinstance(model, GenerativeModel) or not model.is_fitted:
            raise ValueError(f"slot {name!r} needs a fitted GenerativeModel")
        if model.vocab_size != self.reference.n_products:
            raise ValueError(
                f"model vocabulary {model.vocab_size} does not match the "
                f"reference slice's {self.reference.n_products} products"
            )
        self._records[name] = self._build_record(model, version=1)
        self._generation += 1

    def _load_candidate(
        self,
        source: GenerativeModel | str | Path,
        mmap_mode: str | None = None,
    ) -> GenerativeModel:
        if isinstance(source, GenerativeModel):
            return source
        return GenerativeModel.load_any(source, mmap_mode=mmap_mode)

    def _gate(
        self,
        name: str,
        current: _Record,
        source: GenerativeModel | str | Path,
        mmap_mode: str | None,
    ) -> tuple[GenerativeModel | None, str, float | None, dict[str, object] | None]:
        """Stage + validate a candidate without committing.

        Returns ``(candidate, reason, perplexity, canary)`` — candidate
        is None when any gate fails, with the rejection reason; canary
        is the verdict summary when the canary gate ran.
        """
        baseline = current.monitor.reference_perplexity
        tolerance = self.perplexity_tolerance
        try:
            # The injection site lets the load harness stall or crash a
            # swap mid-validation; both degrade to a rejection.
            faults.inject(f"serve/swap/{name}")
            candidate = self._load_candidate(source, mmap_mode)
        except (ValueError, TypeError, faults.InjectedFault) as exc:
            return None, f"stage failed: {exc}", None, None
        if not isinstance(candidate, GenerativeModel) or not candidate.is_fitted:
            return None, "candidate is not a fitted GenerativeModel", None, None
        if candidate.vocab_size != self.reference.n_products:
            return None, (
                f"candidate vocabulary {candidate.vocab_size} does not match "
                f"the reference slice's {self.reference.n_products} products"
            ), None, None
        try:
            candidate_ppl = candidate.perplexity(self.reference)
        except Exception as exc:  # noqa: BLE001 - degrade, never propagate
            return None, (
                f"perplexity evaluation failed: {type(exc).__name__}: {exc}"
            ), None, None
        if not math.isfinite(candidate_ppl):
            return None, (
                f"candidate perplexity on the reference slice is non-finite "
                f"({candidate_ppl})"
            ), candidate_ppl, None
        if candidate_ppl > baseline * tolerance:
            return None, (
                f"candidate perplexity {candidate_ppl:.3f} exceeds the gate "
                f"{baseline:.3f} * {tolerance} = {baseline * tolerance:.3f}"
            ), candidate_ppl, None
        canary_info: dict[str, object] | None = None
        if self.canary is not None:
            try:
                verdict = self.canary.evaluate(current.model, candidate)
            except Exception as exc:  # noqa: BLE001 - degrade, never propagate
                return None, (
                    f"canary evaluation failed: {type(exc).__name__}: {exc}"
                ), candidate_ppl, None
            canary_info = verdict.as_dict()
            if not verdict.passed:
                return None, (
                    f"canary rejected ({verdict.reason}): {verdict.detail}"
                ), candidate_ppl, canary_info
        return candidate, "validation passed", candidate_ppl, canary_info

    def validate(
        self,
        name: str,
        source: GenerativeModel | str | Path,
        *,
        mmap_mode: str | None = None,
    ) -> tuple[GenerativeModel | None, str]:
        """Run every swap gate against a candidate WITHOUT committing.

        Returns ``(candidate, reason)``: the staged (possibly mmap'd)
        model ready to pass to :meth:`swap` when every gate passed, or
        ``(None, reason)`` on rejection.  The fleet's artifact watcher
        uses this to make a multi-slot generation all-or-nothing —
        every slot is validated before any slot is promoted, so a
        generation with one bad artifact never leaves a worker serving
        a torn mix of old and new models.
        """
        if name not in self._records:
            raise AdmissionError(404, "unknown_model", f"no serving slot named {name!r}")
        with self._swap_lock:
            candidate, reason, _ppl, _canary = self._gate(
                name, self._records[name], source, mmap_mode
            )
        return candidate, reason

    def swap(
        self,
        name: str,
        source: GenerativeModel | str | Path,
        *,
        mmap_mode: str | None = None,
    ) -> SwapReport:
        """Validate a staged candidate and atomically promote it.

        Never raises for a bad candidate: every failure mode yields a
        ``rejected`` report and the previous model keeps serving.  Unknown
        slot names raise :class:`AdmissionError` (the caller's fault).
        ``mmap_mode="r"`` maps the candidate's weights read-only in place
        (the fleet's shared-page path) instead of copying them.
        """
        if name not in self._records:
            raise AdmissionError(404, "unknown_model", f"no serving slot named {name!r}")
        with self._swap_lock:
            current = self._records[name]
            baseline = current.monitor.reference_perplexity
            tolerance = self.perplexity_tolerance

            def rejected(
                reason: str,
                candidate_ppl: float | None = None,
                canary: dict[str, object] | None = None,
            ) -> SwapReport:
                report = SwapReport(
                    name=name,
                    status="rejected",
                    reason=reason,
                    version=current.version,
                    candidate_perplexity=candidate_ppl,
                    baseline_perplexity=baseline,
                    tolerance=tolerance,
                    generation=self._generation,
                    canary=canary,
                )
                self.history.append(report)
                self._log.warning(
                    "hot-swap of %s rejected: %s (serving v%d unchanged)",
                    name,
                    reason,
                    current.version,
                )
                return report

            candidate, reason, candidate_ppl, canary_info = self._gate(
                name, current, source, mmap_mode
            )
            if candidate is None:
                return rejected(reason, candidate_ppl, canary_info)
            try:
                record = self._build_record(candidate, version=current.version + 1)
            except Exception as exc:  # noqa: BLE001 - roll back, never propagate
                return rejected(f"promotion failed, rolled back: {type(exc).__name__}: {exc}",
                                candidate_ppl)
            self._records[name] = record
            self._generation += 1
            report = SwapReport(
                name=name,
                status="promoted",
                reason="validation passed",
                version=record.version,
                candidate_perplexity=candidate_ppl,
                baseline_perplexity=baseline,
                tolerance=tolerance,
                generation=self._generation,
                canary=canary_info,
            )
            self.history.append(report)
            self._log.info(
                "hot-swap of %s promoted to v%d, generation %d "
                "(perplexity %.3f vs baseline %.3f)",
                name,
                record.version,
                self._generation,
                candidate_ppl,
                baseline,
            )
            self._notify(report)
            return report
