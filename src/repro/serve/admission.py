"""Admission control: validate every payload before it can reach a model.

Company-recommendation inputs arrive dirty — unknown product categories,
malformed D-U-N-S identifiers, absurdly long install-base histories — and
the service's contract is that *no* unvalidated value ever reaches a model.
:class:`AdmissionPolicy` normalises a raw request payload into a
:class:`ValidatedRequest` whose history tokens are guaranteed to lie inside
the serving vocabulary, or raises :class:`AdmissionError` with an HTTP
status and machine-readable reason.  Rejected payloads are recorded in the
:class:`QuarantineLog` for offline inspection.

Entity resolution rides on top of schema validation: with an
:class:`~repro.data.linkage.EntityResolver` installed, ``/similar``
accepts a ``name`` field and resolves aliased/misspelled company names to
a D-U-N-S (ambiguous names are rejected with ``ambiguous_name`` and the
best candidate attached — routed to quarantine, never silently linked);
with a merger alias map, a D-U-N-S absorbed by an M&A event resolves to
its surviving ultimate instead of 404ing, so install histories do not
fragment across the merger.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.data.duns import is_valid_duns
from repro.data.linkage import EntityResolver

__all__ = [
    "AdmissionError",
    "ValidatedRequest",
    "SimilarRequest",
    "AdmissionPolicy",
    "QuarantineLog",
]


class AdmissionError(Exception):
    """A rejected payload: carries the HTTP status and a reason code.

    ``status`` is always a 4xx — admission failures are the caller's
    fault and must never surface as a 5xx.
    """

    def __init__(self, status: int, reason: str, detail: str) -> None:
        if not 400 <= status < 500:
            raise ValueError(f"admission failures must map to 4xx, got {status}")
        super().__init__(detail)
        self.status = status
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class ValidatedRequest:
    """A recommendation request that passed admission.

    ``history`` tokens are ints in ``[0, vocab_size)``; nothing outside
    the vocabulary survives validation.
    """

    history: tuple[int, ...]
    top_n: int
    threshold: float | None
    deadline_s: float
    duns: str | None = None
    raw_fields: tuple[str, ...] = field(default=())


@dataclass(frozen=True)
class SimilarRequest:
    """A validated ``/similar`` request, with its resolution provenance.

    ``resolution`` is ``None`` for a plain valid D-U-N-S lookup; for a
    merger-aliased D-U-N-S or a name resolved through the
    :class:`~repro.data.linkage.EntityResolver` it records how the
    identity was established (``via``, ``requested``, score, reason) so
    responses can carry the provenance back to the caller.
    """

    duns: str
    k: int
    resolution: dict[str, Any] | None = None


class QuarantineLog:
    """Ring buffer (plus optional JSONL file) of rejected payloads.

    Every rejection is kept in memory (up to ``capacity`` entries, oldest
    dropped) and, when ``path`` is given, appended as one JSON document per
    line so operators can replay or inspect bad traffic offline.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        capacity: int = 256,
        max_payload_chars: int = 2048,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.path = Path(path) if path is not None else None
        self.max_payload_chars = max_payload_chars
        self._clock = clock
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._total = 0
        self._lock = threading.Lock()

    def record(self, reason: str, detail: str, payload: Any) -> None:
        """Quarantine one rejected payload."""
        try:
            rendered = json.dumps(payload, default=repr)
        except (TypeError, ValueError):
            rendered = repr(payload)
        entry = {
            "ts": round(self._clock(), 6),
            "reason": reason,
            "detail": detail,
            "payload": rendered[: self.max_payload_chars],
        }
        with self._lock:
            self._entries.append(entry)
            self._total += 1
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")

    @property
    def total(self) -> int:
        """Rejections recorded over the log's lifetime."""
        with self._lock:
            return self._total

    def entries(self) -> list[dict[str, Any]]:
        """The retained (most recent) quarantined entries, oldest first."""
        with self._lock:
            return list(self._entries)


class AdmissionPolicy:
    """Schema + vocabulary validation of recommendation payloads.

    Parameters
    ----------
    vocabulary:
        Category names in token order — the only values a history may
        contain (entries may also be integer token ids in range).
    max_history:
        Histories longer than this are rejected with 413.
    default_top_n / max_top_n:
        Bounds on the ``top_n`` request field.
    default_deadline_s / max_deadline_s:
        Bounds on the per-request deadline budget.
    resolver / resolver_duns:
        Optional name resolution: a fitted
        :class:`~repro.data.linkage.EntityResolver` over the serving
        companies' names plus the D-U-N-S aligned with its reference
        indices.  Enables the ``name`` field on ``/similar``.
    aliases:
        Absorbed D-U-N-S → surviving D-U-N-S (merger alias map, e.g.
        from a scenario manifest).  Requests for an absorbed identifier
        resolve to the survivor instead of falling through to 404.
    """

    def __init__(
        self,
        vocabulary: tuple[str, ...],
        *,
        max_history: int = 64,
        default_top_n: int = 5,
        max_top_n: int = 50,
        default_deadline_s: float = 0.25,
        max_deadline_s: float = 5.0,
        resolver: EntityResolver | None = None,
        resolver_duns: Sequence[str] | None = None,
        aliases: Mapping[str, str] | None = None,
    ) -> None:
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        if (resolver is None) != (resolver_duns is None):
            raise ValueError("resolver and resolver_duns must be given together")
        self.vocabulary = tuple(vocabulary)
        self._token = {name: i for i, name in enumerate(self.vocabulary)}
        self.max_history = max_history
        self.default_top_n = default_top_n
        self.max_top_n = max_top_n
        self.default_deadline_s = default_deadline_s
        self.max_deadline_s = max_deadline_s
        self.resolver = resolver
        self._resolver_duns = tuple(resolver_duns) if resolver_duns else ()
        self.aliases = dict(aliases) if aliases else {}

    # ------------------------------------------------------------------
    # Field helpers
    # ------------------------------------------------------------------
    def _require_mapping(self, payload: Any) -> dict[str, Any]:
        if not isinstance(payload, dict):
            raise AdmissionError(
                400, "malformed", f"payload must be a JSON object, got {type(payload).__name__}"
            )
        return payload

    def _token_of(self, entry: Any, position: int) -> int:
        if isinstance(entry, str):
            token = self._token.get(entry)
            if token is None:
                raise AdmissionError(
                    422,
                    "vocabulary",
                    f"history[{position}] category {entry!r} is not in the "
                    f"serving vocabulary of {len(self.vocabulary)} products",
                )
            return token
        if isinstance(entry, bool) or not isinstance(entry, int):
            raise AdmissionError(
                422,
                "schema",
                f"history[{position}] must be a category name or token id, "
                f"got {type(entry).__name__}",
            )
        if not 0 <= entry < len(self.vocabulary):
            raise AdmissionError(
                422,
                "vocabulary",
                f"history[{position}] token {entry} outside vocabulary of "
                f"size {len(self.vocabulary)}",
            )
        return entry

    def _deadline_of(self, payload: dict[str, Any]) -> float:
        raw = payload.get("deadline_ms")
        if raw is None:
            return self.default_deadline_s
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise AdmissionError(422, "schema", "deadline_ms must be a number")
        deadline_s = float(raw) / 1000.0
        if not deadline_s > 0:
            raise AdmissionError(422, "schema", "deadline_ms must be positive")
        return min(deadline_s, self.max_deadline_s)

    def _top_n_of(self, payload: dict[str, Any]) -> int:
        raw = payload.get("top_n")
        if raw is None:
            return self.default_top_n
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise AdmissionError(422, "schema", "top_n must be an integer")
        if not 1 <= raw <= self.max_top_n:
            raise AdmissionError(
                422, "schema", f"top_n must be in [1, {self.max_top_n}], got {raw}"
            )
        return raw

    def _threshold_of(self, payload: dict[str, Any]) -> float | None:
        raw = payload.get("threshold")
        if raw is None:
            return None
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise AdmissionError(422, "schema", "threshold must be a number")
        if not 0.0 <= float(raw) <= 1.0:
            raise AdmissionError(422, "schema", f"threshold must be in [0, 1], got {raw}")
        return float(raw)

    def _duns_of(self, payload: dict[str, Any], *, required: bool) -> str | None:
        raw = payload.get("duns")
        if raw is None:
            if required:
                raise AdmissionError(422, "schema", "payload requires a 'duns' field")
            return None
        if not isinstance(raw, str):
            raise AdmissionError(422, "schema", "duns must be a string")
        if not is_valid_duns(raw):
            raise AdmissionError(
                422,
                "duns",
                f"duns {raw!r} is not a valid 9-digit identifier with check digit",
            )
        return raw

    def _apply_alias(self, duns: str) -> tuple[str, dict[str, Any] | None]:
        """Follow the merger alias map; returns the surviving identity."""
        survivor = self.aliases.get(duns)
        if survivor is None:
            return duns, None
        return survivor, {
            "via": "merger_alias",
            "requested": duns,
            "reason": "absorbed_by_merger",
        }

    def _resolve_name(self, raw: Any) -> tuple[str, dict[str, Any]]:
        """Resolve a ``name`` field to a D-U-N-S, or reject with a reason."""
        if not isinstance(raw, str):
            raise AdmissionError(422, "schema", "name must be a string")
        if self.resolver is None:
            raise AdmissionError(
                422,
                "name_resolution_disabled",
                "this deployment does not resolve company names; pass 'duns'",
            )
        decision = self.resolver.resolve(raw)
        if decision.status == "resolved":
            assert decision.index is not None
            duns = self._resolver_duns[decision.index]
            return duns, {
                "via": "name",
                "requested": raw,
                "score": round(decision.score, 4),
                "reason": decision.reason,
            }
        if decision.status == "review":
            assert decision.index is not None
            candidate = self._resolver_duns[decision.index]
            raise AdmissionError(
                422,
                "ambiguous_name",
                f"name {raw!r} resolves ambiguously (best candidate "
                f"{candidate} at similarity {decision.score:.3f}); "
                "confirm with an explicit 'duns'",
            )
        raise AdmissionError(
            422,
            "unresolved_name",
            f"name {raw!r} does not match any serving company "
            f"({decision.reason})",
        )

    # ------------------------------------------------------------------
    # Endpoint validators
    # ------------------------------------------------------------------
    def validate_recommend(self, payload: Any) -> ValidatedRequest:
        """Validate a ``/recommend`` payload into a model-safe request."""
        fields = self._require_mapping(payload)
        history_raw = fields.get("history")
        if not isinstance(history_raw, list):
            raise AdmissionError(
                422, "schema", "payload requires a 'history' list of owned products"
            )
        if len(history_raw) > self.max_history:
            raise AdmissionError(
                413,
                "oversized",
                f"history of {len(history_raw)} products exceeds the limit of "
                f"{self.max_history}",
            )
        history = tuple(
            self._token_of(entry, position) for position, entry in enumerate(history_raw)
        )
        duns = self._duns_of(fields, required=False)
        if duns is not None:
            duns, _ = self._apply_alias(duns)
        return ValidatedRequest(
            history=history,
            top_n=self._top_n_of(fields),
            threshold=self._threshold_of(fields),
            deadline_s=self._deadline_of(fields),
            duns=duns,
            raw_fields=tuple(sorted(fields)),
        )

    def validate_similar_detail(self, payload: Any) -> SimilarRequest:
        """Validate a ``/similar`` payload, resolving identity if needed.

        Accepts either a ``duns`` field (merger aliases followed) or,
        when a resolver is configured, a ``name`` field resolved through
        the entity-resolution policy.  The returned request records the
        resolution provenance.
        """
        fields = self._require_mapping(payload)
        raw_k = fields.get("k", 10)
        if isinstance(raw_k, bool) or not isinstance(raw_k, int) or raw_k < 1:
            raise AdmissionError(422, "schema", f"k must be a positive integer, got {raw_k!r}")
        if fields.get("duns") is not None:
            duns = self._duns_of(fields, required=True)
            assert duns is not None
            duns, resolution = self._apply_alias(duns)
            return SimilarRequest(duns=duns, k=raw_k, resolution=resolution)
        if fields.get("name") is not None:
            duns, resolution = self._resolve_name(fields["name"])
            duns, alias_resolution = self._apply_alias(duns)
            if alias_resolution is not None:
                resolution = {**resolution, "merger_alias": alias_resolution["requested"]}
            return SimilarRequest(duns=duns, k=raw_k, resolution=resolution)
        raise AdmissionError(
            422, "schema", "payload requires a 'duns' or 'name' field"
        )

    def validate_similar(self, payload: Any) -> tuple[str, int]:
        """Validate a ``/similar`` payload into ``(duns, k)``."""
        request = self.validate_similar_detail(payload)
        return request.duns, request.k
