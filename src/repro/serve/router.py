"""Shared-nothing HTTP router over a fleet of serving workers.

Two jobs sit in front of a :mod:`repro.serve.fleet` deployment:

* **Routing.**  ``/similar`` is routed by company identity: a
  :class:`ConsistentHashRing` over the shard groups maps each D-U-N-S to
  one shard, so a company's similarity traffic always lands on the same
  replica group and its per-worker caches (top-k LRU, ANN probes) stay
  hot.  ``/recommend`` (and any other POST) fans to the least-loaded
  worker — the router tracks its own in-flight count per worker.  A
  worker that refuses the connection (mid-restart) is retried on the
  next candidate, so a supervisor-restarted worker never surfaces as a
  client-visible error.
* **Aggregation.**  ``GET /metrics`` scrapes every worker's JSON
  snapshot and merges them with
  :func:`repro.obs.metrics.merge_snapshots` (counters summed, fleet
  percentiles as conservative worst-worker bounds), so ``repro obs top``
  and the SLO tooling see the whole fleet through one URL.  ``/healthz``
  and ``/readyz`` aggregate per-worker probes; ``/slo`` nests each
  worker's burn-rate view and unions the firing alerts.

The router is stateless: worker discovery is re-read from the fleet
state dir (with a tiny TTL cache), so restarts that change a worker's
direct port are picked up without reconfiguration.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable, Mapping

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.serve.fleet import WorkerState, read_fleet_state

__all__ = ["ConsistentHashRing", "FleetRouter", "RouterHTTPServer", "start_router"]


class ConsistentHashRing:
    """Deterministic consistent-hash ring with virtual nodes.

    Hash points come from BLAKE2b over the key bytes, so assignments are
    stable across processes, interpreter restarts and ``PYTHONHASHSEED``
    values (``hash()`` is deliberately not used).  With ``vnodes`` virtual
    points per node, adding a node steals roughly ``1/(n+1)`` of the keys
    from the existing nodes and removing one moves only its own keys.
    """

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Insert a node's virtual points; idempotent."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.vnodes):
            point = self._hash(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove a node's virtual points; unknown nodes are a no-op."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        kept = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in kept]
        self._owners = [owner for _, owner in kept]

    def lookup(self, key: str) -> str:
        """The node owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise LookupError("the ring has no nodes")
        index = bisect.bisect(self._points, self._hash(key)) % len(self._points)
        return self._owners[index]

    def assignments(self, keys: Iterable[str]) -> dict[str, str]:
        """Key → owning node for a batch of keys."""
        return {key: self.lookup(key) for key in keys}


class _WorkerUnavailable(Exception):
    """A candidate worker refused the connection (likely mid-restart)."""


class FleetRouter:
    """Stateless routing + aggregation core (transport-agnostic).

    Parameters
    ----------
    workers_provider:
        Returns the current fleet view (``WorkerState`` list); typically
        a closure over :func:`repro.serve.fleet.read_fleet_state`.
    shards:
        Number of shard groups the ring routes ``/similar`` over.
    refresh_ttl_s:
        Discovery cache lifetime; the provider is re-polled after this.
    timeout_s:
        Per-forward upstream timeout.
    """

    def __init__(
        self,
        workers_provider: Callable[[], list[WorkerState]],
        *,
        shards: int = 1,
        vnodes: int = 64,
        refresh_ttl_s: float = 0.25,
        timeout_s: float = 30.0,
        retries: int = 2,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.workers_provider = workers_provider
        self.shards = shards
        self.ring = ConsistentHashRing(
            (self.shard_name(shard) for shard in range(shards)), vnodes=vnodes
        )
        self.refresh_ttl_s = refresh_ttl_s
        self.timeout_s = timeout_s
        self.retries = retries
        self.metrics = MetricsRegistry()
        self._cache: list[WorkerState] = []
        self._cached_at = 0.0
        self._inflight: dict[int, int] = {}
        self._lock = threading.Lock()
        self._log = get_logger("serve.router")

    @staticmethod
    def shard_name(shard: int) -> str:
        return f"shard-{shard}"

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def workers(self) -> list[WorkerState]:
        now = time.monotonic()
        with self._lock:
            if self._cache and now - self._cached_at < self.refresh_ttl_s:
                return list(self._cache)
        fresh = self.workers_provider()
        with self._lock:
            self._cache = list(fresh)
            self._cached_at = now
        return list(fresh)

    def shard_of(self, duns: str) -> int:
        """The shard group a company identity belongs to."""
        return int(self.ring.lookup(str(duns)).rsplit("-", 1)[1])

    def _candidates(self, path: str, body: bytes | None) -> list[WorkerState]:
        """Routing order for one request: shard-affine, then least-loaded."""
        workers = self.workers()
        if not workers:
            return []
        pool = workers
        if path == "/similar" and body:
            try:
                duns = json.loads(body).get("duns")
            except (ValueError, AttributeError):
                duns = None
            if isinstance(duns, str) and duns:
                shard = self.shard_of(duns)
                affine = [w for w in workers if w.shard == shard]
                if affine:
                    pool = affine
                self.metrics.counter(
                    "router.sharded", {"shard": self.shard_name(shard)}
                ).inc()
        with self._lock:
            loads = dict(self._inflight)
        return sorted(pool, key=lambda w: (loads.get(w.index, 0), w.index))

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _forward_once(
        self,
        worker: WorkerState,
        method: str,
        path: str,
        body: bytes | None,
        headers: Mapping[str, str],
    ) -> tuple[int, bytes, dict[str, str]]:
        request = urllib.request.Request(
            worker.direct_url + path,
            data=body,
            method=method,
            headers=dict(headers),
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return resp.status, resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read(), dict(exc.headers)
        except (urllib.error.URLError, OSError, ConnectionError) as exc:
            raise _WorkerUnavailable(str(exc)) from exc

    def forward(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: Mapping[str, str],
    ) -> tuple[int, bytes, dict[str, str]]:
        """Route one request to the fleet; retries across candidates.

        A connection-refused candidate (worker mid-restart) is skipped
        and the next-least-loaded worker tried, so a supervisor restart
        under load never becomes a client-visible failure.  With no
        reachable worker at all the router sheds with 503 + Retry-After.
        """
        candidates = self._candidates(path, body)
        attempts = candidates[: self.retries + 1] if candidates else []
        for worker in attempts:
            with self._lock:
                self._inflight[worker.index] = self._inflight.get(worker.index, 0) + 1
            try:
                status, payload, resp_headers = self._forward_once(
                    worker, method, path, body, headers
                )
                self.metrics.counter(
                    "router.forwarded", {"worker": str(worker.index)}
                ).inc()
                return status, payload, resp_headers
            except _WorkerUnavailable as exc:
                self.metrics.counter(
                    "router.unreachable", {"worker": str(worker.index)}
                ).inc()
                self._log.warning(
                    "worker %d unreachable (%s); trying next candidate",
                    worker.index,
                    exc,
                )
                with self._lock:
                    self._cache = []  # force re-discovery: ports may have moved
            finally:
                with self._lock:
                    self._inflight[worker.index] = max(
                        0, self._inflight.get(worker.index, 1) - 1
                    )
        self.metrics.counter("router.no_backend").inc()
        payload = json.dumps(
            {"error": "unavailable", "detail": "no serving worker reachable"}
        ).encode("utf-8")
        return 503, payload, {"Retry-After": "1"}

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _scrape(self, worker: WorkerState, path: str) -> dict | None:
        request = urllib.request.Request(
            worker.direct_url + path, headers={"Accept": "application/json"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                return json.loads(resp.read())
        except (urllib.error.URLError, OSError, ValueError):
            return None

    def aggregate_metrics(self) -> dict:
        """Fleet-level /metrics: merged instruments + per-worker detail."""
        workers = self.workers()
        snapshots: dict[int, dict] = {}
        for worker in workers:
            snap = self._scrape(worker, "/metrics")
            if snap is not None:
                snapshots[worker.index] = snap
        merged = merge_snapshots(list(snapshots.values()))
        router_counters = self.metrics.snapshot()["counters"]
        merged["router"] = {"counters": router_counters}
        merged["per_worker"] = {
            str(index): {
                section: snap.get(section)
                for section in ("models", "breakers", "quarantine", "flight", "tiers")
                if section in snap
            }
            for index, snap in sorted(snapshots.items())
        }
        merged["fleet"] = {
            "workers": [w.as_dict() for w in workers],
            "shards": self.shards,
            "scraped": len(snapshots),
        }
        return merged

    def aggregate_health(self, probe: str) -> tuple[int, dict]:
        """Fleet /healthz (alive if any worker is) or /readyz (all ready)."""
        workers = self.workers()
        per_worker: dict[str, dict] = {}
        healthy = 0
        for worker in workers:
            result = self._scrape(worker, probe)
            ok = result is not None and (
                result.get("status") == "alive" or result.get("ready") is True
            )
            healthy += 1 if ok else 0
            per_worker[str(worker.index)] = {
                "ok": ok,
                "pid": worker.pid,
                "shard": worker.shard,
                "generation": worker.generation,
                **({"detail": result} if result is not None else {}),
            }
        if probe == "/readyz":
            status = 200 if workers and healthy == len(workers) else 503
        else:
            status = 200 if healthy >= 1 else 503
        return status, {
            "fleet": probe.lstrip("/"),
            "healthy": healthy,
            "workers": len(workers),
            "per_worker": per_worker,
        }

    def aggregate_slo(self) -> dict:
        """Per-worker SLO views with the firing alerts unioned."""
        alerts: set[str] = set()
        per_worker: dict[str, dict] = {}
        for worker in self.workers():
            view = self._scrape(worker, "/slo")
            if view is None:
                continue
            per_worker[str(worker.index)] = view
            alerts.update(view.get("alerts", []))
        return {"alerts": sorted(alerts), "per_worker": per_worker}

    def topology(self) -> dict:
        """The /fleet view: workers, shard map, ring parameters."""
        workers = self.workers()
        return {
            "workers": [w.as_dict() for w in workers],
            "shards": self.shards,
            "vnodes": self.ring.vnodes,
            "shard_groups": {
                self.shard_name(shard): [
                    w.index for w in workers if w.shard == shard
                ]
                for shard in range(self.shards)
            },
        }


class _RouterHandler(BaseHTTPRequestHandler):
    """HTTP shell translating requests into :class:`FleetRouter` calls."""

    server_version = "repro-router/1"
    protocol_version = "HTTP/1.1"

    @property
    def router(self) -> FleetRouter:
        return self.server.router  # type: ignore[attr-defined]

    def _send(
        self,
        status: int,
        payload: bytes,
        headers: Mapping[str, str] | None = None,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            if name.lower() in ("content-length", "content-type", "connection",
                                "transfer-encoding", "server", "date"):
                continue
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, body: dict) -> None:
        self._send(status, json.dumps(body, sort_keys=True).encode("utf-8"))

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        path = self.path.partition("?")[0]
        try:
            if path == "/metrics":
                self._send_json(200, self.router.aggregate_metrics())
            elif path in ("/healthz", "/readyz"):
                status, body = self.router.aggregate_health(path)
                self._send_json(status, body)
            elif path == "/slo":
                self._send_json(200, self.router.aggregate_slo())
            elif path == "/fleet":
                self._send_json(200, self.router.topology())
            else:
                # Anything else (admin/debug etc.) goes to one worker.
                status, payload, headers = self.router.forward(
                    "GET", self.path, None, dict(self.headers.items())
                )
                self._send(status, payload, headers,
                           headers.get("Content-Type", "application/json"))
        except Exception:  # noqa: BLE001 - the router itself must not 5xx-leak
            get_logger("serve.router").error("router GET failed", exc_info=True)
            self._send_json(503, {"error": "unavailable", "detail": "router error"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        try:
            length = int(self.headers.get("Content-Length", "0") or "0")
        except ValueError:
            length = 0
        body = self.rfile.read(max(0, length)) if length > 0 else None
        try:
            status, payload, headers = self.router.forward(
                "POST", self.path, body, dict(self.headers.items())
            )
            self._send(status, payload, headers,
                       headers.get("Content-Type", "application/json"))
        except Exception:  # noqa: BLE001
            get_logger("serve.router").error("router POST failed", exc_info=True)
            self._send_json(503, {"error": "unavailable", "detail": "router error"})

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        get_logger("serve.router").debug(format, *args)


class RouterHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`FleetRouter`."""

    daemon_threads = True
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], router: FleetRouter) -> None:
        super().__init__(address, _RouterHandler)
        self.router = router


def start_router(
    state_dir: str,
    *,
    shards: int = 1,
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[RouterHTTPServer, threading.Thread]:
    """Start a router over a fleet state dir on a background thread."""
    router = FleetRouter(
        lambda: read_fleet_state(state_dir), shards=shards
    )
    server = RouterHTTPServer((host, port), router)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-router-http", daemon=True
    )
    thread.start()
    return server, thread
