"""Stdlib HTTP transport for the recommendation service.

A thin :class:`~http.server.ThreadingHTTPServer` shell around
:meth:`RecommendationService.handle` — every request thread reads the JSON
body, forwards the request headers (so the core can honour
``X-Request-Id`` and content-negotiate ``/metrics``), dispatches into the
transport-agnostic core, and writes the response payload with whatever
extra headers (``Retry-After``, ``Allow``, ``X-Request-Id``) and content
type the core attached.  No framework, no dependency: the paper's tool is
a deployed service and this layer is what lets the reproduction answer
real sockets.

Transport tuning comes from :class:`~repro.serve.service.ServiceConfig`:
``listen_backlog`` (socketserver's default of 5 resets connections under
bursts), ``reuse_address``, and ``reuse_port`` — SO_REUSEPORT lets every
worker of a pre-fork fleet bind the same port so the kernel spreads
accepts across processes (:mod:`repro.serve.fleet`).  Where SO_REUSEPORT
is unavailable, the fleet passes an already-bound socket instead and the
server adopts it.

The transport also guarantees the accepted socket is closed when a
handler crashes (fault site ``serve/http/handler``): the crash is
answered with a best-effort 500 and the connection torn down, so a
misbehaving handler can never leak file descriptors.
"""

from __future__ import annotations

import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.logging import get_logger
from repro.runtime import faults
from repro.serve.service import RecommendationService

__all__ = ["ServiceHTTPServer", "start_server"]

#: Request bodies beyond this many bytes are rejected before being read
#: into memory (413) — the transport-level half of admission control.
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Translates HTTP requests into ``service.handle`` calls."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> RecommendationService:
        return self.server.service  # type: ignore[attr-defined]

    def _respond(
        self,
        status: int,
        payload: bytes,
        headers: dict[str, str],
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _dispatch(self, body: bytes | None) -> None:
        try:
            faults.inject("serve/http/handler")
            response = self.service.handle(
                self.command, self.path, body, dict(self.headers.items())
            )
        except Exception:  # noqa: BLE001 - transport crash: close, never leak
            get_logger("serve.http").error(
                "transport handler crashed", exc_info=True
            )
            self.close_connection = True
            try:
                self._respond(
                    500,
                    b'{"error": "internal", "detail": "transport handler crashed"}',
                    {},
                )
            except OSError:
                pass  # client already gone; the finally in socketserver closes
            return
        try:
            self._respond(
                response.status,
                response.payload(),
                response.headers,
                response.content_type,
            )
        except OSError:
            # The client hung up mid-write; drop the connection so the
            # thread (and its socket) is reclaimed immediately.
            self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        self._dispatch(None)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        try:
            length = int(self.headers.get("Content-Length", "0") or "0")
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # Reject without reading the body; the unread bytes make the
            # connection unusable for keep-alive, so close it.
            self.close_connection = True
            self._respond(
                413,
                b'{"error": "oversized", "detail": "request body too large"}',
                {},
            )
            return
        self._dispatch(self.rfile.read(length))

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        get_logger("serve.http").debug(format, *args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`RecommendationService`.

    Listen-socket tuning (backlog, SO_REUSEADDR, SO_REUSEPORT) comes from
    the service's :class:`~repro.serve.service.ServiceConfig`.  Passing
    ``sock`` adopts an already-bound listening socket instead of binding
    ``address`` — the pre-fork fleet's inherited-FD path on platforms
    without SO_REUSEPORT.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: RecommendationService,
        *,
        sock: socket.socket | None = None,
    ) -> None:
        config = service.config
        # Instance attributes shadow the socketserver class defaults and
        # must exist before super().__init__ triggers server_bind().
        self.request_queue_size = config.listen_backlog
        self.allow_reuse_address = config.reuse_address
        self._reuse_port = config.reuse_port
        self.service = service
        if sock is None:
            super().__init__(address, _Handler)
        else:
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()
            self.socket = sock
            self.server_address = sock.getsockname()
            sock.listen(self.request_queue_size)

    def server_bind(self) -> None:
        if self._reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise OSError(
                    "SO_REUSEPORT requested but unsupported on this platform; "
                    "pass a shared pre-bound socket instead"
                )
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def start_server(
    service: RecommendationService, host: str = "127.0.0.1", port: int = 0
) -> tuple[ServiceHTTPServer, threading.Thread]:
    """Start the service on a background thread; ``port=0`` picks a free one.

    Returns the server (``server.server_address`` holds the bound port)
    and its thread.  Call ``server.shutdown()`` to stop.
    """
    server = ServiceHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return server, thread
