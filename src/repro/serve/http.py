"""Stdlib HTTP transport for the recommendation service.

A thin :class:`~http.server.ThreadingHTTPServer` shell around
:meth:`RecommendationService.handle` — every request thread reads the JSON
body, forwards the request headers (so the core can honour
``X-Request-Id`` and content-negotiate ``/metrics``), dispatches into the
transport-agnostic core, and writes the response payload with whatever
extra headers (``Retry-After``, ``Allow``, ``X-Request-Id``) and content
type the core attached.  No framework, no dependency: the paper's tool is
a deployed service and this layer is what lets the reproduction answer
real sockets.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.logging import get_logger
from repro.serve.service import RecommendationService

__all__ = ["ServiceHTTPServer", "start_server"]

#: Request bodies beyond this many bytes are rejected before being read
#: into memory (413) — the transport-level half of admission control.
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Translates HTTP requests into ``service.handle`` calls."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> RecommendationService:
        return self.server.service  # type: ignore[attr-defined]

    def _respond(
        self,
        status: int,
        payload: bytes,
        headers: dict[str, str],
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _dispatch(self, body: bytes | None) -> None:
        response = self.service.handle(
            self.command, self.path, body, dict(self.headers.items())
        )
        self._respond(
            response.status,
            response.payload(),
            response.headers,
            response.content_type,
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        self._dispatch(None)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        try:
            length = int(self.headers.get("Content-Length", "0") or "0")
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # Reject without reading the body; the unread bytes make the
            # connection unusable for keep-alive, so close it.
            self.close_connection = True
            self._respond(
                413,
                b'{"error": "oversized", "detail": "request body too large"}',
                {},
            )
            return
        self._dispatch(self.rfile.read(length))

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        get_logger("serve.http").debug(format, *args)


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`RecommendationService`."""

    daemon_threads = True
    #: The socketserver default backlog of 5 resets connections under a
    #: burst of simultaneous connects; admission control (shed with 429)
    #: is the service's overload story, not TCP-level resets.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], service: RecommendationService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def start_server(
    service: RecommendationService, host: str = "127.0.0.1", port: int = 0
) -> tuple[ServiceHTTPServer, threading.Thread]:
    """Start the service on a background thread; ``port=0`` picks a free one.

    Returns the server (``server.server_address`` holds the bound port)
    and its thread.  Call ``server.shutdown()`` to stop.
    """
    server = ServiceHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return server, thread
