"""Bounded LRU cache of precomputed top-k recommendation results.

Head traffic is heavy-tailed: the same short install-base histories arrive
again and again, and recomputing an identical fold-in + ranking for each
arrival is pure waste.  :class:`TopKCache` memoizes finished ladder results
keyed by ``(model generation, history fingerprint, threshold, top_n)``:

* the **model generation** — the registry's global monotonic counter,
  bumped on every promotion — is part of the key, so a hot-swap makes
  every previously cached entry unreachable *atomically*: there is no
  window in which a stale-model answer can be served;
* on top of the key-level guarantee, the service also clears the cache on
  swap (via the registry's subscription hook) so dead-generation entries
  do not squat in the LRU ring;
* only **primary-tier, non-degraded** answers are cached by the service —
  an answer produced while a tier was broken or out of budget reflects a
  transient condition, not the model, and must not outlive it.

The cache itself is a plain lock-guarded ordered dict with
move-to-front-on-hit semantics; hit/miss/evict totals are exposed for the
service's ``serve.cache.{hit,miss,evict}`` labelled counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["TopKCache"]


class TopKCache:
    """Thread-safe bounded LRU keyed by hashable request fingerprints."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value, refreshed to most-recently-used, or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> int:
        """Store a value; returns how many entries were evicted (0 or 1)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return 0
            self._entries[key] = value
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
            return evicted

    def invalidate(self) -> int:
        """Drop every entry (hot-swap hook); returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Lifetime hit/miss/evict totals plus the current size."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
