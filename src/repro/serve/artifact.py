"""Generation-numbered, mmap-shareable model artifact store.

The fleet's workers never receive model objects — they receive a
directory.  :class:`ArtifactStore` publishes a set of fitted models as one
immutable *generation* directory of ``.npz`` files, then atomically flips
a ``current`` symlink and bumps a fsynced ``GENERATION`` file.  Workers
poll the bump file (or get a SIGHUP) and remap: each slot's weights are
loaded with ``mmap_mode="r"`` (see
:func:`repro.models.base.mmap_npz_arrays`), so N worker processes share
one page-cache copy of the parameters instead of N heap copies.

Torn-swap safety comes from immutability plus ordering: a generation
directory is fully written and fsynced *before* the symlink flips, the
symlink flip is a single ``rename`` (readers see wholly old or wholly new),
and published directories are never modified — a worker that resolved
``current`` a microsecond before the flip keeps reading a complete old
generation.  Validation stays per worker: remapping goes through the
registry's DriftMonitor gate, so a bad published candidate is rejected by
every worker identically and the incumbent keeps serving.

Layout::

    root/
      GENERATION          # latest published generation number (fsynced)
      current -> gen-000002
      gen-000001/
        lda.npz
        ngram.npz
        manifest.json     # slots, classes, source generation metadata
      gen-000002/
        ...
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Mapping

from repro.models.base import GenerativeModel
from repro.obs.logging import get_logger

__all__ = ["ArtifactStore", "PublishedGeneration"]

_GEN_PREFIX = "gen-"
_BUMP_FILE = "GENERATION"
_CURRENT = "current"


class PublishedGeneration:
    """Handle to one immutable published generation."""

    def __init__(self, root: Path, number: int) -> None:
        self.root = root
        self.number = number
        self.path = root / f"{_GEN_PREFIX}{number:06d}"

    def slot_path(self, slot: str) -> Path:
        """The ``.npz`` artifact of one serving slot."""
        return self.path / f"{slot}.npz"

    def manifest(self) -> dict:
        """The generation's manifest (slots, classes, publish time)."""
        return json.loads((self.path / "manifest.json").read_text(encoding="utf-8"))

    def slots(self) -> list[str]:
        """Slot names published in this generation."""
        return sorted(self.manifest()["slots"])

    def load(self, slot: str, *, mmap_mode: str | None = "r") -> GenerativeModel:
        """Load one slot's model, read-only memory-mapped by default."""
        return GenerativeModel.load_any(self.slot_path(slot), mmap_mode=mmap_mode)


class ArtifactStore:
    """Filesystem-backed publish/subscribe point for serving weights.

    Parameters
    ----------
    root:
        Directory holding every generation; created if missing.
    keep:
        Completed generations retained besides the current one; older
        directories are pruned after a successful publish (a worker still
        mapping a pruned generation keeps its pages — POSIX unlink only
        removes the name, the mapping stays valid until remap).
    """

    def __init__(self, root: str | Path, *, keep: int = 2) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._log = get_logger("serve.artifact")

    # ------------------------------------------------------------------
    # Read side (workers)
    # ------------------------------------------------------------------
    def generation(self) -> int | None:
        """The latest published generation number, or None when empty.

        Reads the bump file — one small read, safe to poll at a high
        frequency from every worker.  A torn read (publish in progress)
        degrades to the previous value or None, never an exception.
        """
        try:
            text = (self.root / _BUMP_FILE).read_text(encoding="utf-8").strip()
            return int(text) if text else None
        except (OSError, ValueError):
            return None

    def current(self) -> PublishedGeneration | None:
        """Handle to the currently published generation, or None."""
        number = self.generation()
        if number is None:
            return None
        published = PublishedGeneration(self.root, number)
        return published if published.path.is_dir() else None

    def current_path(self) -> Path:
        """The ``current`` symlink path (for transports that resolve it)."""
        return self.root / _CURRENT

    def generations(self) -> list[int]:
        """Every generation directory present, ascending."""
        numbers = []
        for entry in self.root.iterdir():
            if entry.is_dir() and entry.name.startswith(_GEN_PREFIX):
                try:
                    numbers.append(int(entry.name[len(_GEN_PREFIX):]))
                except ValueError:
                    continue
        return sorted(numbers)

    # ------------------------------------------------------------------
    # Write side (the publisher / supervisor)
    # ------------------------------------------------------------------
    def publish(self, models: Mapping[str, GenerativeModel]) -> PublishedGeneration:
        """Publish a new generation of fitted models atomically.

        Writes every slot into a fresh generation directory, fsyncs the
        files, then flips ``current`` (rename of a pre-built symlink) and
        bumps the ``GENERATION`` file last — a reader that observes the
        new number is guaranteed a complete directory behind it.
        """
        if not models:
            raise ValueError("cannot publish an empty model set")
        numbers = self.generations()
        number = (numbers[-1] if numbers else 0) + 1
        published = PublishedGeneration(self.root, number)
        staging = Path(
            tempfile.mkdtemp(prefix=f".staging-{number:06d}-", dir=self.root)
        )
        try:
            manifest = {
                "generation": number,
                "published_at": time.time(),
                "slots": {},
            }
            for slot, model in sorted(models.items()):
                if not isinstance(model, GenerativeModel) or not model.is_fitted:
                    raise ValueError(f"slot {slot!r} needs a fitted GenerativeModel")
                target = staging / f"{slot}.npz"
                model.save(target)
                self._fsync(target)
                manifest["slots"][slot] = {
                    "class": type(model).__name__,
                    "bytes": target.stat().st_size,
                }
            manifest_path = staging / "manifest.json"
            manifest_path.write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            self._fsync(manifest_path)
            os.rename(staging, published.path)
        except BaseException:
            if staging.is_dir():
                for leftover in staging.glob("*"):
                    leftover.unlink(missing_ok=True)
                staging.rmdir()
            raise
        self._fsync_dir(self.root)
        self._flip_current(published.path.name)
        self._bump(number)
        self._log.info(
            "published generation %d: %s", number, sorted(manifest["slots"])
        )
        self._prune(keep_latest=number)
        return published

    def _flip_current(self, target_name: str) -> None:
        """Atomically repoint ``current`` via a temp symlink + rename."""
        temp = self.root / f".{_CURRENT}.tmp.{os.getpid()}"
        temp.unlink(missing_ok=True)
        os.symlink(target_name, temp)
        os.replace(temp, self.root / _CURRENT)
        self._fsync_dir(self.root)

    def _bump(self, number: int) -> None:
        """Write the generation number with an atomic, fsynced replace."""
        temp = self.root / f".{_BUMP_FILE}.tmp.{os.getpid()}"
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(f"{number}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.root / _BUMP_FILE)
        self._fsync_dir(self.root)

    def _prune(self, keep_latest: int) -> None:
        """Drop generation directories older than the retention window."""
        keep_from = keep_latest - self.keep
        for number in self.generations():
            if number >= keep_from:
                continue
            victim = PublishedGeneration(self.root, number).path
            try:
                for leftover in victim.iterdir():
                    leftover.unlink()
                victim.rmdir()
            except OSError:
                self._log.warning("could not prune generation %d", number, exc_info=True)

    @staticmethod
    def _fsync(path: Path) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)
