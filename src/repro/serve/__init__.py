"""Resilient online serving layer for the Section 6 recommendation tool.

The paper ships a *deployed* sales tool; this package is the harness that
makes the reproduction's pipeline survive deployment conditions — dirty
payloads, slow or broken models, mid-flight model refreshes, overload —
while never answering a degradable failure with a 5xx:

* :mod:`repro.serve.admission` — schema/vocabulary validation + quarantine;
* :mod:`repro.serve.breaker` — per-tier circuit breakers (injectable clock);
* :mod:`repro.serve.ladder` — LDA → n-gram → popularity degradation ladder
  under per-request deadline budgets;
* :mod:`repro.serve.registry` — DriftMonitor-gated, atomic model hot-swap;
* :mod:`repro.serve.batch` — deadline-aware micro-batching of /recommend;
* :mod:`repro.serve.ann` — LSH similarity index with exact re-ranking;
* :mod:`repro.serve.topk_cache` — generation-keyed LRU of top-k results;
* :mod:`repro.serve.service` — the transport-agnostic request core;
* :mod:`repro.serve.http` — stdlib ``ThreadingHTTPServer`` transport;
* :mod:`repro.serve.bootstrap` — the standard demo stack builder.

Scale-out serving stacks the same core across processes:

* :mod:`repro.serve.artifact` — generation-numbered mmap'd model store
  with atomic symlink publish;
* :mod:`repro.serve.fleet` — pre-fork supervisor, SO_REUSEPORT workers,
  per-worker artifact watcher;
* :mod:`repro.serve.router` — consistent-hash shard router and fleet
  metrics/health aggregation.
"""

from __future__ import annotations

from repro.serve.admission import (
    AdmissionError,
    AdmissionPolicy,
    QuarantineLog,
    SimilarRequest,
    ValidatedRequest,
)
from repro.serve.ann import LSHIndex
from repro.serve.artifact import ArtifactStore, PublishedGeneration
from repro.serve.batch import BatchedAnswer, MicroBatcher
from repro.serve.bootstrap import (
    build_demo_models,
    build_demo_service,
    demo_service_factory,
    publish_demo_artifacts,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.fleet import (
    ArtifactWatcher,
    FleetSupervisor,
    WorkerState,
    read_fleet_state,
    run_worker,
)
from repro.serve.http import ServiceHTTPServer, start_server
from repro.serve.ladder import DegradationLadder, LadderResult, Tier, TierOutcome
from repro.serve.registry import ModelRegistry, SwapReport
from repro.serve.router import ConsistentHashRing, FleetRouter, RouterHTTPServer, start_router
from repro.serve.service import RecommendationService, ServiceConfig, ServiceResponse
from repro.serve.topk_cache import TopKCache

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "QuarantineLog",
    "SimilarRequest",
    "ValidatedRequest",
    "BatchedAnswer",
    "MicroBatcher",
    "LSHIndex",
    "TopKCache",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "DegradationLadder",
    "LadderResult",
    "Tier",
    "TierOutcome",
    "ModelRegistry",
    "SwapReport",
    "RecommendationService",
    "ServiceConfig",
    "ServiceResponse",
    "ServiceHTTPServer",
    "start_server",
    "build_demo_models",
    "build_demo_service",
    "demo_service_factory",
    "publish_demo_artifacts",
    "ArtifactStore",
    "PublishedGeneration",
    "ArtifactWatcher",
    "FleetSupervisor",
    "WorkerState",
    "read_fleet_state",
    "run_worker",
    "ConsistentHashRing",
    "FleetRouter",
    "RouterHTTPServer",
    "start_router",
]
