"""Pre-fork worker fleet: one supervisor, N shared-nothing serving workers.

A single :class:`~http.server.ThreadingHTTPServer` caps the serving tier
at one GIL and one heap copy of the models.  This module scales the
transport-agnostic :class:`~repro.serve.service.RecommendationService`
across processes the classic pre-fork way:

* the **supervisor** reserves the fleet port, forks ``n_workers``
  children, restarts crashed ones with exponential backoff, and drains
  the fleet gracefully on SIGTERM;
* each **worker** binds the shared fleet port with SO_REUSEPORT (the
  kernel spreads accepts across processes — shared-nothing, no router
  needed for the fast path) or adopts a socket the supervisor bound once
  pre-fork where SO_REUSEPORT is unavailable, plus its *own* direct port
  for per-worker scrapes, shard-routed traffic and health probes;
* model weights come from a generation-numbered
  :class:`~repro.serve.artifact.ArtifactStore` and are loaded with
  ``mmap_mode="r"`` — N workers share one page-cache copy;
* a per-worker **artifact watcher** polls the store's bump file (and
  wakes on SIGHUP) and remaps on a new generation through the registry's
  DriftMonitor gate, so promotion/rejection semantics, the generation
  counter, and top-k-cache/ANN invalidation are exactly the single
  process's — per worker.

Worker discovery is filesystem-based: each worker atomically rewrites
``state_dir/worker-<index>.json`` (pid, ports, shard, applied model
generation), which the supervisor, the router and the load harness read.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.obs.logging import get_logger
from repro.serve.artifact import ArtifactStore
from repro.serve.http import ServiceHTTPServer
from repro.serve.service import RecommendationService

__all__ = ["WorkerState", "ArtifactWatcher", "FleetSupervisor", "run_worker"]

_HAS_REUSEPORT = hasattr(socket, "SO_REUSEPORT")


@dataclass(frozen=True)
class WorkerState:
    """One worker's advertised state, as written to the state dir."""

    index: int
    pid: int
    shard: int
    fleet_port: int
    direct_port: int
    generation: int
    started_at: float

    @property
    def direct_url(self) -> str:
        return f"http://127.0.0.1:{self.direct_port}"

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "pid": self.pid,
            "shard": self.shard,
            "fleet_port": self.fleet_port,
            "direct_port": self.direct_port,
            "generation": self.generation,
            "started_at": self.started_at,
        }

    @staticmethod
    def read(path: Path) -> "WorkerState | None":
        """Parse a state file; a torn or missing file reads as None."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return WorkerState(**{k: data[k] for k in (
                "index", "pid", "shard", "fleet_port", "direct_port",
                "generation", "started_at",
            )})
        except (OSError, ValueError, KeyError, TypeError):
            return None


def _write_state(state_dir: Path, state: WorkerState) -> None:
    """Atomically publish a worker state file (tmp + rename)."""
    state_dir.mkdir(parents=True, exist_ok=True)
    target = state_dir / f"worker-{state.index}.json"
    temp = state_dir / f".worker-{state.index}.json.tmp"
    temp.write_text(json.dumps(state.as_dict()) + "\n", encoding="utf-8")
    os.replace(temp, target)


def read_fleet_state(state_dir: str | Path) -> list[WorkerState]:
    """Every live worker state file in a fleet state dir, by index."""
    states = []
    for path in sorted(Path(state_dir).glob("worker-*.json")):
        state = WorkerState.read(path)
        if state is not None:
            states.append(state)
    return sorted(states, key=lambda s: s.index)


class ArtifactWatcher:
    """Background thread remapping a worker's models on generation bumps.

    Polls :meth:`ArtifactStore.generation` every ``poll_interval`` seconds
    (and immediately when :meth:`wake` is called — the worker's SIGHUP
    handler).  A new generation is applied slot by slot through
    ``registry.swap(..., mmap_mode="r")``: the DriftMonitor gate, the
    registry generation counter, and the cache/ANN invalidation
    subscribers all fire exactly as they do for an in-process hot-swap.
    A rejected candidate leaves the incumbent serving and is not retried
    until the *next* bump, so a bad publish cannot become a reload storm.
    """

    def __init__(
        self,
        service: RecommendationService,
        store: ArtifactStore,
        *,
        poll_interval: float = 0.25,
        applied: int | None = None,
        on_applied: Callable[[int], None] | None = None,
    ) -> None:
        self.service = service
        self.store = store
        self.poll_interval = poll_interval
        self.applied = applied if applied is not None else (store.generation() or 0)
        self.attempted = self.applied
        self.on_applied = on_applied
        self.swaps: list[dict[str, str]] = []
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._log = get_logger("serve.fleet.watcher")

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-artifact-watcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def wake(self) -> None:
        """Trigger an immediate check (SIGHUP handler calls this)."""
        self._wake.set()

    def check_once(self) -> bool:
        """Apply the latest published generation if it is new; True if applied."""
        number = self.store.generation()
        if number is None or number <= self.attempted:
            return False
        self.attempted = number
        published = self.store.current()
        if published is None or published.number != number:
            # Torn read: bump visible but directory not yet resolvable
            # (or already superseded).  The next poll re-reads.
            self.attempted = self.applied
            return False
        registry = self.service.registry
        # All-or-nothing: every slot is staged and gate-validated BEFORE
        # any slot is promoted.  A generation with one bad artifact is
        # rejected whole — a worker never serves a torn mix of old and
        # new models.
        candidates: dict[str, object] = {}
        for slot in published.slots():
            if slot not in registry.names():
                continue
            candidate, reason = registry.validate(
                slot, published.slot_path(slot), mmap_mode="r"
            )
            if candidate is None:
                self.swaps.append(
                    {"slot": slot, "status": "rejected", "reason": reason}
                )
                self._log.warning(
                    "artifact generation %d rejected whole: slot %s failed "
                    "validation (%s); incumbent generation keeps serving",
                    number,
                    slot,
                    reason,
                )
                return False
            candidates[slot] = candidate
        # Readiness dips for the remap window, exactly like the in-process
        # /admin/hotswap path; in-flight requests keep the models they
        # already resolved.
        self.service._ready = False
        try:
            outcomes = {}
            for slot, candidate in candidates.items():
                report = registry.swap(slot, candidate)
                outcomes[slot] = report.status
                self.swaps.append(
                    {"slot": slot, "status": report.status, "reason": report.reason}
                )
        finally:
            self.service._ready = True
        if outcomes and all(status == "promoted" for status in outcomes.values()):
            self.applied = number
            self._log.info("remapped to artifact generation %d: %s", number, outcomes)
            if self.on_applied is not None:
                self.on_applied(number)
            return True
        self._log.warning(
            "artifact generation %d not fully applied: %s (incumbent keeps serving)",
            number,
            outcomes,
        )
        return False

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.check_once()
            except Exception:  # noqa: BLE001 - the watcher must survive anything
                self._log.error("artifact watcher check failed", exc_info=True)
            self._wake.wait(self.poll_interval)
            self._wake.clear()


def _fleet_socket(host: str, port: int) -> socket.socket:
    """A bound (not listening) SO_REUSEPORT socket reserving the fleet port."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if _HAS_REUSEPORT:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


def run_worker(
    index: int,
    service_factory: Callable[[int], RecommendationService],
    *,
    host: str,
    fleet_port: int,
    state_dir: Path,
    store: ArtifactStore | None,
    shard: int = 0,
    poll_interval: float = 0.25,
    inherited_sock: socket.socket | None = None,
    drain_grace_s: float = 5.0,
) -> int:
    """Body of one worker process; returns the exit code.

    Builds the service (models mmap'd from the artifact store when one is
    wired), binds the shared fleet port plus a unique direct port, writes
    the discovery state file, then serves until SIGTERM.  SIGHUP forces an
    immediate artifact re-check.  The drain on SIGTERM stops accepting
    first, then waits up to ``drain_grace_s`` for in-flight requests.
    """
    log = get_logger("serve.fleet.worker")
    stop = threading.Event()
    watcher: ArtifactWatcher | None = None

    def on_term(signum: int, frame: object) -> None:
        del signum, frame
        stop.set()

    def on_hup(signum: int, frame: object) -> None:
        del signum, frame
        if watcher is not None:
            watcher.wake()

    signal.signal(signal.SIGTERM, on_term)
    signal.signal(signal.SIGINT, on_term)
    signal.signal(signal.SIGHUP, on_hup)

    generation_at_build = store.generation() or 0 if store is not None else 0
    service = service_factory(index)

    # Shared fleet listener: kernel-balanced SO_REUSEPORT bind, or the
    # socket the supervisor bound once pre-fork.
    if inherited_sock is None:
        inherited_sock = _fleet_socket(host, fleet_port)
    fleet_server = ServiceHTTPServer((host, fleet_port), service, sock=inherited_sock)
    # Unique direct listener for scrapes, shard routing and health probes.
    direct_server = ServiceHTTPServer((host, 0), service)
    direct_port = direct_server.server_address[1]

    def publish_state(generation: int) -> None:
        _write_state(
            state_dir,
            WorkerState(
                index=index,
                pid=os.getpid(),
                shard=shard,
                fleet_port=fleet_server.server_address[1],
                direct_port=direct_port,
                generation=generation,
                started_at=time.time(),
            ),
        )

    if store is not None:
        watcher = ArtifactWatcher(
            service,
            store,
            poll_interval=poll_interval,
            applied=generation_at_build,
            on_applied=publish_state,
        )
        watcher.start()

    publish_state(generation_at_build)
    threads = [
        threading.Thread(target=fleet_server.serve_forever, daemon=True),
        threading.Thread(target=direct_server.serve_forever, daemon=True),
    ]
    for thread in threads:
        thread.start()
    log.info(
        "worker %d up: pid %d, fleet :%d, direct :%d, shard %d",
        index, os.getpid(), fleet_server.server_address[1], direct_port, shard,
    )
    try:
        stop.wait()
    finally:
        # Graceful drain: stop accepting, let in-flight requests finish.
        fleet_server.shutdown()
        direct_server.shutdown()
        deadline = time.monotonic() + drain_grace_s
        while time.monotonic() < deadline and service._inflight > 0:
            time.sleep(0.02)
        if watcher is not None:
            watcher.stop()
        service.close()
        fleet_server.server_close()
        direct_server.server_close()
        try:
            (state_dir / f"worker-{index}.json").unlink(missing_ok=True)
        except OSError:
            pass
    return 0


class FleetSupervisor:
    """Forks, watches, restarts and drains a fleet of serving workers.

    Parameters
    ----------
    service_factory:
        ``factory(worker_index) -> RecommendationService``; called *inside*
        each worker after the fork, so per-process resources (batcher
        threads, mmap handles) are never shared across processes.
    n_workers, shards:
        Fleet width and the number of shard groups workers are assigned to
        round-robin (worker ``i`` serves shard ``i % shards``).
    host, port:
        The shared fleet address; ``port=0`` reserves a free port.
    state_dir:
        Worker discovery directory (state files, read by the router).
    store:
        Optional :class:`ArtifactStore` workers watch for hot-swaps.
    restart_backoff_s, max_backoff_s:
        Exponential backoff between restarts of a crashing worker slot;
        the backoff resets once a worker stays up ``stable_after_s``.
    """

    def __init__(
        self,
        service_factory: Callable[[int], RecommendationService],
        *,
        n_workers: int = 2,
        shards: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        state_dir: str | Path,
        store: ArtifactStore | None = None,
        poll_interval: float = 0.25,
        restart_backoff_s: float = 0.1,
        max_backoff_s: float = 2.0,
        stable_after_s: float = 5.0,
        drain_grace_s: float = 5.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if shards < 1 or shards > n_workers:
            raise ValueError("shards must be in [1, n_workers]")
        self.service_factory = service_factory
        self.n_workers = n_workers
        self.shards = shards
        self.host = host
        self.port = port
        self.state_dir = Path(state_dir)
        self.store = store
        self.poll_interval = poll_interval
        self.restart_backoff_s = restart_backoff_s
        self.max_backoff_s = max_backoff_s
        self.stable_after_s = stable_after_s
        self.drain_grace_s = drain_grace_s
        self.restarts = 0
        self._reserved: socket.socket | None = None
        self._pids: dict[int, int] = {}  # worker index -> pid
        self._spawned_at: dict[int, float] = {}
        self._failures: dict[int, int] = {}
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self._lock = threading.Lock()
        self._log = get_logger("serve.fleet")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetSupervisor":
        """Reserve the fleet port, fork every worker, start the monitor."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for stale in self.state_dir.glob("worker-*.json"):
            stale.unlink(missing_ok=True)
        # The reserved socket pins the port without listening: with
        # SO_REUSEPORT the kernel only balances across *listening*
        # sockets, so the supervisor holding a bound-but-quiet socket
        # keeps the port ours while receiving no traffic.  Without
        # SO_REUSEPORT this same socket is put into listen mode once and
        # inherited by every child (accept-herd sharing).
        self._reserved = _fleet_socket(self.host, self.port)
        self.fleet_port = self._reserved.getsockname()[1]
        if not _HAS_REUSEPORT:
            self._reserved.listen(128)
        for index in range(self.n_workers):
            self._spawn(index)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    @property
    def fleet_url(self) -> str:
        return f"http://{self.host}:{self.fleet_port}"

    def _spawn(self, index: int) -> None:
        shard = index % self.shards
        pid = os.fork()
        if pid == 0:
            # Child: never return into the parent's stack.
            code = 1
            try:
                inherited = self._reserved if not _HAS_REUSEPORT else None
                if inherited is None and self._reserved is not None:
                    self._reserved.close()
                code = run_worker(
                    index,
                    self.service_factory,
                    host=self.host,
                    fleet_port=self.fleet_port,
                    state_dir=self.state_dir,
                    store=self.store,
                    shard=shard,
                    poll_interval=self.poll_interval,
                    inherited_sock=inherited,
                    drain_grace_s=self.drain_grace_s,
                )
            except BaseException:  # noqa: BLE001 - the child must exit, not unwind
                try:
                    self._log.error("worker %d crashed at startup", index, exc_info=True)
                except Exception:  # noqa: BLE001
                    pass
                code = 1
            finally:
                os._exit(code)
        with self._lock:
            self._pids[index] = pid
            self._spawned_at[index] = time.monotonic()
        self._log.info("spawned worker %d as pid %d (shard %d)", index, pid, shard)

    def _monitor_loop(self) -> None:
        """Reap exited workers and restart crashes with backoff.

        Waits on each tracked pid individually (never ``waitpid(-1)``,
        which would steal exit notifications from process pools sharing
        this process).
        """
        while not self._stopping.is_set():
            with self._lock:
                tracked = dict(self._pids)
            for index, pid in tracked.items():
                try:
                    done, status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done, status = pid, 1 << 8  # lost: treat as crash
                if done == 0:
                    continue
                if self._stopping.is_set():
                    break
                exited_clean = os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0
                uptime = time.monotonic() - self._spawned_at.get(index, 0.0)
                with self._lock:
                    self._pids.pop(index, None)
                if exited_clean:
                    self._log.info("worker %d exited cleanly; not restarting", index)
                    continue
                failures = self._failures.get(index, 0)
                if uptime >= self.stable_after_s:
                    failures = 0  # it had settled; fresh backoff ladder
                self._failures[index] = failures + 1
                delay = min(
                    self.restart_backoff_s * (2 ** failures), self.max_backoff_s
                )
                self._log.warning(
                    "worker %d (pid %d) died with status %d after %.1fs; "
                    "restart in %.2fs (attempt %d)",
                    index, pid, status, uptime, delay, failures + 1,
                )
                self.restarts += 1
                if self._stopping.wait(delay):
                    break
                self._spawn(index)
            self._stopping.wait(0.05)

    def workers(self) -> list[WorkerState]:
        """Discovery view: every worker state file currently published."""
        return read_fleet_state(self.state_dir)

    def live_pids(self) -> dict[int, int]:
        """Tracked worker pids by index."""
        with self._lock:
            return dict(self._pids)

    def wait_ready(self, timeout: float = 30.0) -> list[WorkerState]:
        """Block until every worker slot has published a live state file."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            states = self.workers()
            with self._lock:
                pids = dict(self._pids)
            if len(states) >= self.n_workers and all(
                s.pid == pids.get(s.index) for s in states
            ):
                return states
            time.sleep(0.05)
        raise TimeoutError(
            f"fleet not ready after {timeout}s: "
            f"{len(self.workers())}/{self.n_workers} workers published"
        )

    def signal_workers(self, signum: int) -> None:
        """Send a signal (e.g. SIGHUP for remap-now) to every live worker."""
        for pid in self.live_pids().values():
            try:
                os.kill(pid, signum)
            except ProcessLookupError:
                pass

    def publish(self, models, *, hup: bool = True):
        """Publish a new model generation and nudge workers to remap."""
        if self.store is None:
            raise RuntimeError("this fleet has no artifact store wired")
        published = self.store.publish(models)
        if hup:
            self.signal_workers(signal.SIGHUP)
        return published

    def wait_generation(self, generation: int, timeout: float = 30.0) -> list[WorkerState]:
        """Block until every worker advertises ``generation`` applied."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            states = self.workers()
            if len(states) >= self.n_workers and all(
                s.generation >= generation for s in states
            ):
                return states
            time.sleep(0.05)
        raise TimeoutError(
            f"workers never converged to generation {generation}: "
            f"{[(s.index, s.generation) for s in self.workers()]}"
        )

    def stop(self, grace_s: float | None = None) -> None:
        """Drain the fleet: SIGTERM, bounded wait, SIGKILL stragglers."""
        grace = self.drain_grace_s if grace_s is None else grace_s
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        with self._lock:
            pids = dict(self._pids)
        for pid in pids.values():
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + grace
        remaining = dict(pids)
        while remaining and time.monotonic() < deadline:
            for index, pid in list(remaining.items()):
                try:
                    done, _status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done = pid
                if done:
                    remaining.pop(index)
            time.sleep(0.02)
        for index, pid in remaining.items():
            self._log.warning("worker %d (pid %d) ignored SIGTERM; killing", index, pid)
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        with self._lock:
            self._pids.clear()
        if self._reserved is not None:
            try:
                self._reserved.close()
            except OSError:
                pass
            self._reserved = None

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
