"""Assemble a full serving stack from a synthetic universe.

The CLI's ``repro serve``, the load harness and the tests all need the
same thing: a corpus, fitted models for every ladder tier, a reference
slice for swap validation, the internal sales database, and a
:class:`~repro.serve.service.RecommendationService` wired through a
:class:`~repro.serve.registry.ModelRegistry`.  This module is that one
recipe, deterministic in ``(n_companies, seed)``.

The recipe is split so the pre-fork fleet can share work: model fitting
(:func:`build_demo_models`) is the expensive part and runs once in the
parent, which publishes the weights to an
:class:`~repro.serve.artifact.ArtifactStore`; each forked worker then
runs :func:`demo_service_factory`'s closure, rebuilding the cheap
deterministic data and memory-mapping the published weights read-only —
N workers, one page-cache copy.
"""

from __future__ import annotations

from repro.app.tool import SalesRecommendationTool
from repro.data.internal import InternalSalesDatabase
from repro.experiments.common import load_corpus_data, make_experiment_data
from repro.models.base import GenerativeModel
from repro.models.lda import LatentDirichletAllocation
from repro.models.ngram import NGramModel
from repro.obs.logging import get_logger
from repro.recommend.windows import SlidingWindowSpec
from repro.replay.canary import CanaryGate
from repro.scenarios.packs import load_scenario_manifest
from repro.serve.artifact import ArtifactStore, PublishedGeneration
from repro.serve.registry import ModelRegistry
from repro.serve.service import RecommendationService, ServiceConfig
from typing import Callable

__all__ = [
    "build_demo_models",
    "build_demo_service",
    "publish_demo_artifacts",
    "demo_service_factory",
]


def _demo_data(n_companies: int, seed: int, corpus_dir: str | None):
    """The serving corpus: a memmap-backed load or an in-process simulation.

    With ``corpus_dir`` the stack serves a published columnar corpus —
    token columns stay on disk and every worker that opens the same
    directory shares one page-cache copy, so bootstrap memory stays
    bounded at any corpus size.
    """
    if corpus_dir:
        return load_corpus_data(corpus_dir)
    return make_experiment_data(n_companies, seed=seed)


def build_demo_models(
    n_companies: int = 300,
    *,
    seed: int = 7,
    lda_topics: int = 3,
    lda_iterations: int = 60,
    corpus_dir: str | None = None,
):
    """Fit the demo ladder's model set once.

    Returns ``(data, models)`` where ``models`` maps registry slot names
    to fitted models.  Deterministic in ``(n_companies, seed)`` — two
    processes calling this with the same arguments fit bit-identical
    models, which is what lets workers rebuild the corpus locally while
    the weights come from a shared artifact.  With ``corpus_dir`` the
    corpus is opened from a published columnar directory instead
    (determinism then keys on the directory's content fingerprint).
    """
    data = _demo_data(n_companies, seed, corpus_dir)
    train = data.split.train
    lda = LatentDirichletAllocation(
        n_topics=lda_topics, inference="variational", n_iter=lda_iterations, seed=0
    ).fit(train)
    ngram = NGramModel(order=2).fit(train)
    return data, {"lda": lda, "ngram": ngram}


def build_demo_service(
    n_companies: int = 300,
    *,
    seed: int = 7,
    config: ServiceConfig | None = None,
    lda_topics: int = 3,
    lda_iterations: int = 60,
    with_tool: bool = True,
    models: dict[str, GenerativeModel] | None = None,
    corpus_dir: str | None = None,
) -> RecommendationService:
    """Build the standard LDA → n-gram → popularity serving stack.

    Models are fitted on the train split; the validation split is the
    registry's reference slice for hot-swap gating.  Deterministic in
    ``(n_companies, seed)``.  Passing ``models`` (slot name → fitted
    model, e.g. memory-mapped from an artifact store) skips the fit and
    installs those instead — the data is still rebuilt locally.  With
    ``corpus_dir`` the corpus is memory-mapped from a published columnar
    directory rather than simulated, keeping bootstrap memory bounded.
    """
    config = config or ServiceConfig()
    log = get_logger("serve.bootstrap")
    if models is None:
        data, models = build_demo_models(
            n_companies,
            seed=seed,
            lda_topics=lda_topics,
            lda_iterations=lda_iterations,
            corpus_dir=corpus_dir,
        )
    else:
        data = _demo_data(n_companies, seed, corpus_dir)
    reference = data.split.validation
    lda = models["lda"]

    canary = None
    if config.canary_windows > 0:
        canary = CanaryGate(
            reference,
            spec=SlidingWindowSpec(n_windows=config.canary_windows),
            threshold=config.default_threshold,
            quality_margin=config.canary_quality_margin,
            max_regressed=config.canary_max_regressed,
            divergence_threshold=config.canary_divergence_threshold,
        )
    registry = ModelRegistry(
        reference,
        perplexity_tolerance=config.swap_tolerance,
        threshold=config.default_threshold,
        canary=canary,
    )
    for slot, model in models.items():
        registry.install(slot, model)
    log.info(
        "serving stack ready: %d companies, %d products, lda ppl %.2f, ngram ppl %.2f",
        data.corpus.n_companies,
        data.corpus.n_products,
        registry.serving_perplexity("lda"),
        registry.serving_perplexity("ngram"),
    )

    tool = None
    if with_tool:
        internal = InternalSalesDatabase(data.corpus.companies, seed=seed)
        tool = SalesRecommendationTool(
            data.corpus, lda.company_features(data.corpus), internal
        )
        tool.model_version = registry.generation
        if config.similarity == "ann":
            index = tool.enable_ann(seed=seed)
            log.info(
                "ann index built: %d vectors, recall@10 %.3f at build",
                data.corpus.n_companies,
                index.build_recall if index.build_recall is not None else -1.0,
            )

    # A corpus published by ``repro scenario build`` carries its
    # corruption manifest; merger events there become admission aliases
    # so a D-U-N-S absorbed by an M&A event resolves to its survivor.
    aliases = None
    if corpus_dir:
        scenario = load_scenario_manifest(corpus_dir)
        if scenario is not None:
            aliases = scenario.merger_aliases() or None
            if aliases:
                log.info(
                    "scenario corpus: %d merger aliases admitted from %s",
                    len(aliases),
                    scenario.pack,
                )

    return RecommendationService(
        corpus=data.corpus,
        registry=registry,
        tiers=tuple(slot for slot in ("lda", "ngram") if slot in models),
        tool=tool,
        feature_slot="lda" if with_tool else None,
        config=config,
        aliases=aliases,
    )


def publish_demo_artifacts(
    store: ArtifactStore,
    n_companies: int = 300,
    *,
    seed: int = 7,
    lda_topics: int = 3,
    lda_iterations: int = 60,
    corpus_dir: str | None = None,
) -> PublishedGeneration:
    """Fit the demo models once and publish them as a new generation."""
    _data, models = build_demo_models(
        n_companies,
        seed=seed,
        lda_topics=lda_topics,
        lda_iterations=lda_iterations,
        corpus_dir=corpus_dir,
    )
    return store.publish(models)


def demo_service_factory(
    store: ArtifactStore,
    n_companies: int = 300,
    *,
    seed: int = 7,
    config: ServiceConfig | None = None,
    with_tool: bool = True,
    corpus_dir: str | None = None,
) -> Callable[[int], RecommendationService]:
    """A fleet ``service_factory`` serving mmap'd models from ``store``.

    The returned closure runs inside each forked worker: it memory-maps
    every slot of the store's current generation read-only (sharing one
    page-cache copy of the weights across the fleet) and rebuilds the
    deterministic corpus/reference data locally — or, with ``corpus_dir``,
    re-opens the published columnar corpus so the token columns are also
    one shared page-cache copy.
    """

    def factory(index: int) -> RecommendationService:
        del index  # every worker serves the identical stack
        published = store.current()
        if published is None:
            raise RuntimeError(
                f"artifact store at {store.root} has no published generation"
            )
        models = {
            slot: published.load(slot, mmap_mode="r") for slot in published.slots()
        }
        return build_demo_service(
            n_companies,
            seed=seed,
            config=config,
            with_tool=with_tool,
            models=models,
            corpus_dir=corpus_dir,
        )

    return factory
