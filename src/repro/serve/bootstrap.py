"""Assemble a full serving stack from a synthetic universe.

The CLI's ``repro serve``, the load harness and the tests all need the
same thing: a corpus, fitted models for every ladder tier, a reference
slice for swap validation, the internal sales database, and a
:class:`~repro.serve.service.RecommendationService` wired through a
:class:`~repro.serve.registry.ModelRegistry`.  This module is that one
recipe, deterministic in ``(n_companies, seed)``.
"""

from __future__ import annotations

from repro.app.tool import SalesRecommendationTool
from repro.data.internal import InternalSalesDatabase
from repro.experiments.common import make_experiment_data
from repro.models.lda import LatentDirichletAllocation
from repro.models.ngram import NGramModel
from repro.obs.logging import get_logger
from repro.serve.registry import ModelRegistry
from repro.serve.service import RecommendationService, ServiceConfig

__all__ = ["build_demo_service"]


def build_demo_service(
    n_companies: int = 300,
    *,
    seed: int = 7,
    config: ServiceConfig | None = None,
    lda_topics: int = 3,
    lda_iterations: int = 60,
    with_tool: bool = True,
) -> RecommendationService:
    """Build the standard LDA → n-gram → popularity serving stack.

    Models are fitted on the train split; the validation split is the
    registry's reference slice for hot-swap gating.  Deterministic in
    ``(n_companies, seed)``.
    """
    config = config or ServiceConfig()
    log = get_logger("serve.bootstrap")
    data = make_experiment_data(n_companies, seed=seed)
    train = data.split.train
    reference = data.split.validation

    lda = LatentDirichletAllocation(
        n_topics=lda_topics, inference="variational", n_iter=lda_iterations, seed=0
    ).fit(train)
    ngram = NGramModel(order=2).fit(train)

    registry = ModelRegistry(
        reference,
        perplexity_tolerance=config.swap_tolerance,
        threshold=config.default_threshold,
    )
    registry.install("lda", lda)
    registry.install("ngram", ngram)
    log.info(
        "serving stack ready: %d companies, %d products, lda ppl %.2f, ngram ppl %.2f",
        data.corpus.n_companies,
        data.corpus.n_products,
        registry.serving_perplexity("lda"),
        registry.serving_perplexity("ngram"),
    )

    tool = None
    if with_tool:
        internal = InternalSalesDatabase(data.corpus.companies, seed=seed)
        tool = SalesRecommendationTool(
            data.corpus, lda.company_features(data.corpus), internal
        )
        tool.model_version = registry.generation
        if config.similarity == "ann":
            index = tool.enable_ann(seed=seed)
            log.info(
                "ann index built: %d vectors, recall@10 %.3f at build",
                data.corpus.n_companies,
                index.build_recall if index.build_recall is not None else -1.0,
            )

    return RecommendationService(
        corpus=data.corpus,
        registry=registry,
        tiers=("lda", "ngram"),
        tool=tool,
        feature_slot="lda" if with_tool else None,
        config=config,
    )
