"""Time-sliced replay harness and canary-gated promotion."""

from repro.replay.canary import CanaryGate, CanaryVerdict
from repro.replay.harness import ReplayHarness, ReplayReport, ReplayWindowResult

__all__ = [
    "CanaryGate",
    "CanaryVerdict",
    "ReplayHarness",
    "ReplayReport",
    "ReplayWindowResult",
]
