"""Canary gating: shadow-score a swap candidate on replayed traffic.

The registry's historical hot-swap gate asks "is the artifact sane"
(loads, finite perplexity within tolerance).  The canary extends that to
"does it survive yesterday's traffic": both incumbent and candidate are
replayed through the same :class:`~repro.replay.harness.ReplayHarness`
windows, and the candidate is rejected when its windowed quality
regresses past the margin or its recommendation distribution diverges
from the incumbent's — the signature of a model fitted on remapped or
drifted data that would silently change what the fleet recommends.

The verdict carries a machine-readable reason so a rejected promotion
surfaces as a 409 body an operator can act on, and both replay reports
so the rejection is auditable window by window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.app.drift import jensen_shannon_divergence
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel
from repro.obs import get_logger
from repro.recommend.windows import SlidingWindowSpec
from repro.replay.harness import ReplayHarness, ReplayReport

__all__ = ["CanaryVerdict", "CanaryGate"]


@dataclass(frozen=True)
class CanaryVerdict:
    """Outcome of one canary evaluation."""

    passed: bool
    #: Machine-readable slug: "passed", "quality_regression",
    #: "recommendation_divergence".
    reason: str
    detail: str
    regressed_windows: int
    n_windows: int
    #: JS divergence between incumbent and candidate recommendation
    #: distributions over the replayed traffic (NaN when undefined).
    recommendation_divergence: float
    incumbent: ReplayReport
    candidate: ReplayReport

    def as_dict(self) -> dict[str, Any]:
        """Compact JSON form for swap reports and HTTP bodies."""
        return {
            "passed": self.passed,
            "reason": self.reason,
            "detail": self.detail,
            "regressed_windows": self.regressed_windows,
            "n_windows": self.n_windows,
            "recommendation_divergence": (
                None
                if math.isnan(self.recommendation_divergence)
                else round(self.recommendation_divergence, 6)
            ),
            "incumbent_mean_recall": round(self.incumbent.mean_recall(), 6),
            "candidate_mean_recall": round(self.candidate.mean_recall(), 6),
        }


class CanaryGate:
    """Replay-based promotion gate between an incumbent and a candidate.

    Parameters
    ----------
    corpus:
        Traffic to replay — typically the registry's reference slice.
    spec:
        Windows to slide over; the default paper spec is usually far
        more than a gate needs, so callers pass a short spec
        (e.g. ``SlidingWindowSpec(n_windows=3)``).
    threshold:
        Recommender phi used for shadow scoring.
    quality_margin:
        Recall/precision slack per window: the candidate regresses a
        window when it falls more than this below the incumbent.
    max_regressed:
        Windows allowed to regress before the gate rejects (1 tolerates
        a single noisy window).
    divergence_threshold:
        Ceiling on the JS divergence between the two models' aggregate
        recommendation distributions.  Deliberately looser than the
        :class:`~repro.app.drift.DriftMonitor` default (0.05): healthy
        same-family refits land around 0.1–0.17 on small reference
        slices, while drift-injected candidates clear 0.25.
    """

    def __init__(
        self,
        corpus: Corpus,
        *,
        spec: SlidingWindowSpec | None = None,
        threshold: float = 0.1,
        quality_margin: float = 0.05,
        max_regressed: int = 1,
        divergence_threshold: float = 0.2,
    ) -> None:
        if quality_margin < 0:
            raise ValueError(f"quality_margin must be >= 0, got {quality_margin}")
        if max_regressed < 0:
            raise ValueError(f"max_regressed must be >= 0, got {max_regressed}")
        if divergence_threshold <= 0:
            raise ValueError(
                f"divergence_threshold must be positive, got {divergence_threshold}"
            )
        self.quality_margin = float(quality_margin)
        self.max_regressed = int(max_regressed)
        self.divergence_threshold = float(divergence_threshold)
        self.harness = ReplayHarness(
            corpus,
            spec=spec or SlidingWindowSpec(n_windows=3),
            threshold=threshold,
            divergence_threshold=divergence_threshold,
        )
        self._log = get_logger("replay.canary")
        #: Incumbent replays cached by model identity — the incumbent
        #: does not change between candidate evaluations, so repeated
        #: swap attempts only pay for the candidate's replay.
        self._incumbent_cache: dict[int, ReplayReport] = {}

    def _replay_incumbent(self, incumbent: GenerativeModel) -> ReplayReport:
        key = id(incumbent)
        cached = self._incumbent_cache.get(key)
        if cached is None:
            cached = self.harness.replay(incumbent, "incumbent")
            self._incumbent_cache = {key: cached}
        return cached

    def _window_regressed(self, incumbent, candidate) -> bool:
        if incumbent.recall - candidate.recall > self.quality_margin:
            return True
        inc_p, cand_p = incumbent.precision, candidate.precision
        if math.isnan(inc_p):
            return False  # incumbent retrieved nothing: no precision bar
        if math.isnan(cand_p):
            # Incumbent had defined precision, candidate retrieved
            # nothing at all — only a regression if there was anything
            # to retrieve.
            return incumbent.n_retrieved > 0
        return inc_p - cand_p > self.quality_margin

    def evaluate(
        self, incumbent: GenerativeModel, candidate: GenerativeModel
    ) -> CanaryVerdict:
        """Shadow-score ``candidate`` against ``incumbent`` on replay."""
        incumbent_report = self._replay_incumbent(incumbent)
        candidate_report = self.harness.replay(candidate, "candidate")

        regressed = sum(
            1
            for inc, cand in zip(incumbent_report.results, candidate_report.results)
            if self._window_regressed(inc, cand)
        )
        inc_dist = incumbent_report.recommendation_distribution()
        cand_dist = candidate_report.recommendation_distribution()
        if inc_dist.sum() > 0 and cand_dist.sum() > 0:
            divergence = jensen_shannon_divergence(inc_dist, cand_dist)
        else:
            divergence = float("nan")

        if regressed > self.max_regressed:
            verdict = CanaryVerdict(
                passed=False,
                reason="quality_regression",
                detail=(
                    f"candidate regressed {regressed}/{incumbent_report.n_windows} "
                    f"replay windows beyond the {self.quality_margin:g} margin "
                    f"(allowed: {self.max_regressed})"
                ),
                regressed_windows=regressed,
                n_windows=incumbent_report.n_windows,
                recommendation_divergence=divergence,
                incumbent=incumbent_report,
                candidate=candidate_report,
            )
        elif not math.isnan(divergence) and divergence > self.divergence_threshold:
            verdict = CanaryVerdict(
                passed=False,
                reason="recommendation_divergence",
                detail=(
                    f"candidate recommendation distribution diverges from the "
                    f"incumbent's (JS {divergence:.4f} > "
                    f"{self.divergence_threshold:g}) on replayed traffic"
                ),
                regressed_windows=regressed,
                n_windows=incumbent_report.n_windows,
                recommendation_divergence=divergence,
                incumbent=incumbent_report,
                candidate=candidate_report,
            )
        else:
            verdict = CanaryVerdict(
                passed=True,
                reason="passed",
                detail=(
                    f"candidate held quality over {incumbent_report.n_windows} "
                    f"replay windows ({regressed} regressed, allowed "
                    f"{self.max_regressed})"
                ),
                regressed_windows=regressed,
                n_windows=incumbent_report.n_windows,
                recommendation_divergence=divergence,
                incumbent=incumbent_report,
                candidate=candidate_report,
            )
        self._log.info(
            "canary %s: %s", "passed" if verdict.passed else "REJECTED", verdict.detail
        )
        return verdict
