"""Time-sliced replay of a fitted model over historical traffic.

The sliding-window evaluator (``repro.recommend.evaluation``) answers
"how good is this *model family*" by retraining per window; the replay
harness answers the serving question — "how does this *already-fitted
artifact* hold up as traffic moves through time" — by sliding one frozen
model across the :class:`~repro.recommend.windows.SlidingWindowSpec`
windows.  Per window it scores every company's history as of the window
start, thresholds the scores exactly like the paper's evaluator
(owned products excluded, micro-averaged counts), and additionally
measures marginal drift: the Jensen-Shannon divergence between the
window's arrival traffic and the pre-replay reference distribution,
the same signal :class:`~repro.app.drift.DriftMonitor` watches live.

Results journal through the standard checkpoint machinery, so an
interrupted replay resumes per (label, window) cell.
"""

from __future__ import annotations

import datetime as dt
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro._validation import check_probability
from repro.app.drift import jensen_shannon_divergence
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel
from repro.obs import get_logger, trace
from repro.recommend.evaluation import _boolean_masks
from repro.recommend.windows import SlidingWindowSpec, Window
from repro.runtime import RunJournal, cell_key

__all__ = ["ReplayWindowResult", "ReplayReport", "ReplayHarness"]


@dataclass(frozen=True)
class ReplayWindowResult:
    """One window of a replay: quality counts plus the drift signal."""

    window_start: dt.date
    window_end: dt.date
    n_companies: int
    n_retrieved: int
    n_correct: int
    n_relevant: int
    #: JS divergence of the window's arrival traffic vs the reference
    #: marginal; NaN when the window saw no arrivals.
    js_divergence: float
    drifted: bool
    #: Per-token recommendation counts (how often the model pushed each
    #: product this window) — the canary compares these distributions
    #: between incumbent and candidate.
    recommended: tuple[int, ...]

    @property
    def precision(self) -> float:
        if self.n_retrieved == 0:
            return float("nan")
        return self.n_correct / self.n_retrieved

    @property
    def recall(self) -> float:
        if self.n_relevant == 0:
            return 0.0
        return self.n_correct / self.n_relevant

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if math.isnan(p):
            return float("nan")
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)

    def as_json(self) -> dict[str, Any]:
        return {
            "window_start": self.window_start.isoformat(),
            "window_end": self.window_end.isoformat(),
            "n_companies": self.n_companies,
            "n_retrieved": self.n_retrieved,
            "n_correct": self.n_correct,
            "n_relevant": self.n_relevant,
            "js_divergence": None if math.isnan(self.js_divergence) else self.js_divergence,
            "drifted": self.drifted,
            "recommended": list(self.recommended),
        }

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "ReplayWindowResult":
        js = record["js_divergence"]
        return cls(
            window_start=dt.date.fromisoformat(record["window_start"]),
            window_end=dt.date.fromisoformat(record["window_end"]),
            n_companies=int(record["n_companies"]),
            n_retrieved=int(record["n_retrieved"]),
            n_correct=int(record["n_correct"]),
            n_relevant=int(record["n_relevant"]),
            js_divergence=float("nan") if js is None else float(js),
            drifted=bool(record["drifted"]),
            recommended=tuple(int(x) for x in record["recommended"]),
        )


@dataclass(frozen=True)
class ReplayReport:
    """A full replay of one model across every window."""

    label: str
    threshold: float
    results: tuple[ReplayWindowResult, ...]

    @property
    def n_windows(self) -> int:
        return len(self.results)

    @property
    def windows_drifted(self) -> int:
        return sum(1 for r in self.results if r.drifted)

    def mean_recall(self) -> float:
        if not self.results:
            return float("nan")
        return float(np.mean([r.recall for r in self.results]))

    def mean_precision(self) -> float:
        """Mean over windows where precision is defined (paper's rule)."""
        values = [r.precision for r in self.results if not math.isnan(r.precision)]
        if not values:
            return float("nan")
        return float(np.mean(values))

    def max_divergence(self) -> float:
        values = [r.js_divergence for r in self.results if not math.isnan(r.js_divergence)]
        if not values:
            return float("nan")
        return float(max(values))

    def recommendation_distribution(self) -> np.ndarray:
        """Total per-token recommendation counts across all windows."""
        if not self.results:
            return np.zeros(0, dtype=np.int64)
        return np.sum([r.recommended for r in self.results], axis=0)

    def as_json(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "threshold": self.threshold,
            "results": [r.as_json() for r in self.results],
        }


class ReplayHarness:
    """Slides fitted models through time-sliced traffic.

    Parameters
    ----------
    corpus:
        The full universe (any ``Corpus``, columnar included); arrival
        dates drive window membership.
    spec:
        Sliding windows to replay (paper defaults when omitted).
    threshold:
        The recommender's phi applied to every window.
    divergence_threshold:
        A window whose arrival traffic diverges from the reference
        marginal by more than this is flagged ``drifted``.
    journal:
        Optional checkpoint journal; completed (label, window) cells are
        replayed from disk instead of re-scored.
    """

    def __init__(
        self,
        corpus: Corpus,
        *,
        spec: SlidingWindowSpec | None = None,
        threshold: float = 0.1,
        divergence_threshold: float = 0.05,
        journal: RunJournal | None = None,
    ) -> None:
        self.corpus = corpus
        self.spec = spec or SlidingWindowSpec()
        self.threshold = check_probability(threshold, "threshold")
        if divergence_threshold <= 0:
            raise ValueError(
                f"divergence_threshold must be positive, got {divergence_threshold}"
            )
        self.divergence_threshold = float(divergence_threshold)
        self.journal = journal
        self._log = get_logger("replay")
        self._windows = self.spec.windows()
        self._tasks: dict[dt.date, tuple[list[list[int]], list[set[int]], list[set[int]]]] = {}
        reference = corpus.truncated_before(self._windows[0].start)
        if reference.n_companies == 0:
            raise ValueError(
                f"no traffic before the first window {self._windows[0].start}; "
                "nothing to build a reference marginal from"
            )
        counts = reference.binary_matrix().sum(axis=0).astype(np.float64)
        self._reference_frequency = counts / counts.sum()

    # ------------------------------------------------------------------
    def _window_tasks(self, window: Window):
        """Histories/owned/truth token sets for one window (cached)."""
        cached = self._tasks.get(window.start)
        if cached is not None:
            return cached
        histories: list[list[int]] = []
        owned_sets: list[set[int]] = []
        truths: list[set[int]] = []
        for company in self.corpus.companies:
            before = company.categories_before(window.start)
            if not before:
                continue
            history = [self.corpus.token(c) for c, __ in before]
            truth = {
                self.corpus.token(c)
                for c in company.categories_within(window.start, window.end)
            }
            histories.append(history)
            owned_sets.append(set(history))
            truths.append(truth)
        self._tasks[window.start] = (histories, owned_sets, truths)
        return self._tasks[window.start]

    def _window_divergence(self, truths: list[set[int]]) -> tuple[float, bool]:
        """Drift of the window's arrival traffic against the reference."""
        arrivals = np.zeros(len(self._reference_frequency), dtype=np.float64)
        for tokens in truths:
            for token in tokens:
                arrivals[token] += 1.0
        if arrivals.sum() == 0:
            return float("nan"), False
        divergence = jensen_shannon_divergence(self._reference_frequency, arrivals)
        return divergence, divergence > self.divergence_threshold

    def _cell_key(self, label: str, window: Window) -> str:
        return cell_key("replay", label, f"{self.threshold:g}", window.start.isoformat())

    def replay(self, model: GenerativeModel, label: str) -> ReplayReport:
        """Score one fitted model across every window."""
        if not model.is_fitted:
            raise ValueError(f"model for replay label {label!r} is not fitted")
        results: list[ReplayWindowResult] = []
        for window in self._windows:
            key = self._cell_key(label, window)
            if self.journal is not None:
                recorded = self.journal.completed(key)
                if recorded is not None:
                    results.append(ReplayWindowResult.from_json(recorded.value))
                    continue
            with trace.span("replay.window"):
                result = self._score_window(model, window)
            if self.journal is not None:
                self.journal.record_ok(key, result.as_json())
            results.append(result)
        report = ReplayReport(
            label=label, threshold=self.threshold, results=tuple(results)
        )
        self._log.info(
            "replay %s: %d windows, mean recall %.3f, mean precision %.3f, "
            "%d drifted",
            label,
            report.n_windows,
            report.mean_recall(),
            report.mean_precision(),
            report.windows_drifted,
        )
        return report

    def _score_window(
        self, model: GenerativeModel, window: Window
    ) -> ReplayWindowResult:
        histories, owned_sets, truths = self._window_tasks(window)
        n_products = self.corpus.n_products
        if not histories:
            return ReplayWindowResult(
                window_start=window.start,
                window_end=window.end,
                n_companies=0,
                n_retrieved=0,
                n_correct=0,
                n_relevant=0,
                js_divergence=float("nan"),
                drifted=False,
                recommended=(0,) * n_products,
            )
        scores = model.batch_next_product_proba(histories)
        owned, truth = _boolean_masks(scores.shape, owned_sets, truths)
        hits = (scores >= self.threshold) & ~owned
        divergence, drifted = self._window_divergence(truths)
        return ReplayWindowResult(
            window_start=window.start,
            window_end=window.end,
            n_companies=len(histories),
            n_retrieved=int(hits.sum()),
            n_correct=int((hits & truth).sum()),
            n_relevant=int(truth.sum()),
            js_divergence=divergence,
            drifted=drifted,
            recommended=tuple(int(x) for x in hits.sum(axis=0)),
        )
