"""Content addressing for fitted models: corpus + hyperparameter digests.

The fit cache (:mod:`repro.runtime.cache`) keys fitted artifacts by *what
went into the fit*, not by when it ran: the model class, its canonicalized
constructor state, and a fingerprint of the training corpus.  Any change to
a company's install records — a new product, a shifted first-seen date, a
different vocabulary — changes the corpus fingerprint and therefore the
cache key, so stale artifacts can never be returned for fresh data.

Canonicalization is deliberately conservative: values the digest cannot
represent stably (live random generators, arbitrary objects) mark the model
*uncacheable* rather than risking a wrong hit.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from repro.data.corpus import Corpus

__all__ = ["Uncacheable", "fingerprint_corpus", "canonical_params", "cache_key"]


class Uncacheable(Exception):
    """Raised when a model's state cannot be digested into a stable key."""


def fingerprint_corpus(corpus: Corpus) -> str:
    """Stable hex digest of a corpus's full modelling content.

    Covers the vocabulary (order included — it defines token ids) and, per
    company, identity, firmographics and every install record (category +
    first-seen date).  Two corpora with identical fingerprints produce
    identical binary matrices, sequences and truncations.

    Delegates to :meth:`Corpus.fingerprint`, which caches the digest and,
    for a memmap-backed :class:`~repro.data.columnar.ColumnarCorpus`, reads
    the fingerprint its writer recorded in the on-disk manifest instead of
    re-walking N rows.  The digest algorithm is shared
    (:func:`repro.data.corpus.update_fingerprint`), so the value is
    byte-identical across backends and across releases.
    """
    return corpus.fingerprint()


def _canonical_value(value: Any) -> Any:
    """JSON-encodable stand-in for one attribute value.

    Raises :class:`Uncacheable` for values without a stable representation.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        return {
            "__ndarray__": hashlib.sha256(array.tobytes()).hexdigest(),
            "shape": list(array.shape),
            "dtype": str(array.dtype),
        }
    if isinstance(value, Corpus):
        return {"__corpus__": fingerprint_corpus(value)}
    if isinstance(value, np.random.Generator):
        raise Uncacheable("live random generators have no stable fingerprint")
    raise Uncacheable(f"cannot canonicalize {type(value).__name__} value")


def canonical_params(model: Any) -> dict[str, Any]:
    """Canonical constructor-state dict of an (unfitted) model instance.

    Every instance attribute participates — including private ones like the
    stored seed, since they change what ``fit`` computes.  Raises
    :class:`Uncacheable` when any attribute resists canonicalization.
    """
    return {
        name: _canonical_value(value)
        for name, value in sorted(vars(model).items())
    }


def cache_key(model: Any, corpus_fingerprint: str) -> str:
    """Content-addressed key for ``fit(model, corpus)``.

    Raises :class:`Uncacheable` when the model's state has no stable
    digest (callers treat that as "always refit").
    """
    payload = json.dumps(
        {
            "class": type(model).__qualname__,
            "params": canonical_params(model),
            "corpus": corpus_fingerprint,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()
