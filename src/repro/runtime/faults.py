"""Deterministic fault injection for exercising the fault-tolerance layer.

Production sweeps die in only a handful of ways — a worker raises, a
worker process vanishes, a task hangs, an artifact on disk rots — and all
of them are awkward to reproduce on demand.  This module turns each one
into a switch: a fault *spec* names a failure mode and a substring of the
fault *site* (the task's journal/cell key), and matching sites fail in
exactly the requested way.  Everything is driven by plain environment
variables so the same specs reach pool workers, subprocesses and CI shells
unchanged:

* ``REPRO_FAULTS`` — comma-separated specs, ``mode:match[:opt=val[;opt=val]]``::

      REPRO_FAULTS="crash:table1/s:lda"            # raise at the LDA cell
      REPRO_FAULTS="segfault:fig1/i:2:times=1"     # kill the worker once
      REPRO_FAULTS="hang:recommend:seconds=120"    # stall matching cells

  Modes: ``crash`` raises :class:`InjectedFault`; ``segfault`` terminates
  the process via ``os._exit`` (no cleanup, exactly like a real worker
  death); ``hang`` sleeps ``seconds`` (default 3600 — rely on a task
  timeout to reap it); ``corrupt`` garbles fit-cache artifacts as they are
  stored.  Options: ``times=N`` fires at most N times, ``seconds=S`` sets
  the hang duration.

* ``REPRO_FAULTS_STATE`` — a directory used to count ``times=N`` firings
  *across processes* (one ``O_EXCL`` marker file per firing); without it
  the count is per-process.

Injection points call :func:`inject` with their site key; when
``REPRO_FAULTS`` is unset that is one ``os.environ`` lookup, so the hooks
stay in production code permanently — the same philosophy as
:mod:`repro.obs`.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "active_faults",
    "corrupt_artifact",
    "inject",
    "parse_faults",
    "reset_firing_counts",
]

_MODES = ("crash", "segfault", "hang", "corrupt")

#: Exit status of an injected segfault (mirrors SIGSEGV's 128 + 11).
SEGFAULT_STATUS = 139


class InjectedFault(RuntimeError):
    """Raised by a ``crash`` fault at a matching site."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: a failure mode bound to a site substring."""

    mode: str
    match: str
    times: int | None = None
    seconds: float = 3600.0

    def matches(self, site: str) -> bool:
        """Whether this spec applies to ``site`` (plain substring match)."""
        return self.match in site

    @property
    def slug(self) -> str:
        """Filesystem-safe identity used for cross-process firing markers."""
        digest = hashlib.sha256(f"{self.mode}:{self.match}".encode()).hexdigest()
        return f"{self.mode}-{digest[:12]}"


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` value into specs.

    Grammar: comma-separated ``mode:match[:opt=val[;opt=val]]``.  The match
    may itself contain ``:``-free slashes (cell keys do); only the first
    and last colon-separated fields are structural.
    """
    specs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise ValueError(f"fault spec {chunk!r} needs mode:match")
        mode = parts[0].strip()
        if mode not in _MODES:
            raise ValueError(f"unknown fault mode {mode!r} (expected one of {_MODES})")
        times: int | None = None
        seconds = 3600.0
        if len(parts) > 2 and "=" in parts[-1]:
            for option in parts.pop().split(";"):
                name, _, value = option.partition("=")
                if name == "times":
                    times = int(value)
                elif name == "seconds":
                    seconds = float(value)
                else:
                    raise ValueError(f"unknown fault option {name!r}")
        match = ":".join(parts[1:])
        if not match:
            raise ValueError(f"fault spec {chunk!r} has an empty match")
        specs.append(FaultSpec(mode=mode, match=match, times=times, seconds=seconds))
    return tuple(specs)


_parsed: tuple[str, tuple[FaultSpec, ...]] = ("", ())
_local_counts: dict[str, int] = {}


def active_faults() -> tuple[FaultSpec, ...]:
    """The specs currently configured via ``REPRO_FAULTS`` (cached by value)."""
    global _parsed
    text = os.environ.get("REPRO_FAULTS", "")
    if text != _parsed[0]:
        _parsed = (text, parse_faults(text))
    return _parsed[1]


def reset_firing_counts() -> None:
    """Re-arm every ``times=N`` spec counted per-process.

    Long-lived processes (the serving layer, its tests and the load
    harness) inject the same spec in separate phases of one run; resetting
    the per-process counters between phases lets a consumed spec fire
    again.  Cross-process counts under ``REPRO_FAULTS_STATE`` are marker
    files — remove the directory to reset those.
    """
    _local_counts.clear()


def _claim_firing(spec: FaultSpec) -> bool:
    """Whether ``spec`` may fire once more, consuming one of its firings.

    With ``times=None`` the spec always fires.  Otherwise firings are
    counted through ``O_CREAT|O_EXCL`` marker files under
    ``REPRO_FAULTS_STATE`` (atomic across processes) or, without a state
    directory, a per-process counter.
    """
    if spec.times is None:
        return True
    state_dir = os.environ.get("REPRO_FAULTS_STATE", "")
    if not state_dir:
        fired = _local_counts.get(spec.slug, 0)
        if fired >= spec.times:
            return False
        _local_counts[spec.slug] = fired + 1
        return True
    root = Path(state_dir)
    root.mkdir(parents=True, exist_ok=True)
    for n in range(spec.times):
        try:
            os.close(
                os.open(root / f"{spec.slug}.{n}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            )
            return True
        except OSError as exc:  # marker already claimed
            if exc.errno != errno.EEXIST:
                raise
    return False


def inject(site: str) -> None:
    """Fire the first configured fault matching ``site``, if any.

    Called at task entry points with the task's cell key.  A no-op (one
    environment lookup) when ``REPRO_FAULTS`` is unset.
    """
    for spec in active_faults():
        if spec.mode == "corrupt" or not spec.matches(site):
            continue
        if not _claim_firing(spec):
            continue
        if spec.mode == "crash":
            raise InjectedFault(f"injected crash at {site!r}")
        if spec.mode == "hang":
            time.sleep(spec.seconds)
            return
        if spec.mode == "segfault":
            os._exit(SEGFAULT_STATUS)


def corrupt_artifact(path: str | os.PathLike[str], site: str) -> None:
    """Garble a freshly written artifact when a ``corrupt`` fault matches.

    Called by the fit cache after each atomic store; the corruption is an
    in-place overwrite, exactly the shape of on-disk rot the cache's
    corruption-as-miss policy must absorb.
    """
    for spec in active_faults():
        if spec.mode != "corrupt" or not spec.matches(site):
            continue
        if not _claim_firing(spec):
            continue
        with open(path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\x00CORRUPTED-BY-FAULT-INJECTION\x00")
        return
