"""Content-addressed cache of fitted models.

Retraining dominates the cost of the paper's protocols: the sliding-window
evaluation refits every model 13 times per sweep, and repeated benchmark or
CLI runs refit the same (model, training-prefix) pairs over and over.  The
cache stores each fitted model once, keyed by *what determined the fit* —
model class, canonicalized hyperparameters (seed included) and the training
corpus fingerprint (:mod:`repro.runtime.fingerprint`) — and replays it
through the model's own ``save``/``load`` round-trip, so a hit returns a
model whose parameters are bit-identical to the freshly fitted ones.

Failure policy: anything unexpected — a corrupted file, a class the
artifact does not match, a model that cannot serialise — degrades to a
cache *miss* and a fresh fit, never an error and never a wrong model.
Writes go through a temp file + atomic rename so concurrent workers racing
on the same key simply overwrite each other with identical bytes.

Hits and misses are counted on the instance (``hits`` / ``misses``) and,
when metrics are enabled, on the ``cache.hit`` / ``cache.miss`` counters.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, TYPE_CHECKING

from repro.obs import get_logger, metrics, trace
from repro.runtime import faults
from repro.runtime.fingerprint import Uncacheable, cache_key, fingerprint_corpus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.corpus import Corpus
    from repro.models.base import GenerativeModel

__all__ = ["FitCache", "fit_model"]

#: Temp files older than this are orphans of a dead writer, safe to sweep.
_ORPHAN_AGE_S = 3600.0


def fit_model(
    factory: Callable[[], "GenerativeModel"],
    corpus: "Corpus",
    cache: "FitCache | None" = None,
    fingerprint: str | None = None,
) -> "GenerativeModel":
    """``factory().fit(corpus)``, through ``cache`` when one is given.

    The shared fit entry point for experiment drivers and worker tasks:
    callers stay oblivious to whether a cache is configured.
    """
    if cache is not None:
        return cache.fit(factory, corpus, corpus_fingerprint=fingerprint)
    return factory().fit(corpus)


class FitCache:
    """Directory-backed store of fitted models, addressed by content key.

    Parameters
    ----------
    root:
        Cache directory; created on first use.  Safe to share between
        processes — entries are immutable once written.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self._sweep_orphans()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FitCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"

    # Picklability: a cache shipped to a worker process is just its path;
    # hit/miss tallies stay local to each process (the shared metrics
    # counters are merged back by the executor).
    def __getstate__(self) -> dict[str, Any]:
        return {"root": self.root}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.root = state["root"]
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def fit(
        self,
        factory: Callable[[], "GenerativeModel"],
        corpus: "Corpus",
        *,
        corpus_fingerprint: str | None = None,
    ) -> "GenerativeModel":
        """``factory().fit(corpus)``, memoized by content key.

        ``corpus_fingerprint`` short-circuits re-hashing when the caller
        already fingerprinted the corpus (the evaluator fingerprints each
        window's training prefix once and reuses it across models).
        """
        model = factory()
        try:
            fingerprint = (
                corpus_fingerprint
                if corpus_fingerprint is not None
                else fingerprint_corpus(corpus)
            )
            key = cache_key(model, fingerprint)
        except Uncacheable:
            return model.fit(corpus)
        cached = self.load(type(model), key)
        if cached is not None:
            self.hits += 1
            metrics.inc("cache.hit")
            trace.add_counter("cache.hit")
            return cached
        self.misses += 1
        metrics.inc("cache.miss")
        trace.add_counter("cache.miss")
        fitted = model.fit(corpus)
        self.store(fitted, key)
        return fitted

    def load(self, model_cls: type, key: str) -> "GenerativeModel | None":
        """The cached model under ``key``, or None (corruption == miss)."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            return model_cls.load(path)
        except Exception:
            return None

    def store(self, model: "GenerativeModel", key: str) -> None:
        """Persist a fitted model under ``key`` (best effort, atomic)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                suffix=".npz", prefix=".tmp-", dir=self.root
            )
            os.close(fd)
            try:
                model.save(tmp_name)
                os.replace(tmp_name, self._path(key))
                faults.corrupt_artifact(self._path(key), f"cache/{key}")
            finally:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)
        except Exception:
            # A cache that cannot write is merely a cache that never hits —
            # but never a silent one.
            metrics.inc("cache.store_failed")
            trace.add_counter("cache.store_failed")
            get_logger("runtime.cache").warning(
                "failed to store cache entry %s", key, exc_info=True
            )

    def _sweep_orphans(self) -> None:
        """Delete stale ``.tmp-*.npz`` left by writers that died mid-store.

        ``mkstemp`` + ``os.replace`` is atomic for the entry itself, but a
        process killed between the two leaks the temp file forever.  Only
        files older than an hour are swept, so a live concurrent writer's
        temp file is never yanked out from under it.
        """
        if not self.root.is_dir():
            return
        cutoff = time.time() - _ORPHAN_AGE_S
        for orphan in self.root.glob(".tmp-*.npz"):
            try:
                if orphan.stat().st_mtime < cutoff:
                    orphan.unlink()
            except OSError:  # pragma: no cover - raced with another sweeper
                continue
