"""Parallel experiment runtime: fault-tolerant fan-out, fit cache, journal.

``repro.runtime`` is the execution layer under every expensive experiment
path:

* :class:`~repro.runtime.executor.ParallelMap` — deterministic process-pool
  map with an inline ``n_jobs=1`` fallback, ordered results, worker-side
  observability capture merged back into the parent trace, and per-task
  fault tolerance: :meth:`~repro.runtime.executor.ParallelMap.map_outcomes`
  returns :class:`~repro.runtime.executor.Ok` /
  :class:`~repro.runtime.executor.TaskError` per payload, with retry,
  backoff, per-task timeouts and broken-pool recovery;
* :func:`~repro.runtime.executor.derive_seed` — stable per-task seed
  derivation from a base seed plus type-tagged task identity keys;
* :class:`~repro.runtime.cache.FitCache` — content-addressed store of
  fitted models keyed by (model class, canonical hyperparameters, corpus
  fingerprint), replayed through each model's ``save``/``load`` round-trip;
* :class:`~repro.runtime.journal.RunJournal` — the JSONL checkpoint
  journal behind ``--checkpoint-dir``/``--resume``: completed sweep cells
  are recorded as they finish and skipped on resume;
* :mod:`~repro.runtime.faults` — deterministic fault injection (crash,
  worker death, hang, artifact corruption) keyed on cell identity, so the
  fault-tolerance layer is testable in CI;
* :mod:`~repro.runtime.fingerprint` — the digests behind the cache keys.

The sliding-window recommendation evaluator and every grid-sweep driver
accept ``n_jobs`` / ``fit_cache`` / ``retries`` / ``task_timeout`` /
``journal`` and route their hot loops through this module; the CLI exposes
the same knobs as ``--jobs``, ``--cache-dir``, ``--retries``,
``--task-timeout`` and ``--checkpoint-dir``/``--resume``.
"""

from __future__ import annotations

from repro.runtime import faults
from repro.runtime.cache import FitCache, fit_model
from repro.runtime.executor import (
    Ok,
    ParallelMap,
    TaskError,
    TaskFailedError,
    derive_seed,
    resolve_n_jobs,
    run_with_retries,
)
from repro.runtime.fingerprint import (
    Uncacheable,
    cache_key,
    canonical_params,
    fingerprint_corpus,
)
from repro.runtime.journal import JournalEntry, RunJournal, cell_key

__all__ = [
    "ParallelMap",
    "FitCache",
    "Ok",
    "TaskError",
    "TaskFailedError",
    "JournalEntry",
    "RunJournal",
    "cell_key",
    "derive_seed",
    "faults",
    "fit_model",
    "resolve_n_jobs",
    "run_with_retries",
    "Uncacheable",
    "cache_key",
    "canonical_params",
    "fingerprint_corpus",
]
