"""Parallel experiment runtime: process-pool fan-out and the fit cache.

``repro.runtime`` is the execution layer under every expensive experiment
path:

* :class:`~repro.runtime.executor.ParallelMap` — deterministic process-pool
  map with an inline ``n_jobs=1`` fallback, ordered results and worker-side
  observability capture merged back into the parent trace;
* :func:`~repro.runtime.executor.derive_seed` — stable per-task seed
  derivation from a base seed plus task identity keys;
* :class:`~repro.runtime.cache.FitCache` — content-addressed store of
  fitted models keyed by (model class, canonical hyperparameters, corpus
  fingerprint), replayed through each model's ``save``/``load`` round-trip;
* :mod:`~repro.runtime.fingerprint` — the digests behind the cache keys.

The sliding-window recommendation evaluator and every grid-sweep driver
accept ``n_jobs`` / ``fit_cache`` and route their hot loops through this
module; the CLI exposes the same knobs as ``--jobs`` and ``--cache-dir``.
"""

from __future__ import annotations

from repro.runtime.cache import FitCache, fit_model
from repro.runtime.executor import ParallelMap, derive_seed, resolve_n_jobs
from repro.runtime.fingerprint import (
    Uncacheable,
    cache_key,
    canonical_params,
    fingerprint_corpus,
)

__all__ = [
    "ParallelMap",
    "FitCache",
    "derive_seed",
    "fit_model",
    "resolve_n_jobs",
    "Uncacheable",
    "cache_key",
    "canonical_params",
    "fingerprint_corpus",
]
