"""Checkpoint journal: per-cell outcomes of a sweep, resumable after a kill.

A long sweep (the Table 1 grid, the 13-window retrain protocol) is a list
of independent cells, and a run that dies halfway should not owe the
universe the cells it already paid for.  :class:`RunJournal` is an
append-only JSONL file under the ``--checkpoint-dir``: one line per
finished cell, keyed by the cell's identity (the same type-tagged identity
that feeds :func:`~repro.runtime.executor.derive_seed`), holding either
the cell's JSON result or its recorded failure.  Every line is flushed and
fsynced before the driver moves on, so the journal is exactly as complete
as the sweep was when the process died.

Resume semantics: drivers consult :meth:`RunJournal.completed` before
running a cell and replay the stored result on a hit (counted as
``journal.skip``).  Failed cells are *recorded* but not skipped — a resume
retries them, which is what you want after fixing whatever killed them.
A meta header pins the run configuration (command, corpus size, seed);
resuming against a journal whose header disagrees discards the stale
entries instead of mixing two different runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs import get_logger, metrics, trace

__all__ = ["JournalEntry", "RunJournal", "cell_key"]


def cell_key(*parts: int | str) -> str:
    """Stable, human-readable identity for one sweep cell.

    Each part is tagged with its type (``i:`` for integers, ``s:`` for
    strings) so ``cell_key("fig1", 1)`` and ``cell_key("fig1", "1")`` name
    different cells — the same discrimination :func:`derive_seed` applies
    to its spawn keys.
    """
    tagged = []
    for part in parts:
        if isinstance(part, (bool,)):
            raise TypeError("cell keys take ints and strings, not bools")
        if isinstance(part, (int, np.integer)):
            tagged.append(f"i:{int(part)}")
        elif isinstance(part, str):
            tagged.append(f"s:{part}")
        else:
            raise TypeError(f"cell keys take ints and strings, not {type(part).__name__}")
    return "/".join(tagged)


@dataclass(frozen=True)
class JournalEntry:
    """One journaled cell: its key, status and stored result or error."""

    key: str
    status: str  # "ok" | "failed"
    value: Any = None
    error: str | None = None
    attempts: int = 1


class RunJournal:
    """Append-only JSONL record of completed sweep cells.

    Parameters
    ----------
    path:
        The journal file; parent directories are created on demand.
    meta:
        Run-identifying configuration written as the first line.  On
        ``resume``, a stored header that disagrees with ``meta`` marks the
        journal stale: its entries are discarded and the file restarted.
    resume:
        Load existing entries (``True``) or start the journal fresh,
        truncating whatever was there (``False``, the default).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        meta: dict[str, Any] | None = None,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.meta = dict(meta) if meta else {}
        self._entries: dict[str, JournalEntry] = {}
        if resume and self.path.exists():
            self._load()
        else:
            self._restart()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunJournal({str(self.path)!r}, entries={len(self._entries)})"

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        stored_meta: dict[str, Any] = {}
        entries: dict[str, JournalEntry] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line from a kill mid-write: everything
                    # before it is intact, the torn cell simply re-runs.
                    get_logger("runtime.journal").warning(
                        "journal %s has a torn line; ignoring it", self.path
                    )
                    continue
                if "__meta__" in record:
                    stored_meta = record["__meta__"]
                    continue
                entries[record["key"]] = JournalEntry(
                    key=record["key"],
                    status=record["status"],
                    value=record.get("value"),
                    error=record.get("error"),
                    attempts=int(record.get("attempts", 1)),
                )
        if self.meta and stored_meta != self.meta:
            get_logger("runtime.journal").warning(
                "journal %s was written by a different run configuration "
                "(%r != %r); discarding its %d entries",
                self.path,
                stored_meta,
                self.meta,
                len(entries),
            )
            self._restart()
            return
        self._entries = entries

    def _restart(self) -> None:
        self._entries = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            if self.meta:
                handle.write(json.dumps({"__meta__": self.meta}, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _append(self, record: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    def get(self, key: str) -> JournalEntry | None:
        """The stored entry under ``key`` (any status), or None."""
        return self._entries.get(key)

    def completed(self, key: str) -> JournalEntry | None:
        """The successful entry under ``key``, counting a ``journal.skip``.

        Failed entries return None — a resumed sweep retries them.
        """
        entry = self._entries.get(key)
        if entry is None or entry.status != "ok":
            return None
        metrics.inc("journal.skip")
        trace.add_counter("journal.skip")
        return entry

    def record_ok(self, key: str, value: Any, *, attempts: int = 1) -> None:
        """Journal a completed cell with its JSON-serializable result."""
        entry = JournalEntry(key=key, status="ok", value=value, attempts=attempts)
        self._entries[key] = entry
        self._append(
            {"key": key, "status": "ok", "value": value, "attempts": attempts}
        )
        metrics.inc("journal.record")

    def record_failure(self, key: str, error: str, *, attempts: int = 1) -> None:
        """Journal a cell that exhausted its attempts, with the error text."""
        entry = JournalEntry(key=key, status="failed", error=error, attempts=attempts)
        self._entries[key] = entry
        self._append(
            {"key": key, "status": "failed", "error": error, "attempts": attempts}
        )
        metrics.inc("journal.record")
        get_logger("runtime.journal").warning(
            "cell %s recorded as failed after %d attempt(s): %s", key, attempts, error
        )
