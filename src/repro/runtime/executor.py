"""Deterministic process-pool fan-out for experiment workloads.

:class:`ParallelMap` is the one execution primitive the experiment stack
shares: drivers hand it a module-level task function plus a list of
picklable payloads and get results back **in payload order**, independent
of which worker finished first.  ``n_jobs=1`` (the default) runs every
task inline in the calling process — no pool, no pickling, no reordering —
so the serial path is bit-identical to a plain ``for`` loop.

Observability crosses the process boundary: when tracing or metrics are
enabled in the parent, each worker records its own spans and counters in a
clean slate, ships them home with the task result, and the parent merges
them under the span that issued the fan-out (``trace.merge_subtree``).  A
``--trace`` report therefore shows worker fit/score spans exactly where
they belong, just with wall times that may overlap.

Determinism rules:

* results are gathered in submission order, always;
* tasks that need randomness derive their seed from the task identity via
  :func:`derive_seed` (or carry an explicit seed in the payload), never
  from worker-local state;
* payloads that cannot be pickled degrade to the inline path with a
  logged warning instead of failing — the caller observes the same
  results, just without the fan-out.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from repro._validation import check_positive_int
from repro.obs import disable_all, enable_all, get_logger, metrics, reset_all, trace

__all__ = ["ParallelMap", "derive_seed", "resolve_n_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def derive_seed(base: int | None, *keys: int | str) -> int:
    """Stable per-task seed from a base seed and the task's identity keys.

    Built on :class:`numpy.random.SeedSequence` spawn keys, so sibling
    tasks get statistically independent streams and the mapping never
    depends on execution order or process identity::

        seed = derive_seed(7, "fig1", n_layers, nodes)
    """
    entropy = 0 if base is None else int(base)
    spawn_key = tuple(
        int.from_bytes(str(key).encode(), "little") % (2**63) for key in keys
    )
    sequence = np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
    return int(sequence.generate_state(1, dtype=np.uint64)[0] % (2**63))


def resolve_n_jobs(n_jobs: int) -> int:
    """Normalise an ``n_jobs`` request: ``-1`` means all CPUs, else >= 1."""
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    return check_positive_int(n_jobs, "n_jobs")


def _run_captured(
    fn: Callable[[Any], Any], payload: Any, capture_obs: bool
) -> tuple[Any, list[dict[str, Any]], dict[str, float]]:
    """Worker-side task wrapper: run ``fn`` with a clean obs slate.

    Returns ``(result, span_trees, counter_totals)``; the obs payloads are
    empty when capture is off.  Runs in the worker process — the reset only
    touches worker-local state.
    """
    if not capture_obs:
        return fn(payload), [], {}
    reset_all()
    enable_all()
    try:
        result = fn(payload)
        spans = [root.as_dict() for root in trace.roots()]
        counters = dict(metrics.snapshot()["counters"])
    finally:
        disable_all()
        reset_all()
    return result, spans, counters


class ParallelMap:
    """Ordered, observable map over a process pool.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` (default) executes inline and is
        bit-identical to a serial loop, ``-1`` uses every CPU.
    """

    def __init__(self, n_jobs: int = 1) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ParallelMap(n_jobs={self.n_jobs})"

    def map(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every payload; results in payload order.

        With more than one job, ``fn`` must be a module-level function and
        the payloads picklable; anything unpicklable falls back to the
        inline path (same results, logged at warning level).
        """
        payloads = list(payloads)
        if self.n_jobs == 1 or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        try:
            pickle.dumps(fn)
        except Exception:
            get_logger("runtime").warning(
                "task function %r is not picklable; running inline", fn
            )
            return [fn(payload) for payload in payloads]
        capture = trace.is_enabled() or metrics.is_enabled()
        try:
            return self._map_pool(fn, payloads, capture)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            get_logger("runtime").warning(
                "parallel map degraded to inline execution: %s", exc
            )
            return [fn(payload) for payload in payloads]

    def _map_pool(
        self, fn: Callable[[T], R], payloads: list[T], capture: bool
    ) -> list[R]:
        workers = min(self.n_jobs, len(payloads))
        with trace.span("runtime.parallel_map") as node:
            if node is not None:
                node.add_counter("tasks", len(payloads))
                node.add_counter("workers", workers)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_run_captured, fn, payload, capture)
                    for payload in payloads
                ]
                # Gather strictly in submission order: completion order
                # never leaks into results.
                outcomes = [future.result() for future in futures]
            results: list[R] = []
            for result, span_trees, counters in outcomes:
                results.append(result)
                for tree in span_trees:
                    trace.merge_subtree(tree)
                for name, value in counters.items():
                    metrics.inc(name, value)
            metrics.inc("runtime.tasks", len(payloads))
        return results
