"""Deterministic, fault-tolerant process-pool fan-out for experiments.

:class:`ParallelMap` is the one execution primitive the experiment stack
shares: drivers hand it a module-level task function plus a list of
picklable payloads and get results back **in payload order**, independent
of which worker finished first.  ``n_jobs=1`` (the default) runs every
task inline in the calling process — no pool, no pickling, no reordering —
so the serial path is bit-identical to a plain ``for`` loop.

Fault tolerance: :meth:`ParallelMap.map_outcomes` returns one
:class:`Ok`/:class:`TaskError` per payload instead of letting the first
exception abort the pool.  Failures are retried up to ``retries`` times
with exponential ``backoff``; ``task_timeout`` bounds each task's wall
time (pool mode only — a hung worker is killed and the pool respawned);
an abruptly dead worker (``BrokenProcessPool``) respawns the pool and
re-runs **only the unfinished tasks** — completed results are never
discarded and never re-executed.  :meth:`ParallelMap.map` keeps the
original raise-on-first-error contract on top of the same machinery.

Observability crosses the process boundary: when tracing or metrics are
enabled in the parent, each worker records its own spans and counters in a
clean slate, ships them home with the task result, and the parent merges
them under the span that issued the fan-out (``trace.merge_subtree``).
Failure handling has counters of its own: ``runtime.task_retry``,
``runtime.task_failed`` and ``runtime.pool_respawn``.

Determinism rules:

* results are gathered in submission order, always;
* tasks that need randomness derive their seed from the task identity via
  :func:`derive_seed` (or carry an explicit seed in the payload), never
  from worker-local state;
* an unpicklable function or payload degrades the whole map to the inline
  path **before anything is submitted** (preflight pickling), so no task
  can ever run twice because a sibling failed to serialize.
"""

from __future__ import annotations

import functools
import os
import pickle
import time
import traceback as traceback_module
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, TypeVar, Union

import numpy as np

from repro._validation import check_positive_int
from repro.obs import disable_all, enable_all, get_logger, metrics, reset_all, trace

__all__ = [
    "Ok",
    "ParallelMap",
    "TaskError",
    "TaskFailedError",
    "derive_seed",
    "resolve_n_jobs",
    "run_with_retries",
]

T = TypeVar("T")
R = TypeVar("R")


def derive_seed(base: int | None, *keys: int | str) -> int:
    """Stable per-task seed from a base seed and the task's identity keys.

    Built on :class:`numpy.random.SeedSequence` spawn keys, so sibling
    tasks get statistically independent streams and the mapping never
    depends on execution order or process identity::

        seed = derive_seed(7, "fig1", n_layers, nodes)

    Each key contributes a type tag alongside its value, so integer and
    string keys that render identically — ``derive_seed(7, 1)`` versus
    ``derive_seed(7, "1")`` — spawn *different* streams.  (This tagging is
    a deliberate fingerprint bump over the first release, which conflated
    the two.)
    """
    entropy = 0 if base is None else int(base)
    spawn_key: list[int] = []
    for key in keys:
        spawn_key.append(0 if isinstance(key, (int, np.integer)) else 1)
        spawn_key.append(int.from_bytes(str(key).encode(), "little") % (2**63))
    sequence = np.random.SeedSequence(entropy=entropy, spawn_key=tuple(spawn_key))
    return int(sequence.generate_state(1, dtype=np.uint64)[0] % (2**63))


def resolve_n_jobs(n_jobs: int) -> int:
    """Normalise an ``n_jobs`` request: ``-1`` means all CPUs, else >= 1."""
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    return check_positive_int(n_jobs, "n_jobs")


class TaskFailedError(RuntimeError):
    """Raised by :meth:`ParallelMap.map` for a failure with no live exception."""


@dataclass(frozen=True)
class Ok:
    """A task that completed, with its result and the attempts it took."""

    value: Any
    attempts: int = 1


@dataclass(frozen=True)
class TaskError:
    """A task that exhausted its attempts, with the failure's anatomy.

    ``message``/``error_type``/``traceback`` are plain strings so the
    outcome can be journaled as JSON; ``exception`` carries the live
    exception object when one exists (worker raises travel back through
    the pool) for callers that re-raise.
    """

    message: str
    error_type: str
    traceback: str
    attempts: int
    exception: BaseException | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_exception(cls, exc: BaseException, attempts: int) -> "TaskError":
        return cls(
            message=str(exc) or exc.__class__.__name__,
            error_type=type(exc).__name__,
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempts=attempts,
            exception=exc,
        )

    def describe(self) -> str:
        """One-line ``Type: message`` rendering for journals and logs."""
        return f"{self.error_type}: {self.message}"

    def reraise(self) -> None:
        """Re-raise the original exception (or a :class:`TaskFailedError`)."""
        if self.exception is not None:
            raise self.exception
        raise TaskFailedError(self.describe())


TaskOutcome = Union[Ok, TaskError]


def run_with_retries(
    fn: Callable[[], R], *, retries: int = 0, backoff: float = 0.0
) -> TaskOutcome:
    """Call ``fn`` with up to ``1 + retries`` attempts; never raises.

    The inline counterpart of the pool's retry loop, shared by drivers
    whose work is a single in-process cell (fig56, the serial evaluator
    path).  Retries count on ``runtime.task_retry``; exhaustion counts on
    ``runtime.task_failed`` and returns a :class:`TaskError`.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return Ok(fn(), attempts=attempts)
        except Exception as exc:
            if attempts <= retries:
                metrics.inc("runtime.task_retry")
                if backoff > 0.0:
                    time.sleep(backoff * 2 ** (attempts - 1))
                continue
            metrics.inc("runtime.task_failed")
            return TaskError.from_exception(exc, attempts=attempts)


def _run_captured(
    fn: Callable[[Any], Any], payload: Any, capture_obs: bool
) -> tuple[Any, list[dict[str, Any]], dict[str, float]]:
    """Worker-side task wrapper: run ``fn`` with a clean obs slate.

    Returns ``(result, span_trees, counter_totals)``; the obs payloads are
    empty when capture is off.  Runs in the worker process — the reset only
    touches worker-local state.
    """
    if not capture_obs:
        return fn(payload), [], {}
    reset_all()
    enable_all()
    try:
        result = fn(payload)
        spans = [root.as_dict() for root in trace.roots()]
        counters = dict(metrics.snapshot()["counters"])
    finally:
        disable_all()
        reset_all()
    return result, spans, counters


class ParallelMap:
    """Ordered, observable, fault-tolerant map over a process pool.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` (default) executes inline and is
        bit-identical to a serial loop, ``-1`` uses every CPU.
    retries:
        Extra attempts per task after its first failure (crash, worker
        death or timeout alike).  Default 0 — fail fast.
    backoff:
        Base seconds of exponential backoff between a task's attempts
        (``backoff * 2**(attempt-1)``).  Default 0 — retry immediately.
    task_timeout:
        Wall-clock seconds allowed per task.  Enforced in pool mode only
        (a hung inline task cannot be preempted): an overdue task is
        marked failed (or retried), its worker killed and the pool
        respawned for the remaining tasks.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        *,
        retries: int = 0,
        backoff: float = 0.0,
        task_timeout: float | None = None,
    ) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0.0:
            raise ValueError("backoff must be >= 0")
        if task_timeout is not None and task_timeout <= 0.0:
            raise ValueError("task_timeout must be positive")
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.task_timeout = task_timeout

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ParallelMap(n_jobs={self.n_jobs}, retries={self.retries}, "
            f"task_timeout={self.task_timeout})"
        )

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every payload; results in payload order.

        The historical raise-on-error contract: the first task (in payload
        order) that exhausts its attempts has its exception re-raised.
        With more than one job, ``fn`` must be a module-level function and
        the payloads picklable; anything unpicklable falls back to the
        inline path (same results, logged at warning level).
        """
        payloads = list(payloads)
        if self._inline(fn, payloads):
            return self._map_inline(fn, payloads, raise_on_error=True)
        results: list[R] = []
        for outcome in self._map_pool(fn, payloads):
            if isinstance(outcome, TaskError):
                outcome.reraise()
            results.append(outcome.value)
        return results

    def map_outcomes(
        self,
        fn: Callable[[T], R],
        payloads: Sequence[T],
        *,
        on_outcome: Callable[[int, TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        """Apply ``fn`` to every payload; one :class:`Ok`/:class:`TaskError` each.

        Never raises for a task failure: each payload's slot reports what
        happened to it, in payload order, and one poisoned cell cannot
        discard its siblings' finished work.

        ``on_outcome(index, outcome)`` fires in the calling process the
        moment a payload's outcome is final — after its last attempt, in
        completion order, while later tasks may still be running.  Sweep
        drivers journal from this hook so a kill mid-sweep keeps every
        cell that already finished.
        """
        payloads = list(payloads)
        if self._inline(fn, payloads):
            return self._map_inline(
                fn, payloads, raise_on_error=False, on_outcome=on_outcome
            )
        return self._map_pool(fn, payloads, on_outcome=on_outcome)

    # ------------------------------------------------------------------
    def _inline(self, fn: Callable[[T], R], payloads: list[T]) -> bool:
        """Whether this map must run inline (serial, tiny, or unpicklable).

        Pickling is preflighted *before submission*: a payload that cannot
        cross the process boundary switches the whole map inline up front,
        never after siblings have already executed in the pool.
        """
        if self.n_jobs == 1 or len(payloads) <= 1:
            return True
        try:
            pickle.dumps(fn)
        except Exception:
            get_logger("runtime").warning(
                "task function %r is not picklable; running inline", fn
            )
            return True
        for index, payload in enumerate(payloads):
            try:
                pickle.dumps(payload)
            except Exception:
                get_logger("runtime").warning(
                    "payload %d is not picklable; running the whole map inline",
                    index,
                )
                return True
        return False

    def _map_inline(
        self,
        fn: Callable[[T], R],
        payloads: list[T],
        *,
        raise_on_error: bool,
        on_outcome: Callable[[int, TaskOutcome], None] | None = None,
    ) -> list[Any]:
        """The in-process path: values (``raise_on_error``) or outcomes."""
        results: list[Any] = []
        for index, payload in enumerate(payloads):
            outcome = run_with_retries(
                functools.partial(fn, payload),
                retries=self.retries,
                backoff=self.backoff,
            )
            if on_outcome is not None:
                on_outcome(index, outcome)
            if raise_on_error and isinstance(outcome, TaskError):
                outcome.reraise()
            results.append(outcome.value if raise_on_error else outcome)
        return results

    # ------------------------------------------------------------------
    def _map_pool(
        self,
        fn: Callable[[T], R],
        payloads: list[T],
        *,
        on_outcome: Callable[[int, TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        """Pool execution with retry, timeout and broken-pool recovery.

        Futures are drained strictly in submission order.  A worker raise
        fails (or requeues) just its own task; a timeout or dead worker
        additionally poisons the pool, so the round is cut short: finished
        siblings keep their results, unfinished ones are requeued with
        their attempt refunded, and a fresh pool takes over.

        A dead worker cannot be attributed with certainty — the charge
        lands on the first task still unresolved in submission order,
        which may be a concurrently running sibling of the real culprit.
        Sweeps that expect worker deaths should allow ``retries >= 1`` so
        a misattributed task gets its result back on the respawned pool.
        """
        capture = trace.is_enabled() or metrics.is_enabled()
        n = len(payloads)
        workers = min(self.n_jobs, n)
        outcomes: list[TaskOutcome | None] = [None] * n
        attempts = [0] * n
        notified = [False] * n
        log = get_logger("runtime")

        def notify(i: int) -> None:
            # Fire the hook exactly once per task, when its slot resolves.
            if on_outcome is not None and outcomes[i] is not None and not notified[i]:
                notified[i] = True
                on_outcome(i, outcomes[i])
        with trace.span("runtime.parallel_map") as node:
            if node is not None:
                node.add_counter("tasks", n)
                node.add_counter("workers", workers)
            pool = ProcessPoolExecutor(max_workers=workers)
            pending = list(range(n))
            rounds = 0
            try:
                while pending:
                    if rounds and self.backoff > 0.0:
                        time.sleep(self.backoff * 2 ** (rounds - 1))
                    rounds += 1
                    futures = {}
                    for i in pending:
                        attempts[i] += 1
                        futures[i] = pool.submit(_run_captured, fn, payloads[i], capture)
                    pending = []
                    poisoned = False
                    for i, future in futures.items():
                        if poisoned:
                            # The pool is going down; salvage whatever
                            # already finished, requeue the rest with the
                            # attempt refunded (the fault was not theirs).
                            if future.done():
                                self._settle(i, future, attempts, outcomes, pending, log)
                                notify(i)
                            else:
                                attempts[i] -= 1
                                pending.append(i)
                            continue
                        try:
                            packed = future.result(timeout=self.task_timeout)
                            outcomes[i] = Ok(self._merge(packed), attempts=attempts[i])
                        except FutureTimeoutError:
                            self._fail(
                                i,
                                TimeoutError(
                                    f"task {i} exceeded task_timeout="
                                    f"{self.task_timeout}s"
                                ),
                                attempts,
                                outcomes,
                                pending,
                                log,
                            )
                            poisoned = True
                        except BrokenProcessPool as exc:
                            self._fail(i, exc, attempts, outcomes, pending, log)
                            poisoned = True
                        except Exception as exc:
                            self._fail(i, exc, attempts, outcomes, pending, log)
                        notify(i)
                    if poisoned:
                        metrics.inc("runtime.pool_respawn")
                        log.warning(
                            "worker pool poisoned (%d task(s) outstanding); "
                            "respawning",
                            len(pending),
                        )
                        _terminate_pool(pool)
                        pool = ProcessPoolExecutor(max_workers=workers)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            metrics.inc("runtime.tasks", n)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _settle(
        self,
        i: int,
        future: Any,
        attempts: list[int],
        outcomes: list[TaskOutcome | None],
        pending: list[int],
        log: Any,
    ) -> None:
        """Collect a done future during pool teardown: keep Ok, judge errors."""
        try:
            packed = future.result(timeout=0)
            outcomes[i] = Ok(self._merge(packed), attempts=attempts[i])
        except (FutureTimeoutError, BrokenProcessPool, CancelledError):
            attempts[i] -= 1
            pending.append(i)
        except Exception as exc:
            self._fail(i, exc, attempts, outcomes, pending, log)

    def _fail(
        self,
        i: int,
        exc: BaseException,
        attempts: list[int],
        outcomes: list[TaskOutcome | None],
        pending: list[int],
        log: Any,
    ) -> None:
        """Route one failed attempt: requeue with attempts left, else record."""
        if attempts[i] < self.retries + 1:
            metrics.inc("runtime.task_retry")
            log.warning(
                "task %d failed (attempt %d/%d): %s; retrying",
                i,
                attempts[i],
                self.retries + 1,
                exc,
            )
            pending.append(i)
            return
        metrics.inc("runtime.task_failed")
        log.warning(
            "task %d failed permanently after %d attempt(s): %s", i, attempts[i], exc
        )
        outcomes[i] = TaskError.from_exception(exc, attempts=attempts[i])

    @staticmethod
    def _merge(packed: tuple[Any, list[dict[str, Any]], dict[str, float]]) -> Any:
        """Unpack one worker result, merging its spans/counters into the parent."""
        result, span_trees, counters = packed
        for tree in span_trees:
            trace.merge_subtree(tree)
        for name, value in counters.items():
            metrics.inc(name, value)
        return result


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a poisoned pool down, killing workers that will not exit.

    ``shutdown`` alone leaves a hung worker running its task forever; the
    explicit terminate/join reaps it so a timed-out sweep does not leak
    processes.  Touches the executor's private process table — there is no
    public kill switch — guarded for forward compatibility.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    for process in list(processes.values()):
        try:
            process.join(timeout=5.0)
        except Exception:  # pragma: no cover - already reaped
            pass
