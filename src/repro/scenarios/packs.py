"""Named scenario packs and the scenario build step.

A pack is a curated composition of corruption generators with rates
tuned to a purpose: ``messy-world`` stresses linkage/admission,
``aliases`` isolates the name-matching problem, ``drift`` manufactures
exactly the marginal shift the canary gate must reject, ``mna`` the
merger/alias resolution path.  :func:`build_scenario` applies a pack to
a corpus; :func:`write_scenario` additionally persists the corrupted
corpus as a columnar directory with its manifest side-car, which is the
``repro scenario build`` CLI path.
"""

from __future__ import annotations

import datetime as dt
from pathlib import Path

from repro.data.columnar import write_corpus
from repro.data.corpus import Corpus
from repro.scenarios.base import (
    MANIFEST_FILENAME,
    CorruptionManifest,
    ScenarioPack,
    ScenarioResult,
)
from repro.scenarios.corruptions import (
    AliasCorruption,
    ChurnWaveCorruption,
    ConflictingLabelCorruption,
    MergerCorruption,
    MissingFieldCorruption,
    TaxonomyRemapCorruption,
)

__all__ = [
    "PACKS",
    "available_packs",
    "build_pack",
    "build_scenario",
    "write_scenario",
    "load_scenario_manifest",
]


def _messy_world(seed: int) -> ScenarioPack:
    return ScenarioPack(
        "messy-world",
        [
            AliasCorruption(rate=0.25),
            MissingFieldCorruption(rate=0.1),
            ConflictingLabelCorruption(rate=0.08),
            MergerCorruption(rate=0.06),
        ],
        seed=seed,
    )


def _aliases(seed: int) -> ScenarioPack:
    return ScenarioPack("aliases", [AliasCorruption(rate=0.4)], seed=seed)


def _drift(seed: int) -> ScenarioPack:
    return ScenarioPack(
        "drift",
        [
            TaxonomyRemapCorruption(n_merges=4),
            ChurnWaveCorruption(
                window_start=dt.date(2015, 1, 1),
                window_days=365,
                adopt_rate=0.5,
                churn_rate=0.15,
            ),
        ],
        seed=seed,
    )


def _mna(seed: int) -> ScenarioPack:
    return ScenarioPack(
        "mna",
        [MergerCorruption(rate=0.12), AliasCorruption(rate=0.1)],
        seed=seed,
    )


#: Pack name → (factory, one-line description).
PACKS = {
    "messy-world": (
        _messy_world,
        "aliased names, missing firmographics, conflicting SIC labels, mergers",
    ),
    "aliases": (_aliases, "name misspellings/aliases only (linkage stress)"),
    "drift": (
        _drift,
        "taxonomy remap + churn/adoption wave (canary-rejectable marginal shift)",
    ),
    "mna": (_mna, "M&A site-tree merges plus light aliasing"),
}


def available_packs() -> dict[str, str]:
    """Pack name → description, for CLI listings."""
    return {name: description for name, (_, description) in PACKS.items()}


def build_pack(name: str, *, seed: int = 0) -> ScenarioPack:
    """Instantiate a named pack with the given seed."""
    try:
        factory, _ = PACKS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario pack {name!r}; available: {sorted(PACKS)}"
        ) from None
    return factory(seed)


def build_scenario(corpus: Corpus, pack: str | ScenarioPack, *, seed: int = 0) -> ScenarioResult:
    """Apply a pack (by name or instance) to ``corpus``."""
    if isinstance(pack, str):
        pack = build_pack(pack, seed=seed)
    return pack.apply(corpus)


def write_scenario(
    corpus: Corpus,
    path: str | Path,
    pack: str | ScenarioPack,
    *,
    seed: int = 0,
    batch_size: int = 8192,
) -> ScenarioResult:
    """Corrupt ``corpus`` and persist it as a columnar directory.

    The corrupted corpus is streamed to ``path`` with
    :func:`repro.data.columnar.write_corpus` (so the on-disk fingerprint
    equals the in-memory one) and the manifest lands next to it as
    ``scenario_manifest.json`` — serving bootstrap picks that side-car
    up to alias merged D-U-N-S numbers at admission.
    """
    result = build_scenario(corpus, pack, seed=seed)
    path = Path(path)
    manifest = write_corpus(result.corpus, path, batch_size=batch_size)
    if manifest["fingerprint"] != result.manifest.result_fingerprint:
        raise AssertionError(
            "columnar fingerprint diverged from the in-memory corrupted corpus"
        )
    result.manifest.save(path / MANIFEST_FILENAME)
    return result


def load_scenario_manifest(corpus_dir: str | Path) -> CorruptionManifest | None:
    """The manifest side-car of a scenario build, or ``None`` for clean corpora."""
    path = Path(corpus_dir) / MANIFEST_FILENAME
    if not path.exists():
        return None
    return CorruptionManifest.load(path)
