"""The six messy-world corruption generators.

Each generator is a pure, seeded transform ``companies -> (companies,
events)`` modelling one class of real-feed imperfection:

* :class:`AliasCorruption` — misspelled/aliased company names
  (Jaro-Winkler-plausible perturbations that stress ``data/linkage``);
* :class:`MissingFieldCorruption` — null firmographic fields;
* :class:`ConflictingLabelCorruption` — a second feed disagreeing on the
  SIC industry label;
* :class:`MergerCorruption` — M&A events merging D-U-N-S site trees;
* :class:`TaxonomyRemapCorruption` — the provider collapsing product
  categories (the paper's 91→38 remap);
* :class:`ChurnWaveCorruption` — adoption bursts and churn drops that
  shift the traffic marginals inside a date window.

Every injected change is recorded as a :class:`CorruptionEvent`, so a
test can ask the manifest "which names did you perturb, from what, to
what" and assert resolver recall against exact ground truth.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import replace

import numpy as np

from repro._validation import check_positive_int, check_probability
from repro.data.company import Company
from repro.data.industries import SIC2_CODES
from repro.scenarios.base import CorruptionEvent, CorruptionGenerator

__all__ = [
    "AliasCorruption",
    "MissingFieldCorruption",
    "ConflictingLabelCorruption",
    "MergerCorruption",
    "TaxonomyRemapCorruption",
    "ChurnWaveCorruption",
]

#: Accented variants used by the "diacritics" alias flavour.
_DIACRITICS = {
    "a": "á",
    "e": "é",
    "i": "í",
    "o": "ö",
    "u": "ü",
    "n": "ñ",
    "c": "ç",
}

#: Unicode punctuation injected by the "punctuation" alias flavour —
#: exactly the characters a naive ASCII normaliser chokes on.
_FANCY_PUNCT = ("’", "–", "·", "・")

_LEGAL_FORMS = ("Inc.", "LLC", "Ltd.", "Corp.", "GmbH", "Co.", "PLC")

_ALIAS_FLAVOURS = (
    "typo_swap",
    "typo_drop",
    "typo_double",
    "diacritics",
    "punctuation",
    "suffix_swap",
)


def _select(rng: np.random.Generator, n: int, rate: float) -> np.ndarray:
    """Deterministic index subset of expected size ``rate * n``."""
    if n == 0:
        return np.empty(0, dtype=np.int64)
    mask = rng.random(n) < rate
    return np.flatnonzero(mask)


class AliasCorruption(CorruptionGenerator):
    """Perturb company names into plausible aliases/misspellings."""

    name = "alias"

    def __init__(self, rate: float = 0.25, flavours: tuple[str, ...] | None = None):
        self.rate = check_probability(rate, "rate")
        self.flavours = tuple(flavours) if flavours else _ALIAS_FLAVOURS
        unknown = set(self.flavours) - set(_ALIAS_FLAVOURS)
        if unknown:
            raise ValueError(f"unknown alias flavours: {sorted(unknown)}")

    def _perturb(self, name: str, flavour: str, rng: np.random.Generator) -> str:
        letters = [i for i, ch in enumerate(name) if ch.isalpha()]
        if flavour == "typo_swap":
            # Swap two adjacent letters somewhere inside the name.
            spots = [i for i in letters if i + 1 < len(name) and name[i + 1].isalpha()]
            if not spots:
                return name + "s"
            i = int(rng.choice(spots))
            return name[:i] + name[i + 1] + name[i] + name[i + 2 :]
        if flavour == "typo_drop":
            if len(letters) < 2:
                return name
            i = int(rng.choice(letters))
            return name[:i] + name[i + 1 :]
        if flavour == "typo_double":
            if not letters:
                return name + name[-1:] if name else name
            i = int(rng.choice(letters))
            return name[:i] + name[i] + name[i:]
        if flavour == "diacritics":
            spots = [i for i in letters if name[i].lower() in _DIACRITICS]
            if not spots:
                return self._perturb(name, "typo_double", rng)
            i = int(rng.choice(spots))
            accented = _DIACRITICS[name[i].lower()]
            if name[i].isupper():
                accented = accented.upper()
            return name[:i] + accented + name[i + 1 :]
        if flavour == "punctuation":
            mark = str(rng.choice(_FANCY_PUNCT))
            spaces = [i for i, ch in enumerate(name) if ch == " "]
            if spaces:
                i = int(rng.choice(spaces))
                return name[:i] + mark + name[i + 1 :]
            return name + mark
        if flavour == "suffix_swap":
            stripped = name
            for form in _LEGAL_FORMS:
                if stripped.endswith(form):
                    stripped = stripped[: -len(form)].rstrip()
                    break
            replacement = str(rng.choice(_LEGAL_FORMS))
            return f"{stripped} {replacement}".strip()
        raise AssertionError(f"unhandled flavour {flavour!r}")

    def apply(self, companies, vocabulary, rng):
        chosen = _select(rng, len(companies), self.rate)
        flavours = rng.choice(len(self.flavours), size=chosen.size)
        events: list[CorruptionEvent] = []
        out = list(companies)
        for index, flavour_index in zip(chosen, flavours):
            company = out[index]
            flavour = self.flavours[int(flavour_index)]
            aliased = self._perturb(company.name, flavour, rng)
            if aliased == company.name:
                continue
            out[index] = replace(company, name=aliased)
            events.append(
                CorruptionEvent(
                    kind=self.name,
                    duns=company.duns.value,
                    field="name",
                    before=company.name,
                    after=aliased,
                    detail={"flavour": flavour},
                )
            )
        return out, events


class MissingFieldCorruption(CorruptionGenerator):
    """Null out firmographic fields (name and/or country)."""

    name = "missing_field"

    def __init__(self, rate: float = 0.1, fields: tuple[str, ...] = ("country", "name")):
        self.rate = check_probability(rate, "rate")
        allowed = {"country", "name"}
        unknown = set(fields) - allowed
        if unknown:
            raise ValueError(
                f"cannot null fields {sorted(unknown)}; only {sorted(allowed)} "
                "are nullable (sic2 and n_sites are validated invariants — "
                "use ConflictingLabelCorruption for label noise)"
            )
        if not fields:
            raise ValueError("fields must be non-empty")
        self.fields = tuple(fields)

    def apply(self, companies, vocabulary, rng):
        chosen = _select(rng, len(companies), self.rate)
        field_picks = rng.choice(len(self.fields), size=chosen.size)
        events: list[CorruptionEvent] = []
        out = list(companies)
        for index, pick in zip(chosen, field_picks):
            company = out[index]
            field_name = self.fields[int(pick)]
            before = getattr(company, field_name)
            if before == "":
                continue
            out[index] = replace(company, **{field_name: ""})
            events.append(
                CorruptionEvent(
                    kind=self.name,
                    duns=company.duns.value,
                    field=field_name,
                    before=before,
                    after="",
                )
            )
        return out, events


class ConflictingLabelCorruption(CorruptionGenerator):
    """Reassign the SIC2 industry label, as a disagreeing second feed would."""

    name = "conflicting_label"

    def __init__(self, rate: float = 0.08):
        self.rate = check_probability(rate, "rate")
        self._codes = tuple(sorted(SIC2_CODES))

    def apply(self, companies, vocabulary, rng):
        chosen = _select(rng, len(companies), self.rate)
        events: list[CorruptionEvent] = []
        out = list(companies)
        for index in chosen:
            company = out[index]
            alternatives = [code for code in self._codes if code != company.sic2]
            new_code = int(rng.choice(alternatives))
            out[index] = replace(company, sic2=new_code)
            events.append(
                CorruptionEvent(
                    kind=self.name,
                    duns=company.duns.value,
                    field="sic2",
                    before=str(company.sic2),
                    after=str(new_code),
                )
            )
        return out, events


class MergerCorruption(CorruptionGenerator):
    """M&A: merge pairs of companies into one D-U-N-S site tree.

    The acquirer (the larger site tree; ties break on D-U-N-S) keeps its
    identity; the acquired company's install history is unioned in with
    earliest-first-seen semantics — exactly the paper's domestic
    aggregation rule applied across what used to be two ultimates.  The
    event records the absorbed D-U-N-S so admission can alias it to the
    survivor instead of 404ing.
    """

    name = "merger"

    def __init__(self, rate: float = 0.05):
        self.rate = check_probability(rate, "rate")

    def apply(self, companies, vocabulary, rng):
        n_pairs = int(len(companies) * self.rate / 2)
        if n_pairs == 0 or len(companies) < 2:
            return list(companies), []
        order = rng.permutation(len(companies))
        events: list[CorruptionEvent] = []
        absorbed_indices: set[int] = set()
        out = list(companies)
        for pair in range(n_pairs):
            i, j = int(order[2 * pair]), int(order[2 * pair + 1])
            left, right = out[i], out[j]
            if (right.n_sites, right.duns.value) > (left.n_sites, left.duns.value):
                acquirer_index, acquired_index = j, i
            else:
                acquirer_index, acquired_index = i, j
            acquirer, acquired = out[acquirer_index], out[acquired_index]
            merged_first_seen = dict(acquirer.first_seen)
            for category, seen in acquired.first_seen.items():
                if category not in merged_first_seen or seen < merged_first_seen[category]:
                    merged_first_seen[category] = seen
            out[acquirer_index] = replace(
                acquirer,
                first_seen=merged_first_seen,
                n_sites=acquirer.n_sites + acquired.n_sites,
            )
            absorbed_indices.add(acquired_index)
            events.append(
                CorruptionEvent(
                    kind=self.name,
                    duns=acquirer.duns.value,
                    field="first_seen",
                    before=str(len(acquirer.first_seen)),
                    after=str(len(merged_first_seen)),
                    detail={
                        "absorbed": acquired.duns.value,
                        "absorbed_name": acquired.name,
                        "n_sites": acquirer.n_sites + acquired.n_sites,
                    },
                )
            )
        survivors = [c for k, c in enumerate(out) if k not in absorbed_indices]
        return survivors, events


class TaxonomyRemapCorruption(CorruptionGenerator):
    """Collapse product categories, as the provider's 91→38 remap did.

    ``n_merges`` source categories are folded into distinct target
    categories: every install of a source moves to its target, keeping
    the earliest first-seen date.  The vocabulary is left unchanged so
    fitted models still score the corpus — their probability mass is
    simply concentrated on the wrong columns, which is precisely the
    drift signature the canary gate must catch.
    """

    name = "taxonomy_remap"

    def __init__(self, n_merges: int = 4):
        self.n_merges = check_positive_int(n_merges, "n_merges")

    def apply(self, companies, vocabulary, rng):
        if 2 * self.n_merges > len(vocabulary):
            raise ValueError(
                f"n_merges={self.n_merges} needs {2 * self.n_merges} distinct "
                f"categories, vocabulary has {len(vocabulary)}"
            )
        picks = rng.choice(len(vocabulary), size=2 * self.n_merges, replace=False)
        mapping = {
            vocabulary[int(picks[k])]: vocabulary[int(picks[self.n_merges + k])]
            for k in range(self.n_merges)
        }
        events: list[CorruptionEvent] = []
        out: list[Company] = []
        n_affected = {source: 0 for source in mapping}
        for company in companies:
            touched = [c for c in company.first_seen if c in mapping]
            if not touched:
                out.append(company)
                continue
            remapped = dict(company.first_seen)
            for source in touched:
                seen = remapped.pop(source)
                target = mapping[source]
                if target not in remapped or seen < remapped[target]:
                    remapped[target] = seen
                n_affected[source] += 1
            out.append(replace(company, first_seen=remapped))
        for source, target in mapping.items():
            events.append(
                CorruptionEvent(
                    kind=self.name,
                    duns="*",
                    field="category",
                    before=source,
                    after=target,
                    detail={"n_companies": n_affected[source]},
                )
            )
        return out, events


class ChurnWaveCorruption(CorruptionGenerator):
    """Adoption bursts and churn drops inside a date window.

    A wave of companies adopts ``wave_size`` trending categories at
    random dates inside the window (shifting arrival traffic toward
    them), while a churn cohort loses its most recent category.  Models
    fitted before the wave see a different marginal during replay.
    """

    name = "churn_wave"

    def __init__(
        self,
        *,
        window_start: dt.date = dt.date(2015, 1, 1),
        window_days: int = 365,
        adopt_rate: float = 0.3,
        churn_rate: float = 0.1,
        wave_size: int = 3,
    ):
        self.window_start = window_start
        self.window_days = check_positive_int(window_days, "window_days")
        self.adopt_rate = check_probability(adopt_rate, "adopt_rate")
        self.churn_rate = check_probability(churn_rate, "churn_rate")
        self.wave_size = check_positive_int(wave_size, "wave_size")

    def apply(self, companies, vocabulary, rng):
        if self.wave_size > len(vocabulary):
            raise ValueError(
                f"wave_size={self.wave_size} exceeds vocabulary "
                f"size {len(vocabulary)}"
            )
        wave = [
            vocabulary[int(i)]
            for i in rng.choice(len(vocabulary), size=self.wave_size, replace=False)
        ]
        events: list[CorruptionEvent] = []
        out = list(companies)

        adopters = _select(rng, len(out), self.adopt_rate)
        offsets = rng.integers(0, self.window_days, size=adopters.size)
        wave_picks = rng.choice(self.wave_size, size=adopters.size)
        for index, offset, pick in zip(adopters, offsets, wave_picks):
            company = out[index]
            category = wave[int(pick)]
            if category in company.first_seen:
                continue
            adopted_on = self.window_start + dt.timedelta(days=int(offset))
            first_seen = dict(company.first_seen)
            first_seen[category] = adopted_on
            out[index] = replace(company, first_seen=first_seen)
            events.append(
                CorruptionEvent(
                    kind="adoption",
                    duns=company.duns.value,
                    field="category",
                    before=None,
                    after=category,
                    detail={"date": adopted_on.isoformat()},
                )
            )

        churners = _select(rng, len(out), self.churn_rate)
        for index in churners:
            company = out[index]
            if len(company.first_seen) < 2:
                continue  # never leave a company with an empty install base
            dropped, _ = company.sorted_categories()[-1]
            first_seen = dict(company.first_seen)
            del first_seen[dropped]
            out[index] = replace(company, first_seen=first_seen)
            events.append(
                CorruptionEvent(
                    kind="churn",
                    duns=company.duns.value,
                    field="category",
                    before=dropped,
                    after=None,
                )
            )
        return out, events
