"""Messy-world scenario packs: seeded corruption generators with manifests."""

from repro.scenarios.base import (
    MANIFEST_FILENAME,
    CorruptionEvent,
    CorruptionGenerator,
    CorruptionManifest,
    ScenarioPack,
    ScenarioResult,
)
from repro.scenarios.corruptions import (
    AliasCorruption,
    ChurnWaveCorruption,
    ConflictingLabelCorruption,
    MergerCorruption,
    MissingFieldCorruption,
    TaxonomyRemapCorruption,
)
from repro.scenarios.packs import (
    PACKS,
    available_packs,
    build_pack,
    build_scenario,
    load_scenario_manifest,
    write_scenario,
)

__all__ = [
    "MANIFEST_FILENAME",
    "CorruptionEvent",
    "CorruptionGenerator",
    "CorruptionManifest",
    "ScenarioPack",
    "ScenarioResult",
    "AliasCorruption",
    "ChurnWaveCorruption",
    "ConflictingLabelCorruption",
    "MergerCorruption",
    "MissingFieldCorruption",
    "TaxonomyRemapCorruption",
    "PACKS",
    "available_packs",
    "build_pack",
    "build_scenario",
    "load_scenario_manifest",
    "write_scenario",
]
