"""Scenario infrastructure: corruption events, manifests and packs.

The clean simulator undersells the linkage/aggregation machinery: real
install-base feeds arrive with misspelled names, missing firmographics,
conflicting industry labels, M&A events that merge D-U-N-S site trees,
taxonomy remaps and churn waves.  A :class:`ScenarioPack` composes
deterministic, seeded :class:`CorruptionGenerator` s over any corpus
(in-memory or columnar — generators only read the ``Corpus`` API) and
emits a ground-truth :class:`CorruptionManifest` alongside the corrupted
corpus, so tests and the replay harness can assert exactly what was
injected rather than eyeballing aggregate statistics.

Determinism contract: the same ``(pack, seed, corpus)`` triple always
produces the same manifest digest and the same corrupted-corpus
fingerprint.  Each generator draws from its own child of a single
``SeedSequence``, so adding a generator to the end of a pack never
perturbs the draws of the generators before it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field as _field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.data.company import Company
from repro.data.corpus import Corpus

__all__ = [
    "CorruptionEvent",
    "CorruptionManifest",
    "CorruptionGenerator",
    "ScenarioResult",
    "ScenarioPack",
]

MANIFEST_FILENAME = "scenario_manifest.json"


@dataclass(frozen=True)
class CorruptionEvent:
    """One injected corruption, recorded as ground truth.

    ``kind`` names the corruption family ("alias", "missing_field",
    "conflicting_label", "merger", "taxonomy_remap", "adoption",
    "churn"); ``duns`` is the primary affected company ("*" for
    corpus-global events such as taxonomy remaps); ``field`` is the
    attribute touched; ``before``/``after`` are its values as strings.
    ``detail`` carries kind-specific extras (the absorbed D-U-N-S of a
    merger, the perturbation flavour of an alias, ...).
    """

    kind: str
    duns: str
    field: str | None = None
    before: str | None = None
    after: str | None = None
    detail: dict[str, object] = _field(default_factory=dict)

    def as_json(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "duns": self.duns,
            "field": self.field,
            "before": self.before,
            "after": self.after,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "CorruptionEvent":
        return cls(
            kind=str(payload["kind"]),
            duns=str(payload["duns"]),
            field=payload.get("field"),  # type: ignore[arg-type]
            before=payload.get("before"),  # type: ignore[arg-type]
            after=payload.get("after"),  # type: ignore[arg-type]
            detail=dict(payload.get("detail", {})),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class CorruptionManifest:
    """Ground truth for one scenario build: what was injected, and by whom.

    The manifest is JSON-serialisable and carries a stable content
    digest, so CI can assert "same seed → same manifest → same corpus
    fingerprint" byte for byte.
    """

    pack: str
    seed: int
    events: tuple[CorruptionEvent, ...]
    source_fingerprint: str | None = None
    result_fingerprint: str | None = None

    def by_kind(self, kind: str) -> tuple[CorruptionEvent, ...]:
        return tuple(event for event in self.events if event.kind == kind)

    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def merger_aliases(self) -> dict[str, str]:
        """Absorbed D-U-N-S → surviving D-U-N-S, for admission resolution."""
        aliases: dict[str, str] = {}
        for event in self.by_kind("merger"):
            absorbed = event.detail.get("absorbed")
            if isinstance(absorbed, str):
                aliases[absorbed] = event.duns
        return aliases

    def as_json(self) -> dict[str, object]:
        return {
            "pack": self.pack,
            "seed": self.seed,
            "source_fingerprint": self.source_fingerprint,
            "result_fingerprint": self.result_fingerprint,
            "events": [event.as_json() for event in self.events],
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (fingerprints excluded).

        Excluding the fingerprints keeps the digest a pure function of
        the injected events, so the acceptance chain reads
        ``seed → digest → corpus fingerprint`` with no cycles.
        """
        payload = {
            "pack": self.pack,
            "seed": self.seed,
            "events": [event.as_json() for event in self.events],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        payload = self.as_json()
        payload["digest"] = self.digest()
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CorruptionManifest":
        payload = json.loads(Path(path).read_text())
        manifest = cls(
            pack=str(payload["pack"]),
            seed=int(payload["seed"]),
            events=tuple(
                CorruptionEvent.from_json(event) for event in payload["events"]
            ),
            source_fingerprint=payload.get("source_fingerprint"),
            result_fingerprint=payload.get("result_fingerprint"),
        )
        recorded = payload.get("digest")
        if recorded is not None and recorded != manifest.digest():
            raise ValueError(
                f"manifest digest mismatch at {path}: recorded {recorded}, "
                f"recomputed {manifest.digest()}"
            )
        return manifest


class CorruptionGenerator:
    """Base class: a seeded transform over a company list.

    Subclasses override :meth:`apply`, which must be a pure function of
    ``(companies, vocabulary, rng)`` — no hidden state, no mutation of
    the input ``Company`` objects (they may be shared with a live
    corpus; build replacements with ``dataclasses.replace`` or fresh
    constructors).
    """

    #: Corruption family name; used for manifest grouping and display.
    name: str = "corruption"

    def apply(
        self,
        companies: list[Company],
        vocabulary: tuple[str, ...],
        rng: np.random.Generator,
    ) -> tuple[list[Company], list[CorruptionEvent]]:
        raise NotImplementedError


@dataclass(frozen=True)
class ScenarioResult:
    """A corrupted corpus plus the ground truth of its corruption."""

    corpus: Corpus
    manifest: CorruptionManifest


class ScenarioPack:
    """An ordered, seeded composition of corruption generators."""

    def __init__(
        self,
        name: str,
        generators: Sequence[CorruptionGenerator],
        *,
        seed: int = 0,
    ) -> None:
        if not name:
            raise ValueError("pack name must be non-empty")
        if not generators:
            raise ValueError("a scenario pack needs at least one generator")
        self.name = name
        self.generators = tuple(generators)
        self.seed = int(seed)

    def apply(self, corpus: Corpus) -> ScenarioResult:
        """Run every generator in order over ``corpus``.

        Works on any ``Corpus`` subclass — a columnar corpus is read
        through its lazy company sequence and the corrupted result is
        materialised in memory (write it back out with
        ``repro.data.columnar.write_corpus`` for serving).
        """
        companies = list(corpus.companies)
        if not companies:
            raise ValueError("cannot corrupt an empty corpus")
        vocabulary = corpus.vocabulary
        source_fingerprint = corpus.fingerprint()
        events: list[CorruptionEvent] = []
        children = np.random.SeedSequence(self.seed).spawn(len(self.generators))
        for generator, child in zip(self.generators, children):
            rng = np.random.default_rng(child)
            companies, new_events = generator.apply(companies, vocabulary, rng)
            if not companies:
                raise ValueError(
                    f"generator {generator.name!r} removed every company"
                )
            events.extend(new_events)
        corrupted = Corpus(companies, vocabulary=vocabulary)
        manifest = CorruptionManifest(
            pack=self.name,
            seed=self.seed,
            events=tuple(events),
            source_fingerprint=source_fingerprint,
            result_fingerprint=corrupted.fingerprint(),
        )
        return ScenarioResult(corpus=corrupted, manifest=manifest)
