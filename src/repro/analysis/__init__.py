"""Analysis substrate: clustering, projections, and statistics.

Everything sklearn/scipy-adjacent the paper relies on, implemented from
scratch on numpy: k-means(++), silhouette scores, spectral co-clustering,
exact t-SNE, the binomial sequentiality test, and similarity search.
"""

from repro.analysis.cocluster import SpectralCoclustering
from repro.analysis.gmm import DiagonalGMM
from repro.analysis.kmeans import KMeans
from repro.analysis.silhouette import silhouette_samples, silhouette_score
from repro.analysis.similarity import cosine_similarity_matrix, top_k_similar
from repro.analysis.stats import (
    SequentialityReport,
    bootstrap_confidence_interval,
    mean_confidence_interval,
    sequentiality_test,
)
from repro.analysis.tsne import TSNE

__all__ = [
    "SpectralCoclustering",
    "DiagonalGMM",
    "KMeans",
    "silhouette_samples",
    "silhouette_score",
    "cosine_similarity_matrix",
    "top_k_similar",
    "SequentialityReport",
    "bootstrap_confidence_interval",
    "mean_confidence_interval",
    "sequentiality_test",
    "TSNE",
]
