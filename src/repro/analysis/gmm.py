"""Diagonal-covariance Gaussian mixture model fitted by EM.

Substrate for the Fisher-kernel aggregation discussed in the paper's
Section 3.4 (Clinchant & Perronnin: "probabilistic modeling of the corpus
of documents using a mixture of Gaussians").  The implementation is
deliberately small: diagonal covariances, k-means++ initialisation of the
means, standard EM with a covariance floor.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    as_rng,
    check_matrix,
    check_positive_float,
    check_positive_int,
)
from repro.analysis.kmeans import KMeans

__all__ = ["DiagonalGMM"]


class DiagonalGMM:
    """Gaussian mixture with diagonal covariances.

    Parameters
    ----------
    n_components:
        Mixture size K.
    n_iter:
        EM iterations.
    covariance_floor:
        Lower bound on each variance, preventing component collapse.
    seed:
        Initialisation randomness (k-means++ on the means).
    """

    def __init__(
        self,
        n_components: int = 4,
        *,
        n_iter: int = 60,
        covariance_floor: float = 1e-6,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.n_components = check_positive_int(n_components, "n_components")
        self.n_iter = check_positive_int(n_iter, "n_iter")
        self.covariance_floor = check_positive_float(covariance_floor, "covariance_floor")
        self._seed = seed
        self.weights_: np.ndarray | None = None  # (K,)
        self.means_: np.ndarray | None = None  # (K, D)
        self.variances_: np.ndarray | None = None  # (K, D)

    # ------------------------------------------------------------------
    def _log_component_densities(self, data: np.ndarray) -> np.ndarray:
        """Log N(x | mu_k, diag sigma_k^2) for all points/components: (N, K)."""
        assert self.means_ is not None and self.variances_ is not None
        n, d = data.shape
        log_densities = np.empty((n, self.n_components))
        for k in range(self.n_components):
            diff = data - self.means_[k]
            quad = (diff**2 / self.variances_[k]).sum(axis=1)
            log_det = np.log(self.variances_[k]).sum()
            log_densities[:, k] = -0.5 * (quad + log_det + d * np.log(2.0 * np.pi))
        return log_densities

    def fit(self, data: np.ndarray) -> "DiagonalGMM":
        """Fit the mixture to ``data`` (``(n, d)``, n >= K)."""
        matrix = check_matrix(data, "data")
        n, d = matrix.shape
        if n < self.n_components:
            raise ValueError(
                f"cannot fit {self.n_components} components to {n} points"
            )
        rng = as_rng(self._seed)
        kmeans = KMeans(self.n_components, seed=rng).fit(matrix)
        assert kmeans.centers_ is not None and kmeans.labels_ is not None
        self.means_ = kmeans.centers_.copy()
        global_var = matrix.var(axis=0) + self.covariance_floor
        self.variances_ = np.tile(global_var, (self.n_components, 1))
        counts = np.bincount(kmeans.labels_, minlength=self.n_components)
        self.weights_ = np.maximum(counts, 1) / max(counts.sum(), 1)

        for __ in range(self.n_iter):
            responsibilities = self.predict_proba(matrix)  # E-step
            mass = responsibilities.sum(axis=0) + 1e-12  # M-step
            self.weights_ = mass / mass.sum()
            self.means_ = (responsibilities.T @ matrix) / mass[:, None]
            for k in range(self.n_components):
                diff = matrix - self.means_[k]
                var = (responsibilities[:, k][:, None] * diff**2).sum(axis=0) / mass[k]
                self.variances_[k] = np.maximum(var, self.covariance_floor)
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """Posterior responsibilities p(component | point), shape (n, K)."""
        if self.means_ is None:
            raise RuntimeError("DiagonalGMM must be fitted first")
        matrix = check_matrix(data, "data")
        assert self.weights_ is not None
        log_joint = self._log_component_densities(matrix) + np.log(self.weights_)
        log_norm = np.logaddexp.reduce(log_joint, axis=1, keepdims=True)
        return np.exp(log_joint - log_norm)

    def score(self, data: np.ndarray) -> float:
        """Mean log-likelihood per point."""
        if self.means_ is None:
            raise RuntimeError("DiagonalGMM must be fitted first")
        matrix = check_matrix(data, "data")
        assert self.weights_ is not None
        log_joint = self._log_component_densities(matrix) + np.log(self.weights_)
        return float(np.logaddexp.reduce(log_joint, axis=1).mean())

    def sample(self, n: int, *, seed: int | np.random.Generator | None = None) -> np.ndarray:
        """Draw ``n`` points from the fitted mixture."""
        if self.means_ is None:
            raise RuntimeError("DiagonalGMM must be fitted first")
        check_positive_int(n, "n")
        rng = as_rng(seed)
        assert self.weights_ is not None and self.variances_ is not None
        components = rng.choice(self.n_components, size=n, p=self.weights_)
        noise = rng.normal(size=(n, self.means_.shape[1]))
        return self.means_[components] + noise * np.sqrt(self.variances_[components])
