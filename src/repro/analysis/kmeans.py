"""K-means clustering with k-means++ initialisation (Lloyd's algorithm).

Used to cluster company representations for the silhouette comparison of
Figure 7.  The implementation is deterministic given a seed, restarts
``n_init`` times, and returns the run with the lowest inertia.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_rng, check_matrix, check_positive_int

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    n_init:
        Independent restarts; best inertia wins.
    max_iter:
        Lloyd iterations per restart.
    tol:
        Relative centre-movement tolerance for early convergence.
    seed:
        Randomness control.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.n_init = check_positive_int(n_init, "n_init")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        if tol < 0:
            raise ValueError(f"tol must be >= 0, got {tol}")
        self.tol = float(tol)
        self._seed = seed
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf

    # ------------------------------------------------------------------
    def _init_centers(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centres by squared distance."""
        n = data.shape[0]
        centers = np.empty((self.n_clusters, data.shape[1]))
        first = int(rng.integers(n))
        centers[0] = data[first]
        closest_sq = ((data - centers[0]) ** 2).sum(axis=1)
        for k in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0.0:
                # All remaining points coincide with a centre; fill randomly.
                centers[k] = data[int(rng.integers(n))]
                continue
            probs = closest_sq / total
            chosen = int(rng.choice(n, p=probs))
            centers[k] = data[chosen]
            dist_sq = ((data - centers[k]) ** 2).sum(axis=1)
            np.minimum(closest_sq, dist_sq, out=closest_sq)
        return centers

    @staticmethod
    def _assign(data: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Labels and squared distances to the nearest centre."""
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; the x term is constant
        # per-row so it can be added after the argmin for the distances.
        cross = data @ centers.T
        c_sq = (centers**2).sum(axis=1)
        scores = c_sq[None, :] - 2.0 * cross
        labels = scores.argmin(axis=1)
        x_sq = (data**2).sum(axis=1)
        dist_sq = np.maximum(scores[np.arange(len(data)), labels] + x_sq, 0.0)
        return labels, dist_sq

    def fit(self, data: np.ndarray) -> "KMeans":
        """Cluster ``data`` (``(n, d)``); stores centres, labels, inertia."""
        matrix = check_matrix(data, "data")
        if matrix.shape[0] < self.n_clusters:
            raise ValueError(
                f"cannot form {self.n_clusters} clusters from {matrix.shape[0]} points"
            )
        rng = as_rng(self._seed)
        best_inertia = np.inf
        best_centers: np.ndarray | None = None
        best_labels: np.ndarray | None = None
        for __ in range(self.n_init):
            centers = self._init_centers(matrix, rng)
            labels, dist_sq = self._assign(matrix, centers)
            for __iter in range(self.max_iter):
                moved = 0.0
                for k in range(self.n_clusters):
                    members = matrix[labels == k]
                    if len(members) == 0:
                        # Re-seed an empty cluster at the worst-fit point.
                        worst = int(dist_sq.argmax())
                        centers[k] = matrix[worst]
                        dist_sq[worst] = 0.0
                        moved = np.inf
                        continue
                    fresh = members.mean(axis=0)
                    moved += float(((fresh - centers[k]) ** 2).sum())
                    centers[k] = fresh
                labels, dist_sq = self._assign(matrix, centers)
                if moved <= self.tol:
                    break
            inertia = float(dist_sq.sum())
            if inertia < best_inertia:
                best_inertia = inertia
                best_centers = centers.copy()
                best_labels = labels.copy()
        self.centers_ = best_centers
        self.labels_ = best_labels
        self.inertia_ = best_inertia
        return self

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Fit and return the labels."""
        self.fit(data)
        assert self.labels_ is not None
        return self.labels_

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Nearest-centre labels for new points."""
        if self.centers_ is None:
            raise RuntimeError("KMeans must be fitted before predict")
        matrix = check_matrix(data, "data")
        labels, __ = self._assign(matrix, self.centers_)
        return labels
