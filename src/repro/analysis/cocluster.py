"""Spectral co-clustering (Dhillon 2001) — the Section 3.1 baseline.

The paper reports that co-clustering the raw binary company-product matrix
of a healthcare sample produced a single meaningful co-cluster containing
"overall popular products", which motivated the move to LDA features.  This
implementation lets that negative result be demonstrated: it bipartitions
rows (companies) and columns (products) jointly via the SVD of the
normalised matrix, exactly as in Dhillon's spectral co-clustering.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_matrix, check_positive_int
from repro.analysis.kmeans import KMeans

__all__ = ["SpectralCoclustering"]


class SpectralCoclustering:
    """Joint row/column clustering of a non-negative matrix.

    Parameters
    ----------
    n_clusters:
        Number of co-clusters.
    seed:
        Randomness control for the k-means step.
    """

    def __init__(self, n_clusters: int = 3, *, seed: int | np.random.Generator | None = 0) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self._seed = seed
        self.row_labels_: np.ndarray | None = None
        self.column_labels_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "SpectralCoclustering":
        """Co-cluster a non-negative ``(n_rows, n_cols)`` matrix."""
        data = check_matrix(matrix, "matrix")
        if np.any(data < 0):
            raise ValueError("matrix must be non-negative")
        row_sums = data.sum(axis=1)
        col_sums = data.sum(axis=0)
        if np.any(row_sums == 0) or np.any(col_sums == 0):
            raise ValueError(
                "matrix has empty rows or columns; drop them before co-clustering"
            )
        d1 = 1.0 / np.sqrt(row_sums)
        d2 = 1.0 / np.sqrt(col_sums)
        normalized = d1[:, None] * data * d2[None, :]
        u, singular_values, vt = np.linalg.svd(normalized, full_matrices=False)
        # Dhillon's prescription keeps log2(k) singular vectors after the
        # leading pair.  We keep the leading pair as well: when the bipartite
        # graph is connected it is a constant direction (harmless to
        # k-means), and when it is disconnected the partition information is
        # spread across the degenerate leading vectors, so dropping the
        # first would discard the split.
        n_vec = 2 + int(np.ceil(np.log2(self.n_clusters)))
        n_vec = min(n_vec, u.shape[1])
        # Numerical-rank cut: singular vectors past the effective rank are
        # arbitrary directions that would dominate the k-means step.
        effective_rank = int((singular_values > 1e-8 * singular_values[0]).sum())
        n_vec = min(n_vec, max(effective_rank, 1))
        if n_vec < 1:
            raise ValueError("matrix rank too low for the requested clusters")
        row_embed = d1[:, None] * u[:, :n_vec]
        col_embed = d2[:, None] * vt[:n_vec].T
        stacked = np.vstack([row_embed, col_embed])
        labels = KMeans(self.n_clusters, seed=self._seed).fit_predict(stacked)
        self.row_labels_ = labels[: data.shape[0]]
        self.column_labels_ = labels[data.shape[0] :]
        return self

    def cocluster_summary(self, matrix: np.ndarray) -> list[dict[str, float]]:
        """Per-co-cluster shape and density statistics.

        Used by the co-clustering benchmark to show that the dominant
        co-cluster is just the popular-products block.
        """
        if self.row_labels_ is None or self.column_labels_ is None:
            raise RuntimeError("SpectralCoclustering must be fitted first")
        data = check_matrix(matrix, "matrix")
        summaries = []
        for k in range(self.n_clusters):
            rows = np.flatnonzero(self.row_labels_ == k)
            cols = np.flatnonzero(self.column_labels_ == k)
            if len(rows) == 0 or len(cols) == 0:
                summaries.append(
                    {"cluster": float(k), "n_rows": float(len(rows)),
                     "n_cols": float(len(cols)), "density": 0.0}
                )
                continue
            block = data[np.ix_(rows, cols)]
            summaries.append(
                {
                    "cluster": float(k),
                    "n_rows": float(len(rows)),
                    "n_cols": float(len(cols)),
                    "density": float(block.mean()),
                }
            )
        return summaries
