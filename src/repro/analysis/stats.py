"""Statistical tools: the sequentiality test and confidence intervals.

The paper justifies sequence modelling with a hypothesis test: "69% of the
bigrams and 43% of the trigrams have frequencies that are statistically
significantly higher than in the case of independent identically
distributed products ... based on the binomial distribution of frequencies
of n-grams" (Section 5).  :func:`sequentiality_test` reproduces that test
on any corpus.

The recommendation figures carry 95% confidence intervals over sliding-
window observations; :func:`mean_confidence_interval` (normal
approximation) and :func:`bootstrap_confidence_interval` provide those.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np
from scipy.stats import binom

from repro._validation import as_rng, check_positive_int, check_probability
from repro.data.corpus import Corpus

__all__ = [
    "SequentialityReport",
    "sequentiality_test",
    "mean_confidence_interval",
    "bootstrap_confidence_interval",
]


@dataclass(frozen=True)
class SequentialityReport:
    """Result of the binomial n-gram sequentiality test."""

    order: int
    n_distinct: int
    n_significant: int
    alpha: float

    @property
    def significant_fraction(self) -> float:
        """Fraction of observed n-grams rejecting the i.i.d. hypothesis."""
        if self.n_distinct == 0:
            return 0.0
        return self.n_significant / self.n_distinct


def sequentiality_test(
    corpus: Corpus, *, order: int = 2, alpha: float = 0.05
) -> SequentialityReport:
    """Binomial test of n-gram frequencies against the i.i.d. hypothesis.

    Under i.i.d. products, the count of an n-gram ``(a_1 ... a_n)`` among
    the N observed n-gram slots is Binomial(N, p_1 * ... * p_n) with p_i the
    unigram probabilities.  An n-gram is *significantly sequential* when its
    observed count exceeds the (1 - alpha) binomial quantile.  The paper
    reports 69% significant bigrams and 43% significant trigrams on its
    deployment.
    """
    check_positive_int(order, "order")
    if order < 2:
        raise ValueError("sequentiality is defined for order >= 2")
    check_probability(alpha, "alpha")
    if alpha in (0.0, 1.0):
        raise ValueError("alpha must be strictly between 0 and 1")

    sequences = corpus.sequences()
    unigram_counts = np.zeros(corpus.n_products)
    ngram_counts: Counter = Counter()
    n_slots = 0
    for seq in sequences:
        for token in seq:
            unigram_counts[token] += 1.0
        for i in range(len(seq) - order + 1):
            ngram_counts[tuple(seq[i : i + order])] += 1
            n_slots += 1
    total_tokens = unigram_counts.sum()
    if total_tokens == 0 or n_slots == 0:
        return SequentialityReport(order, 0, 0, alpha)
    unigram = unigram_counts / total_tokens

    n_significant = 0
    for ngram, count in ngram_counts.items():
        p_iid = float(np.prod([unigram[t] for t in ngram]))
        threshold = binom.ppf(1.0 - alpha, n_slots, p_iid)
        if count > threshold:
            n_significant += 1
    return SequentialityReport(order, len(ngram_counts), n_significant, alpha)


def mean_confidence_interval(
    observations: np.ndarray, *, confidence: float = 0.95
) -> tuple[float, float, float]:
    """Mean and normal-approximation CI of a 1-D sample.

    Returns ``(mean, low, high)``.  A single observation yields a degenerate
    interval at the point.
    """
    data = np.asarray(observations, dtype=np.float64).ravel()
    if data.size == 0:
        raise ValueError("observations must be non-empty")
    check_probability(confidence, "confidence")
    mean = float(data.mean())
    if data.size == 1:
        return mean, mean, mean
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2.0))
    half = z * float(data.std(ddof=1)) / float(np.sqrt(data.size))
    return mean, mean - half, mean + half


def bootstrap_confidence_interval(
    observations: np.ndarray,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> tuple[float, float, float]:
    """Mean and percentile-bootstrap CI of a 1-D sample."""
    data = np.asarray(observations, dtype=np.float64).ravel()
    if data.size == 0:
        raise ValueError("observations must be non-empty")
    check_probability(confidence, "confidence")
    check_positive_int(n_resamples, "n_resamples")
    rng = as_rng(seed)
    mean = float(data.mean())
    if data.size == 1:
        return mean, mean, mean
    samples = rng.choice(data, size=(n_resamples, data.size), replace=True)
    means = samples.mean(axis=1)
    low = float(np.quantile(means, 0.5 - confidence / 2.0))
    high = float(np.quantile(means, 0.5 + confidence / 2.0))
    return mean, low, high
