"""Company similarity search over learned representations.

Equation (5) of the paper: company distance is any vector distance over the
learned features B.  The sales application (Section 6) needs top-k searches
over those features; this module provides the vectorised primitives.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_in_choices, check_matrix, check_positive_int

__all__ = ["cosine_similarity_matrix", "top_k_similar", "pairwise_distances"]


def cosine_similarity_matrix(features: np.ndarray) -> np.ndarray:
    """Dense cosine similarity between all rows of ``features``.

    Zero rows are treated as dissimilar to everything (similarity 0).
    """
    matrix = check_matrix(features, "features")
    norms = np.linalg.norm(matrix, axis=1)
    safe = np.where(norms == 0.0, 1.0, norms)
    unit = matrix / safe[:, None]
    sim = np.clip(unit @ unit.T, -1.0, 1.0)
    sim[norms == 0.0, :] = 0.0
    sim[:, norms == 0.0] = 0.0
    return sim


def pairwise_distances(features: np.ndarray, *, metric: str = "cosine") -> np.ndarray:
    """Distance matrix under ``"cosine"`` or ``"euclidean"``."""
    matrix = check_matrix(features, "features")
    check_in_choices(metric, "metric", ("cosine", "euclidean"))
    if metric == "cosine":
        return 1.0 - cosine_similarity_matrix(matrix)
    sq = (matrix**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (matrix @ matrix.T)
    return np.sqrt(np.maximum(d2, 0.0))


def top_k_similar(
    features: np.ndarray,
    query_index: int,
    k: int,
    *,
    metric: str = "cosine",
    candidate_mask: np.ndarray | None = None,
) -> list[tuple[int, float]]:
    """The ``k`` companies most similar to ``query_index``.

    Returns ``(index, similarity)`` pairs (similarity = 1 - distance for
    euclidean scaled into similarity is *not* attempted; for euclidean the
    second element is the negated distance so that higher is always
    better).  ``candidate_mask`` restricts the searched companies — the
    filter hook the sales application uses.
    """
    matrix = check_matrix(features, "features")
    check_positive_int(k, "k")
    check_in_choices(metric, "metric", ("cosine", "euclidean"))
    n = matrix.shape[0]
    if not 0 <= query_index < n:
        raise IndexError(f"query_index {query_index} out of range [0, {n})")
    if metric == "cosine":
        norms = np.linalg.norm(matrix, axis=1)
        safe = np.where(norms == 0.0, 1.0, norms)
        unit = matrix / safe[:, None]
        scores = unit @ unit[query_index]
        if norms[query_index] == 0.0:
            scores = np.zeros(n)
        scores[norms == 0.0] = 0.0
    else:
        diff = matrix - matrix[query_index]
        scores = -np.sqrt((diff**2).sum(axis=1))
    allowed = np.ones(n, dtype=bool) if candidate_mask is None else np.asarray(candidate_mask, dtype=bool)
    if allowed.shape[0] != n:
        raise ValueError("candidate_mask length must match the feature rows")
    allowed = allowed.copy()
    allowed[query_index] = False
    candidates = np.flatnonzero(allowed)
    if len(candidates) == 0:
        return []
    ranked = candidates[np.argsort(-scores[candidates], kind="stable")]
    return [(int(i), float(scores[i])) for i in ranked[:k]]
