"""Company similarity search over learned representations.

Equation (5) of the paper: company distance is any vector distance over the
learned features B.  The sales application (Section 6) needs top-k searches
over those features; this module provides the vectorised primitives.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_in_choices, check_matrix, check_positive_int

__all__ = [
    "cosine_similarity_matrix",
    "top_k_similar",
    "top_k_from_scores",
    "pairwise_distances",
]


def cosine_similarity_matrix(features: np.ndarray) -> np.ndarray:
    """Dense cosine similarity between all rows of ``features``.

    Zero rows are treated as dissimilar to everything (similarity 0).
    """
    matrix = check_matrix(features, "features")
    norms = np.linalg.norm(matrix, axis=1)
    safe = np.where(norms == 0.0, 1.0, norms)
    unit = matrix / safe[:, None]
    sim = np.clip(unit @ unit.T, -1.0, 1.0)
    sim[norms == 0.0, :] = 0.0
    sim[:, norms == 0.0] = 0.0
    return sim


def pairwise_distances(features: np.ndarray, *, metric: str = "cosine") -> np.ndarray:
    """Distance matrix under ``"cosine"`` or ``"euclidean"``."""
    matrix = check_matrix(features, "features")
    check_in_choices(metric, "metric", ("cosine", "euclidean"))
    if metric == "cosine":
        return 1.0 - cosine_similarity_matrix(matrix)
    sq = (matrix**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (matrix @ matrix.T)
    return np.sqrt(np.maximum(d2, 0.0))


def _top_k_desc(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest values, descending, ties by index.

    Bit-identical to ``np.argsort(-values, kind="stable")[:k]`` — stable
    descending order with equal values kept in ascending-index order — but
    built on :func:`np.argpartition` so only the top slice is ever sorted:
    O(n + k log k) instead of a full O(n log n) sort, the difference the
    serving similarity path depends on at large corpora.
    """
    n = values.shape[0]
    if k >= n:
        return np.argsort(-values, kind="stable")
    negated = -values
    kth = np.partition(negated, k - 1)[k - 1]
    # Strictly better entries (at most k-1 of them) take their slots; the
    # entries tied at the boundary fill the rest smallest-index first —
    # exactly the order a stable full sort would have produced.
    better = np.flatnonzero(negated < kth)
    chosen = (
        np.concatenate([better, np.flatnonzero(negated == kth)[: k - len(better)]])
        if len(better) < k
        else better[:k]
    )
    return chosen[np.argsort(negated[chosen], kind="stable")]


def top_k_from_scores(
    scores: np.ndarray,
    k: int,
    *,
    exclude: int | None = None,
    candidate_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Indices of the ``k`` highest scores, honoring exclusions and masks.

    The selection primitive shared by the exact similarity backend and the
    LSH re-ranker: one :func:`np.argpartition` pass over a precomputed
    score vector, no python loop, no full sort.  Ties break by ascending
    index, matching a stable descending sort bit for bit.
    """
    scores = np.asarray(scores)
    check_positive_int(k, "k")
    n = scores.shape[0]
    if candidate_mask is None and exclude is None:
        return _top_k_desc(scores, k)
    allowed = (
        np.ones(n, dtype=bool)
        if candidate_mask is None
        else np.asarray(candidate_mask, dtype=bool).copy()
    )
    if allowed.shape[0] != n:
        raise ValueError("candidate_mask length must match the score vector")
    if exclude is not None:
        allowed[exclude] = False
    candidates = np.flatnonzero(allowed)
    if len(candidates) == 0:
        return candidates
    return candidates[_top_k_desc(scores[candidates], min(k, len(candidates)))]


def top_k_similar(
    features: np.ndarray,
    query_index: int,
    k: int,
    *,
    metric: str = "cosine",
    candidate_mask: np.ndarray | None = None,
) -> list[tuple[int, float]]:
    """The ``k`` companies most similar to ``query_index``.

    Returns ``(index, similarity)`` pairs (similarity = 1 - distance for
    euclidean scaled into similarity is *not* attempted; for euclidean the
    second element is the negated distance so that higher is always
    better).  ``candidate_mask`` restricts the searched companies — the
    filter hook the sales application uses.  Selection runs through
    :func:`top_k_from_scores`, a single matrix–vector product plus an
    ``argpartition`` — no per-company loop, no full sort.
    """
    matrix = check_matrix(features, "features")
    check_positive_int(k, "k")
    check_in_choices(metric, "metric", ("cosine", "euclidean"))
    n = matrix.shape[0]
    if not 0 <= query_index < n:
        raise IndexError(f"query_index {query_index} out of range [0, {n})")
    if metric == "cosine":
        norms = np.linalg.norm(matrix, axis=1)
        safe = np.where(norms == 0.0, 1.0, norms)
        unit = matrix / safe[:, None]
        scores = unit @ unit[query_index]
        if norms[query_index] == 0.0:
            scores = np.zeros(n)
        scores[norms == 0.0] = 0.0
    else:
        diff = matrix - matrix[query_index]
        scores = -np.sqrt((diff**2).sum(axis=1))
    if candidate_mask is not None and np.asarray(candidate_mask).shape[0] != n:
        raise ValueError("candidate_mask length must match the feature rows")
    ranked = top_k_from_scores(
        scores, k, exclude=query_index, candidate_mask=candidate_mask
    )
    return [(int(i), float(scores[i])) for i in ranked]
