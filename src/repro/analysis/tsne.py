"""Exact t-SNE (van der Maaten & Hinton 2008).

Figures 8 and 9 of the paper are 2-D t-SNE projections of the LDA product
embeddings.  Exact (non-Barnes-Hut) t-SNE is entirely adequate here — the
projected set is the 38 product categories — and is implemented from
scratch: per-point bandwidth calibration by binary search on perplexity,
early exaggeration, and momentum gradient descent.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    as_rng,
    check_matrix,
    check_positive_float,
    check_positive_int,
)

__all__ = ["TSNE"]


def _conditional_probabilities(
    distances_sq: np.ndarray, perplexity: float, *, tol: float = 1e-5, max_iter: int = 64
) -> np.ndarray:
    """Row-stochastic conditional P with per-row bandwidth binary search."""
    n = distances_sq.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta, beta_min, beta_max = 1.0, 0.0, np.inf
        row = distances_sq[i].copy()
        row[i] = np.inf
        for __ in range(max_iter):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= 0.0:
                beta /= 2.0
                continue
            probs = weights / total
            positive = probs[probs > 0.0]
            entropy = float(-(positive * np.log(positive)).sum())
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_min = beta
                beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
            else:
                beta_max = beta
                beta = (beta + beta_min) / 2.0
        weights = np.exp(-row * beta)
        weights[i] = 0.0
        total = weights.sum()
        p[i] = weights / total if total > 0 else 0.0
    return p


class TSNE:
    """2-D (or k-D) t-SNE embedding of a small point set.

    Parameters
    ----------
    n_components:
        Output dimensionality (2 for the paper's figures).
    perplexity:
        Effective neighbourhood size; must be < (n_points - 1) / 3 by the
        usual rule of thumb, enforced at fit time.
    learning_rate, n_iter:
        Gradient-descent schedule; the default rate suits small point sets
        (tens of points) — large rates combined with early exaggeration
        diverge there.
    early_exaggeration:
        P-matrix multiplier during the first quarter of the iterations.
    seed:
        Initialisation randomness.
    """

    def __init__(
        self,
        n_components: int = 2,
        *,
        perplexity: float = 8.0,
        learning_rate: float = 20.0,
        n_iter: int = 500,
        early_exaggeration: float = 12.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.n_components = check_positive_int(n_components, "n_components")
        self.perplexity = check_positive_float(perplexity, "perplexity")
        self.learning_rate = check_positive_float(learning_rate, "learning_rate")
        self.n_iter = check_positive_int(n_iter, "n_iter")
        self.early_exaggeration = check_positive_float(early_exaggeration, "early_exaggeration")
        self._seed = seed
        self.embedding_: np.ndarray | None = None
        self.kl_divergence_: float = np.nan

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Embed ``data`` (``(n, d)``) into ``(n, n_components)``."""
        matrix = check_matrix(data, "data")
        n = matrix.shape[0]
        if n < 4:
            raise ValueError(f"t-SNE needs at least 4 points, got {n}")
        if self.perplexity >= (n - 1):
            raise ValueError(
                f"perplexity {self.perplexity} too large for {n} points"
            )
        rng = as_rng(self._seed)

        sq = (matrix**2).sum(axis=1)
        distances_sq = np.maximum(sq[:, None] + sq[None, :] - 2.0 * matrix @ matrix.T, 0.0)
        conditional = _conditional_probabilities(distances_sq, self.perplexity)
        p = (conditional + conditional.T) / (2.0 * n)
        p = np.maximum(p, 1e-12)

        y = rng.normal(0.0, 1e-4, size=(n, self.n_components))
        velocity = np.zeros_like(y)
        exaggeration_end = max(self.n_iter // 4, 1)
        kl = np.nan
        for it in range(self.n_iter):
            p_eff = p * self.early_exaggeration if it < exaggeration_end else p
            momentum = 0.5 if it < exaggeration_end else 0.8
            y_sq = (y**2).sum(axis=1)
            num = 1.0 / (1.0 + np.maximum(y_sq[:, None] + y_sq[None, :] - 2.0 * y @ y.T, 0.0))
            np.fill_diagonal(num, 0.0)
            q = np.maximum(num / num.sum(), 1e-12)
            pq = (p_eff - q) * num
            gradient = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
            velocity = momentum * velocity - self.learning_rate * gradient
            y = y + velocity
            y = y - y.mean(axis=0)
            if it == self.n_iter - 1:
                kl = float((p * np.log(p / q)).sum())
        self.embedding_ = y
        self.kl_divergence_ = kl
        return y
