"""Silhouette scores for clustering validation (Figure 7's measure).

The silhouette of a point compares its mean distance to its own cluster
(``a``) with its mean distance to the nearest other cluster (``b``):
``s = (b - a) / max(a, b)``.  The corpus-level score is the mean over all
points.  A ``sample_size`` option bounds the quadratic cost on large
corpora, mirroring common practice.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_rng, check_in_choices, check_matrix

__all__ = ["silhouette_samples", "silhouette_score"]


def _pairwise_distances(data: np.ndarray, metric: str) -> np.ndarray:
    """Dense pairwise distance matrix under the chosen metric."""
    if metric == "euclidean":
        sq = (data**2).sum(axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (data @ data.T)
        return np.sqrt(np.maximum(d2, 0.0))
    # cosine distance = 1 - cosine similarity, zero-safe
    norms = np.linalg.norm(data, axis=1)
    safe = np.where(norms == 0.0, 1.0, norms)
    unit = data / safe[:, None]
    sim = np.clip(unit @ unit.T, -1.0, 1.0)
    return 1.0 - sim


def silhouette_samples(
    data: np.ndarray, labels: np.ndarray, *, metric: str = "euclidean"
) -> np.ndarray:
    """Per-point silhouette values in [-1, 1].

    Points in singleton clusters receive silhouette 0 by convention.
    """
    matrix = check_matrix(data, "data")
    check_in_choices(metric, "metric", ("euclidean", "cosine"))
    label_array = np.asarray(labels)
    if label_array.shape[0] != matrix.shape[0]:
        raise ValueError("labels length must match the number of points")
    unique = np.unique(label_array)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least two clusters")
    distances = _pairwise_distances(matrix, metric)
    n = matrix.shape[0]
    # Mean distance from every point to every cluster, via membership sums.
    membership = (label_array[:, None] == unique[None, :]).astype(np.float64)
    cluster_sizes = membership.sum(axis=0)
    sums = distances @ membership  # (n, n_clusters)
    own_index = np.searchsorted(unique, label_array)
    own_size = cluster_sizes[own_index]
    result = np.zeros(n)
    singleton = own_size <= 1
    own_sum = sums[np.arange(n), own_index]
    a = np.where(singleton, 0.0, own_sum / np.maximum(own_size - 1.0, 1.0))
    other = sums / np.maximum(cluster_sizes[None, :], 1.0)
    other[np.arange(n), own_index] = np.inf
    b = other.min(axis=1)
    denom = np.maximum(a, b)
    valid = (~singleton) & (denom > 0.0)
    result[valid] = (b[valid] - a[valid]) / denom[valid]
    return result


def silhouette_score(
    data: np.ndarray,
    labels: np.ndarray,
    *,
    metric: str = "euclidean",
    sample_size: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Mean silhouette over all (or a sampled subset of) points.

    ``sample_size`` caps the quadratic distance computation; the sample is
    stratified implicitly by uniform choice, which is adequate for the
    cluster-count sweeps of Figure 7.
    """
    matrix = check_matrix(data, "data")
    label_array = np.asarray(labels)
    if sample_size is not None and sample_size < matrix.shape[0]:
        if sample_size < 2:
            raise ValueError(f"sample_size must be >= 2, got {sample_size}")
        rng = as_rng(seed)
        chosen = rng.choice(matrix.shape[0], size=sample_size, replace=False)
        matrix = matrix[chosen]
        label_array = label_array[chosen]
        if len(np.unique(label_array)) < 2:
            # The sample collapsed to one cluster; retry deterministically by
            # taking a stratified pick of two clusters.
            raise ValueError(
                "sample collapsed to a single cluster; increase sample_size"
            )
    return float(silhouette_samples(matrix, label_array, metric=metric).mean())
