"""Vectorization helpers shared by the models.

Sequences (the ``A^S`` view) need padding and masking before the LSTM can
batch them; the binary matrix builder here mirrors
:meth:`repro.data.corpus.Corpus.binary_matrix` for callers that hold raw
token sequences rather than a corpus.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_int, check_sequences

__all__ = ["binary_matrix", "sequences_to_padded_array", "sequence_lengths"]


def binary_matrix(sequences: list[list[int]], vocab_size: int) -> np.ndarray:
    """Binary presence matrix from token sequences.

    Duplicate tokens within a sequence collapse to a single 1 — a company
    owns a category or it does not.
    """
    check_positive_int(vocab_size, "vocab_size")
    seqs = check_sequences(sequences, "sequences", vocab_size=vocab_size)
    matrix = np.zeros((len(seqs), vocab_size))
    for i, seq in enumerate(seqs):
        matrix[i, seq] = 1.0
    return matrix


def sequence_lengths(sequences: list[list[int]]) -> np.ndarray:
    """Length of each sequence as an int64 vector."""
    seqs = check_sequences(sequences, "sequences")
    return np.array([len(s) for s in seqs], dtype=np.int64)


def sequences_to_padded_array(
    sequences: list[list[int]],
    *,
    pad_value: int = -1,
    max_len: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pad sequences into a dense ``(n, max_len)`` array plus a boolean mask.

    Sequences longer than ``max_len`` (when given) are truncated from the
    *end* — the oldest acquisitions carry the profile signal, so history is
    kept and the tail dropped.

    Returns
    -------
    (padded, mask):
        ``padded[i, t]`` is the t-th token of sequence i or ``pad_value``;
        ``mask[i, t]`` is True where a real token is present.
    """
    seqs = check_sequences(sequences, "sequences")
    if not seqs:
        raise ValueError("sequences must be non-empty")
    longest = max((len(s) for s in seqs), default=0)
    if max_len is not None:
        check_positive_int(max_len, "max_len")
        longest = min(longest, max_len)
    longest = max(longest, 1)
    padded = np.full((len(seqs), longest), pad_value, dtype=np.int64)
    mask = np.zeros((len(seqs), longest), dtype=bool)
    for i, seq in enumerate(seqs):
        clipped = seq[:longest]
        padded[i, : len(clipped)] = clipped
        mask[i, : len(clipped)] = True
    return padded, mask
