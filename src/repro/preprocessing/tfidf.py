"""TF-IDF transform over the binary company x product matrix.

The paper's naive representations are "binary or Term Frequency-Inverse
Document Frequency (TF-IDF) vector of products.  In our case, TF-IDF can be
also reformulated as product frequency-inverse company frequency"
(Section 4).  With binary term frequencies the transform reduces to
down-weighting near-universal categories, which is exactly what the paper
hopes will counteract popularity bias.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_in_choices, check_matrix

__all__ = ["TfidfTransform"]


class TfidfTransform:
    """Fit IDF weights on one corpus, apply them to any compatible matrix.

    Parameters
    ----------
    smooth:
        Use the smoothed IDF ``log((1 + N) / (1 + df)) + 1`` (default), which
        never zeroes out a column and handles unseen categories.  When False,
        the classic ``log(N / df)`` is used and categories present in every
        company receive weight 0.
    norm:
        Row normalisation of the output: ``"l2"`` (default), ``"l1"`` or
        ``"none"``.
    """

    def __init__(self, *, smooth: bool = True, norm: str = "l2") -> None:
        check_in_choices(norm, "norm", ("l1", "l2", "none"))
        self.smooth = bool(smooth)
        self.norm = norm
        self._idf: np.ndarray | None = None

    @property
    def idf(self) -> np.ndarray:
        """The fitted IDF vector."""
        if self._idf is None:
            raise RuntimeError("TfidfTransform must be fitted before use")
        return self._idf

    def fit(self, matrix: np.ndarray) -> "TfidfTransform":
        """Learn IDF weights from a binary company x product matrix."""
        binary = check_matrix(matrix, "matrix", binary=True)
        n_docs = binary.shape[0]
        df = binary.sum(axis=0)
        if self.smooth:
            self._idf = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        else:
            with np.errstate(divide="ignore"):
                idf = np.log(n_docs / np.maximum(df, 1.0))
            idf[df == 0] = 0.0
            self._idf = idf
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Weight a binary matrix by the fitted IDF and normalise rows."""
        binary = check_matrix(matrix, "matrix", binary=True)
        if self._idf is None:
            raise RuntimeError("TfidfTransform must be fitted before use")
        if binary.shape[1] != self._idf.shape[0]:
            raise ValueError(
                f"matrix has {binary.shape[1]} columns but the transform was "
                f"fitted on {self._idf.shape[0]}"
            )
        weighted = binary * self._idf
        if self.norm == "none":
            return weighted
        if self.norm == "l1":
            norms = np.abs(weighted).sum(axis=1, keepdims=True)
        else:
            norms = np.sqrt((weighted**2).sum(axis=1, keepdims=True))
        norms[norms == 0.0] = 1.0
        return weighted / norms

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Fit on ``matrix`` and transform it in one step."""
        return self.fit(matrix).transform(matrix)
