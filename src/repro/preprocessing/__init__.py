"""Preprocessing: vectorization, TF-IDF, and calendar arithmetic."""

from repro.preprocessing.tfidf import TfidfTransform
from repro.preprocessing.timeutil import (
    MONTHS_PER_YEAR,
    add_months,
    date_from_month_index,
    month_index,
    month_range,
    months_between,
)
from repro.preprocessing.vectorize import (
    binary_matrix,
    sequence_lengths,
    sequences_to_padded_array,
)

__all__ = [
    "TfidfTransform",
    "MONTHS_PER_YEAR",
    "add_months",
    "date_from_month_index",
    "month_index",
    "month_range",
    "months_between",
    "binary_matrix",
    "sequence_lengths",
    "sequences_to_padded_array",
]
