"""Calendar arithmetic on month granularity.

The paper's recommendation harness works in months: windows of r months,
sliding by two months, over product time series spanning 1990 to January
2016 (Section 5.1).  All date arithmetic in the library goes through the
month-index helpers here so off-by-one window bugs have a single home.

A *month index* counts whole months since January of year 0; two dates in
the same calendar month share an index regardless of day.
"""

from __future__ import annotations

import datetime as dt
from typing import Iterator

__all__ = [
    "MONTHS_PER_YEAR",
    "month_index",
    "date_from_month_index",
    "add_months",
    "months_between",
    "month_range",
]

MONTHS_PER_YEAR = 12


def month_index(date: dt.date) -> int:
    """Whole months since January of year 0 for ``date``'s calendar month."""
    return date.year * MONTHS_PER_YEAR + (date.month - 1)


def date_from_month_index(index: int) -> dt.date:
    """First day of the calendar month with the given index."""
    if index < MONTHS_PER_YEAR:  # year 0 is not representable by datetime.date
        raise ValueError(f"month index {index} precedes year 1")
    year, month_zero = divmod(index, MONTHS_PER_YEAR)
    return dt.date(year, month_zero + 1, 1)


def add_months(date: dt.date, months: int) -> dt.date:
    """Shift ``date`` by whole months, clamping the day to the target month.

    ``add_months(date(2013, 1, 31), 1)`` is ``date(2013, 2, 28)``.
    """
    index = month_index(date) + months
    first = date_from_month_index(index)
    # Clamp the day-of-month to the length of the target month.
    if first.month == MONTHS_PER_YEAR:
        next_first = dt.date(first.year + 1, 1, 1)
    else:
        next_first = dt.date(first.year, first.month + 1, 1)
    days_in_month = (next_first - first).days
    return first.replace(day=min(date.day, days_in_month))


def months_between(start: dt.date, end: dt.date) -> int:
    """Whole calendar months from ``start``'s month to ``end``'s month."""
    return month_index(end) - month_index(start)


def month_range(start: dt.date, end: dt.date, *, stride: int = 1) -> Iterator[dt.date]:
    """First-of-month dates from ``start``'s month (inclusive) to ``end``'s (exclusive)."""
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    index = month_index(start)
    stop = month_index(end)
    while index < stop:
        yield date_from_month_index(index)
        index += stride
