"""Figures 3 and 4: recommendation accuracy over sliding windows.

Figure 3 plots recall and F1 (with 95% CIs) against the probability
threshold phi for LDA3, the best LSTM and the depth-2 exact CHH
recommender; Figure 4 plots the retrieved / correctly-retrieved / relevant
product counts.  The paper's qualitative findings:

* LDA recall is consistently highest for phi <= 0.2 and its F1 leads over a
  large phi range;
* LSTM and CHH retrieve similar numbers of *true* products, but CHH
  over-retrieves, hurting its precision;
* the uniform random baseline (p = 1/38) retrieves everything at
  phi <= 0.026 and essentially nothing correct above;
* past some threshold no method recommends anything.
"""

from __future__ import annotations

import functools
from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentData
from repro.models.chh import ConditionalHeavyHitters
from repro.models.lda import LatentDirichletAllocation
from repro.models.lstm import LSTMModel
from repro.obs import trace
from repro.recommend.baselines import RandomRecommender
from repro.recommend.evaluation import RecommendationEvaluator, ThresholdCurve
from repro.recommend.windows import SlidingWindowSpec
from repro.runtime import FitCache, RunJournal

__all__ = ["run_recommendation_accuracy", "DEFAULT_THRESHOLDS"]

#: The phi grid of Figures 3/4 (paper: 0 .. 0.4 for accuracy, 0 .. 0.9 for counts).
DEFAULT_THRESHOLDS: tuple[float, ...] = tuple(
    float(t) for t in np.round(np.arange(0.0, 0.55, 0.05), 2)
)


def run_recommendation_accuracy(
    data: ExperimentData,
    *,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    spec: SlidingWindowSpec | None = None,
    lda_topics: int = 3,
    lstm_hidden: int = 200,
    lstm_epochs: int = 10,
    retrain_per_window: bool = False,
    include_random: bool = True,
    seed: int = 0,
    n_jobs: int = 1,
    fit_cache: FitCache | None = None,
    retries: int = 0,
    task_timeout: float | None = None,
    journal: RunJournal | None = None,
) -> dict[str, ThresholdCurve]:
    """Run the Figure 3/4 protocol; returns one ThresholdCurve per method.

    ``retrain_per_window=True`` is the paper's exact protocol; the default
    trains once before the first window, which changes the numbers by far
    less than the window-to-window variance and is an order of magnitude
    cheaper (the ablation benchmark quantifies the difference).

    ``n_jobs > 1`` fans the (window x model) fit+score cells out over a
    process pool — results are identical to a serial run for any fixed
    seed — and ``fit_cache`` memoizes the per-window refits across runs.

    A (window, model) cell that exhausts ``retries`` contributes no
    observation for that window (recorded, not fatal); ``journal``
    checkpoints finished cells so an interrupted sweep resumes without
    re-running them.
    """
    factories = {
        f"LDA{lda_topics}": functools.partial(
            LatentDirichletAllocation,
            n_topics=lda_topics,
            inference="variational",
            n_iter=80,
            seed=seed,
        ),
        "LSTM": functools.partial(
            LSTMModel, hidden=lstm_hidden, n_layers=1, n_epochs=lstm_epochs, seed=seed
        ),
        "CHH": functools.partial(ConditionalHeavyHitters, depth=2),
    }
    if include_random:
        factories["random"] = functools.partial(RandomRecommender)
    evaluator = RecommendationEvaluator(
        data.corpus,
        spec=spec if spec is not None else SlidingWindowSpec(),
        thresholds=thresholds,
        retrain_per_window=retrain_per_window,
        n_jobs=n_jobs,
        fit_cache=fit_cache,
        retries=retries,
        task_timeout=task_timeout,
        journal=journal,
    )
    with trace.span("exp.fig34.evaluate"):
        return evaluator.evaluate(factories)


def format_curves(curves: dict[str, ThresholdCurve]) -> str:
    """Fixed-width rendering of the accuracy curves for console output."""
    lines = []
    for name, curve in curves.items():
        lines.append(f"== {name} ==")
        lines.append(
            f"{'phi':>5}  {'recall':>7} {'f1':>7} {'precision':>9} "
            f"{'retrieved':>10} {'correct':>8} {'relevant':>8}"
        )
        for row in curve.as_rows():
            lines.append(
                f"{row['threshold']:>5.2f}  {row['recall']:>7.3f} {row['f1']:>7.3f} "
                f"{row['precision']:>9.3f} {row['retrieved']:>10.0f} "
                f"{row['correct']:>8.0f} {row['relevant']:>8.0f}"
            )
    return "\n".join(lines)
