"""Experiment drivers: one module per paper table/figure.

Each driver builds on the public API and returns plain dicts/lists so the
CLI can print them and the benchmark suite can both time and sanity-check
them.  The experiment <-> module mapping lives in DESIGN.md Section 4.
"""

from repro.experiments.ablations import (
    run_gru_ablation,
    run_lda_inference_ablation,
    run_lstm_training_ablation,
    run_retrain_ablation,
    run_window_size_ablation,
)
from repro.experiments.cocluster_baseline import run_cocluster_baseline
from repro.experiments.common import (
    ExperimentData,
    load_corpus_data,
    make_experiment_data,
)
from repro.experiments.extensions import (
    run_representation_families,
    run_streaming_chh_accuracy,
)
from repro.experiments.fig1_lstm_grid import run_lstm_grid
from repro.experiments.future_work import (
    rollup_types_to_categories,
    run_type_granularity_study,
)
from repro.experiments.fig2_lda_sweep import run_lda_sweep
from repro.experiments.fig34_recommendation import run_recommendation_accuracy
from repro.experiments.fig56_bpmf import run_bpmf_analysis
from repro.experiments.fig7_silhouette import run_silhouette_curves
from repro.experiments.fig89_tsne import run_tsne_projection
from repro.experiments.sequentiality import run_sequentiality
from repro.experiments.table1 import run_perplexity_table

__all__ = [
    "ExperimentData",
    "load_corpus_data",
    "make_experiment_data",
    "run_lstm_grid",
    "run_lda_sweep",
    "run_recommendation_accuracy",
    "run_bpmf_analysis",
    "run_silhouette_curves",
    "run_tsne_projection",
    "run_sequentiality",
    "run_perplexity_table",
    "run_cocluster_baseline",
    "run_gru_ablation",
    "run_lda_inference_ablation",
    "run_lstm_training_ablation",
    "run_retrain_ablation",
    "run_window_size_ablation",
    "run_representation_families",
    "run_streaming_chh_accuracy",
    "rollup_types_to_categories",
    "run_type_granularity_study",
]
