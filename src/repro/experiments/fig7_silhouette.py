"""Figure 7: silhouette curves of eight company representations.

The paper k-means-clusters companies under eight representations — raw
binary, raw TF-IDF, LDA(2/3/4/7) on binary input, LDA(2/4) on TF-IDF input
— for cluster counts from 5 to 400 and compares silhouette scores.  The
finding: LDA-binary with 2-4 topics dominates; raw binary is worst; TF-IDF
helps the raw representation but LDA on binary beats both.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.kmeans import KMeans
from repro.analysis.silhouette import silhouette_score
from repro.experiments.common import ExperimentData
from repro.models.lda import LatentDirichletAllocation
from repro.obs import trace
from repro.preprocessing.tfidf import TfidfTransform

__all__ = ["run_silhouette_curves", "DEFAULT_CLUSTER_GRID"]

#: Cluster counts matching the x-axis of Figure 7, scaled to corpus size.
DEFAULT_CLUSTER_GRID: tuple[int, ...] = (5, 10, 25, 50, 100, 200)


def build_representations(
    data: ExperimentData, *, n_iter: int = 80, seed: int = 0
) -> dict[str, np.ndarray]:
    """The eight company representations compared in Figure 7."""
    corpus = data.corpus
    binary = corpus.binary_matrix()
    tfidf = TfidfTransform().fit_transform(binary)
    representations: dict[str, np.ndarray] = {
        "raw": binary,
        "raw_tfidf": tfidf,
    }
    for k in (2, 3, 4, 7):
        lda = LatentDirichletAllocation(
            n_topics=k, inference="variational", n_iter=n_iter, seed=seed
        ).fit(corpus)
        representations[f"lda_{k}"] = lda.company_features(corpus)
    for k in (2, 4):
        lda = LatentDirichletAllocation(
            n_topics=k,
            inference="variational",
            input_type="tfidf",
            n_iter=n_iter,
            seed=seed,
        ).fit(corpus)
        representations[f"tfidf_lda_{k}"] = lda.company_features(corpus)
    return representations


def run_silhouette_curves(
    data: ExperimentData,
    *,
    cluster_grid: Sequence[int] = DEFAULT_CLUSTER_GRID,
    sample_size: int | None = 1500,
    seed: int = 0,
) -> list[dict[str, float | str]]:
    """Silhouette score for every (representation, cluster count) pair."""
    with trace.span("exp.fig7.fit"):
        representations = build_representations(data, seed=seed)
    n = data.corpus.n_companies
    rows: list[dict[str, float | str]] = []
    with trace.span("exp.fig7.evaluate"):
        for name, features in representations.items():
            for k in cluster_grid:
                if k >= n:
                    continue
                labels = KMeans(k, seed=seed).fit_predict(features)
                score = silhouette_score(
                    features, labels, sample_size=sample_size, seed=seed
                )
                rows.append(
                    {
                        "representation": name,
                        "n_clusters": float(k),
                        "silhouette": score,
                    }
                )
    return rows


def mean_by_representation(rows: list[dict[str, float | str]]) -> dict[str, float]:
    """Average silhouette per representation across the cluster grid."""
    sums: dict[str, list[float]] = {}
    for row in rows:
        sums.setdefault(str(row["representation"]), []).append(float(row["silhouette"]))
    return {name: float(np.mean(values)) for name, values in sums.items()}
