"""Figures 5 and 6: the BPMF degeneracy on dense install-base data.

Figure 5 is a boxplot of BPMF recommendation scores — virtually all mass in
[0.9, 1.0].  Figure 6 sweeps the recommendation-score threshold over
[0.90, 0.99]: below ~0.94 everything is recommended (precision equals the
base rate, recall ~1) and the curves barely move, demonstrating that the
scores carry no ranking information on dense binary data.
"""

from __future__ import annotations

import functools
from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentData
from repro.models.bpmf import BayesianPMF
from repro.obs import get_logger, trace
from repro.runtime import (
    FitCache,
    Ok,
    RunJournal,
    cell_key,
    faults,
    fit_model,
    run_with_retries,
)

__all__ = ["run_bpmf_analysis"]


def _failed_analysis(error: str) -> dict[str, object]:
    """The recorded-failure shape of the BPMF analysis: NaN everywhere."""
    nan = float("nan")
    return {
        "score_quantiles": {
            "min": nan,
            "q1": nan,
            "median": nan,
            "q3": nan,
            "max": nan,
            "frac_ge_0.9": nan,
        },
        "threshold_rows": [],
        "failed": error,
    }


def run_bpmf_analysis(
    data: ExperimentData,
    *,
    n_factors: int = 8,
    n_iter: int = 50,
    thresholds: Sequence[float] = tuple(np.round(np.arange(0.90, 1.0, 0.01), 2)),
    seed: int = 0,
    fit_cache: FitCache | None = None,
    retries: int = 0,
    journal: RunJournal | None = None,
) -> dict[str, object]:
    """Fit BPMF on the train companies' positive cells; analyse the scores.

    Returns a dict with:

    * ``"score_quantiles"`` — the Figure 5 boxplot statistics (min, q1,
      median, q3, max, plus the fraction of scores >= 0.9);
    * ``"threshold_rows"`` — Figure 6: precision/recall/F1 of recommending
      every unowned product whose score passes each threshold, judged
      against the test-period ground truth (products first seen after the
      train cutoff are unavailable to BPMF, so the natural protocol is the
      same one the recommendation harness uses for a single window over
      the whole horizon).

    The analysis is one fault-tolerance cell: it is retried ``retries``
    extra times on failure, checkpointed/replayed through ``journal``, and
    degrades to an all-NaN result carrying a ``"failed"`` message when the
    attempts are exhausted.
    """
    key = cell_key("fig56", n_factors, n_iter, seed)
    if journal is not None:
        entry = journal.completed(key)
        if entry is not None:
            return entry.value

    def analysis() -> dict[str, object]:
        faults.inject(key)
        return _bpmf_analysis(data, n_factors, n_iter, thresholds, seed, fit_cache)

    outcome = run_with_retries(analysis, retries=retries)
    if isinstance(outcome, Ok):
        if journal is not None:
            journal.record_ok(key, outcome.value, attempts=outcome.attempts)
        return outcome.value
    if journal is not None:
        journal.record_failure(key, outcome.describe(), attempts=outcome.attempts)
    get_logger("experiments").warning(
        "BPMF analysis failed after %d attempt(s): %s",
        outcome.attempts,
        outcome.describe(),
    )
    return _failed_analysis(outcome.describe())


def _bpmf_analysis(
    data: ExperimentData,
    n_factors: int,
    n_iter: int,
    thresholds: Sequence[float],
    seed: int,
    fit_cache: FitCache | None,
) -> dict[str, object]:
    """The actual fit + score analysis (one attempt)."""
    corpus = data.corpus
    import datetime as dt

    cutoff = dt.date(2013, 1, 1)
    with trace.span("exp.fig56.fit"):
        train = corpus.truncated_before(cutoff)
        model = fit_model(
            functools.partial(BayesianPMF, n_factors=n_factors, n_iter=n_iter, seed=seed),
            train,
            fit_cache,
        )
    scores = model.recommendation_scores()
    quantiles = {
        "min": float(scores.min()),
        "q1": float(np.quantile(scores, 0.25)),
        "median": float(np.median(scores)),
        "q3": float(np.quantile(scores, 0.75)),
        "max": float(scores.max()),
        "frac_ge_0.9": float((scores >= 0.9).mean()),
    }

    # One evaluation pass: recommend unowned products above each threshold,
    # judged against what appeared after the cutoff.  The whole sweep is a
    # single vectorized pass over (prediction, owned, truth) matrices — one
    # boolean comparison per threshold instead of per-company set algebra.
    with trace.span("exp.fig56.evaluate"):
        train_index = {c.duns.value: i for i, c in enumerate(train.companies)}
        predictions = model.prediction_matrix
        row_indices: list[int] = []
        owned_pairs: list[tuple[int, int]] = []
        truth_pairs: list[tuple[int, int]] = []
        for company in corpus.companies:
            idx = train_index.get(company.duns.value)
            if idx is None:
                continue
            i = len(row_indices)
            row_indices.append(idx)
            for category, first_seen in company.first_seen.items():
                token = corpus.token(category)
                if first_seen < cutoff:
                    owned_pairs.append((i, token))
                else:
                    truth_pairs.append((i, token))
        scores = predictions[row_indices]
        owned = np.zeros(scores.shape, dtype=bool)
        truth = np.zeros(scores.shape, dtype=bool)
        if owned_pairs:
            owned[tuple(np.array(owned_pairs).T)] = True
        if truth_pairs:
            truth[tuple(np.array(truth_pairs).T)] = True
        eligible = ~owned
        n_relevant = int(truth.sum())
        rows = []
        for threshold in thresholds:
            hits = (scores >= threshold) & eligible
            n_retrieved = int(hits.sum())
            n_correct = int((hits & truth).sum())
            precision = n_correct / n_retrieved if n_retrieved else float("nan")
            recall = n_correct / n_relevant if n_relevant else 0.0
            if np.isnan(precision) or precision + recall == 0.0:
                f1 = float("nan")
            else:
                f1 = 2 * precision * recall / (precision + recall)
            rows.append(
                {
                    "threshold": float(threshold),
                    "precision": precision,
                    "recall": recall,
                    "f1": f1,
                    "retrieved": float(n_retrieved),
                    "correct": float(n_correct),
                }
            )
    return {"score_quantiles": quantiles, "threshold_rows": rows}
