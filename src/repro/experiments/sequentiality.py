"""In-text result: the binomial sequentiality test.

Section 5 reports that 69% of bigrams and 43% of trigrams occur
significantly more often than under i.i.d. products, justifying the use of
sequence models at all.  The driver runs the same binomial test on the
synthetic corpus.
"""

from __future__ import annotations

from repro.analysis.stats import SequentialityReport, sequentiality_test
from repro.experiments.common import ExperimentData
from repro.obs import trace

__all__ = ["run_sequentiality", "PAPER_FRACTIONS"]

#: The paper's reported significant fractions.
PAPER_FRACTIONS: dict[int, float] = {2: 0.69, 3: 0.43}


def run_sequentiality(
    data: ExperimentData, *, alpha: float = 0.05
) -> dict[int, SequentialityReport]:
    """Bigram and trigram sequentiality reports for the corpus."""
    with trace.span("exp.sequentiality.evaluate"):
        return {
            order: sequentiality_test(data.corpus, order=order, alpha=alpha)
            for order in (2, 3)
        }
