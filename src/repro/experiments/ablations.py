"""Ablation studies beyond the paper's figures.

* Window size (the paper's declared future work): how the recommendation
  accuracy changes with r in {6, 12, 18, 24} months.
* GRU vs LSTM cells (the related-work discussion of Section 3.4).
* LDA inference: collapsed Gibbs vs variational Bayes parity.
* LSTM training regime: the paper-faithful PTB stream with the fixed
  14-epoch SGD budget vs per-company batching with Adam (quantifying how
  much of the LDA-vs-LSTM gap is a training-budget artifact).
* Retraining per window vs training once before the first window.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentData
from repro.models.lda import LatentDirichletAllocation
from repro.models.lstm import LSTMModel
from repro.recommend.evaluation import RecommendationEvaluator
from repro.recommend.windows import SlidingWindowSpec

__all__ = [
    "run_window_size_ablation",
    "run_gru_ablation",
    "run_lda_inference_ablation",
    "run_lstm_training_ablation",
    "run_retrain_ablation",
]


def run_window_size_ablation(
    data: ExperimentData,
    *,
    window_sizes: Sequence[int] = (6, 12, 18, 24),
    threshold: float = 0.1,
    lda_topics: int = 3,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Recommendation accuracy of LDA as the window span r varies.

    The number of windows shrinks as r grows so that the last window always
    ends at the paper's horizon (January 2016).
    """
    rows = []
    for months in window_sizes:
        n_windows = max(1, (36 - months) // 2 + 1)
        spec = SlidingWindowSpec(window_months=months, n_windows=n_windows)
        evaluator = RecommendationEvaluator(
            data.corpus,
            spec=spec,
            thresholds=[threshold],
            retrain_per_window=False,
        )
        curves = evaluator.evaluate(
            {
                "lda": lambda: LatentDirichletAllocation(
                    n_topics=lda_topics, inference="variational", n_iter=80, seed=seed
                )
            }
        )
        recall, __, __ = curves["lda"].recall(threshold)
        f1, __, __ = curves["lda"].f1(threshold)
        rows.append(
            {
                "window_months": float(months),
                "n_windows": float(n_windows),
                "recall": recall,
                "f1": f1,
            }
        )
    return rows


def run_gru_ablation(
    data: ExperimentData,
    *,
    hidden: int = 200,
    n_epochs: int = 14,
    seed: int = 0,
) -> dict[str, float]:
    """Test perplexity of GRU vs LSTM cells at the same grid point."""
    split = data.split
    results = {}
    for cell in ("lstm", "gru"):
        model = LSTMModel(
            hidden=hidden,
            n_layers=1,
            cell=cell,
            n_epochs=n_epochs,
            validation=split.validation,
            seed=seed,
        ).fit(split.train)
        results[cell] = model.perplexity(split.test)
    return results


def run_lda_inference_ablation(
    data: ExperimentData,
    *,
    n_topics: int = 4,
    n_iter: int = 100,
    seed: int = 0,
) -> dict[str, float]:
    """Collapsed Gibbs vs variational Bayes test perplexity."""
    split = data.split
    results = {}
    for inference in ("gibbs", "variational"):
        model = LatentDirichletAllocation(
            n_topics=n_topics, inference=inference, n_iter=n_iter, seed=seed
        ).fit(split.train)
        results[inference] = model.perplexity(split.test)
    return results


def run_lstm_training_ablation(
    data: ExperimentData,
    *,
    hidden: int = 200,
    n_epochs: int = 14,
    seed: int = 0,
) -> dict[str, float]:
    """Paper-faithful PTB budget vs modern per-company Adam training.

    The second configuration shows that a converged, per-company-batched
    LSTM closes (and can invert) the LDA gap — evidence that the paper's
    Table 1 ordering partly reflects the 2016-era training recipe, which we
    reproduce faithfully by default.
    """
    split = data.split
    results = {}
    paper = LSTMModel(
        hidden=hidden,
        n_layers=1,
        n_epochs=n_epochs,
        validation=split.validation,
        seed=seed,
    ).fit(split.train)
    results["ptb_sgd_stream"] = paper.perplexity(split.test)
    modern = LSTMModel(
        hidden=hidden,
        n_layers=1,
        batching="company",
        optimizer="adam",
        n_epochs=n_epochs,
        validation=split.validation,
        seed=seed,
    ).fit(split.train)
    results["adam_per_company"] = modern.perplexity(split.test)
    return results


def run_retrain_ablation(
    data: ExperimentData,
    *,
    threshold: float = 0.1,
    lda_topics: int = 3,
    n_windows: int = 5,
    seed: int = 0,
) -> dict[str, float]:
    """Recall at one threshold: retraining per window vs training once."""
    spec = SlidingWindowSpec(n_windows=n_windows)
    results = {}
    for retrain in (True, False):
        evaluator = RecommendationEvaluator(
            data.corpus,
            spec=spec,
            thresholds=[threshold],
            retrain_per_window=retrain,
        )
        curves = evaluator.evaluate(
            {
                "lda": lambda: LatentDirichletAllocation(
                    n_topics=lda_topics, inference="variational", n_iter=80, seed=seed
                )
            }
        )
        key = "retrain_per_window" if retrain else "train_once"
        results[key] = curves["lda"].recall(threshold)[0]
    return results
