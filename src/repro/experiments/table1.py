"""Table 1: minimum perplexity achieved by each method.

Paper values (860k companies): LDA 8.5 < LSTM 11.6 < n-grams 15.5 <
unigram 19.5.  The driver fits each method's best-known configuration on
the train split and reports test perplexity, preserving the ranking rather
than the absolute numbers (the substrate is the synthetic universe).

Fault tolerance: each method is one sweep cell.  A cell that exhausts its
retries degrades to a recorded failure — ``NaN`` in the table — instead of
killing the sweep, and with a :class:`~repro.runtime.RunJournal` attached,
finished cells are checkpointed as they complete and skipped on resume.
"""

from __future__ import annotations

import functools
import math
from typing import Any

from repro.experiments.common import ExperimentData
from repro.models.lda import LatentDirichletAllocation
from repro.models.lstm import LSTMModel
from repro.models.ngram import NGramModel
from repro.models.unigram import UnigramModel
from repro.obs import trace
from repro.runtime import (
    FitCache,
    Ok,
    ParallelMap,
    RunJournal,
    cell_key,
    faults,
    fingerprint_corpus,
    fit_model,
)

__all__ = ["run_perplexity_table", "PAPER_TABLE1", "TABLE1_METHODS"]

#: Table-row name -> the fitted configurations backing it.  ``ngram`` is
#: the better of bigram/trigram, so selecting it fits both.
TABLE1_METHODS: dict[str, tuple[str, ...]] = {
    "unigram": ("unigram",),
    "ngram": ("bigram", "trigram"),
    "lstm": ("lstm",),
    "lda": ("lda",),
}

#: The paper's reported minimum perplexities, for side-by-side printing.
PAPER_TABLE1: dict[str, float] = {
    "lda": 8.5,
    "lstm": 11.6,
    "ngram": 15.5,
    "unigram": 19.5,
}


def _table1_task(payload: dict[str, Any]) -> float:
    """Worker task: fit one method configuration, return test perplexity."""
    faults.inject(payload["cell"])
    model = fit_model(
        payload["factory"], payload["train"], payload["cache"], payload["fingerprint"]
    )
    return model.perplexity(payload["test"])


def _nan_min(*values: float) -> float:
    """Minimum over the finite values; NaN only when every input failed."""
    finite = [v for v in values if not math.isnan(v)]
    return min(finite) if finite else float("nan")


def run_perplexity_table(
    data: ExperimentData,
    *,
    lda_topics: int = 4,
    lstm_hidden: int = 200,
    lstm_epochs: int = 14,
    lda_iter: int = 100,
    seed: int = 0,
    n_jobs: int = 1,
    fit_cache: FitCache | None = None,
    retries: int = 0,
    task_timeout: float | None = None,
    journal: RunJournal | None = None,
    methods: tuple[str, ...] | list[str] | None = None,
) -> dict[str, float]:
    """Fit every method's best configuration; return test perplexities.

    The best configurations mirror the paper's findings: LDA with a small
    number of topics on binary input, a 1-layer LSTM with a large embedding,
    the better of bigram/trigram, and the unigram baseline.  The five fits
    are independent; ``n_jobs > 1`` runs them on a process pool (``1``
    reproduces the serial fit order exactly), and ``fit_cache`` memoizes
    each fitted configuration across runs.

    A method whose cell fails after ``retries`` extra attempts reports
    ``NaN`` instead of aborting the table; ``journal`` checkpoints each
    finished cell (result or failure) and replays completed ones on
    resume, counted as ``journal.skip``.

    ``methods`` restricts the table to a subset of rows (names from
    :data:`TABLE1_METHODS`; ``None`` computes all four).  Cell keys are
    unchanged by the selection, so a journal written by a full run replays
    into a restricted one and vice versa.
    """
    if methods is None:
        selected = tuple(TABLE1_METHODS)
    else:
        unknown = [name for name in methods if name not in TABLE1_METHODS]
        if unknown:
            raise ValueError(
                f"unknown table1 method(s) {unknown}; "
                f"choose from {sorted(TABLE1_METHODS)}"
            )
        selected = tuple(name for name in TABLE1_METHODS if name in set(methods))
    wanted = {fit for name in selected for fit in TABLE1_METHODS[name]}
    split = data.split
    factories = {
        "unigram": functools.partial(UnigramModel),
        "bigram": functools.partial(NGramModel, order=2),
        "trigram": functools.partial(NGramModel, order=3),
        "lstm": functools.partial(
            LSTMModel,
            hidden=lstm_hidden,
            n_layers=1,
            n_epochs=lstm_epochs,
            validation=split.validation,
            seed=seed,
        ),
        "lda": functools.partial(
            LatentDirichletAllocation,
            n_topics=lda_topics,
            inference="variational",
            n_iter=lda_iter,
            seed=seed,
        ),
    }
    fingerprint = fingerprint_corpus(split.train) if fit_cache is not None else None
    perplexities: dict[str, float] = {}
    pending: list[dict[str, Any]] = []
    for name, factory in factories.items():
        if name not in wanted:
            continue
        key = cell_key(
            "table1", name, seed, lstm_hidden, lstm_epochs, lda_topics, lda_iter
        )
        if journal is not None:
            entry = journal.completed(key)
            if entry is not None:
                perplexities[name] = float(entry.value)
                continue
        pending.append(
            {
                "name": name,
                "cell": key,
                "factory": factory,
                "train": split.train,
                "test": split.test,
                "cache": fit_cache,
                "fingerprint": fingerprint,
            }
        )
    def journal_outcome(position: int, outcome: Any) -> None:
        # Fires per finished cell, so a killed run keeps its completed fits.
        if journal is None:
            return
        cell = pending[position]["cell"]
        if isinstance(outcome, Ok):
            journal.record_ok(cell, float(outcome.value), attempts=outcome.attempts)
        else:
            journal.record_failure(cell, outcome.describe(), attempts=outcome.attempts)

    with trace.span("exp.table1.fit"):
        executor = ParallelMap(n_jobs, retries=retries, task_timeout=task_timeout)
        outcomes = executor.map_outcomes(
            _table1_task, pending, on_outcome=journal_outcome
        )
        for payload, outcome in zip(pending, outcomes):
            if isinstance(outcome, Ok):
                perplexities[payload["name"]] = float(outcome.value)
            else:
                perplexities[payload["name"]] = float("nan")
    with trace.span("exp.table1.evaluate"):
        results: dict[str, float] = {}
        for name in selected:
            results[name] = _nan_min(
                *(perplexities[fit] for fit in TABLE1_METHODS[name])
            )
    return results


def format_table(results: dict[str, float]) -> str:
    """Render the measured-vs-paper comparison as fixed-width text.

    Failed (NaN) cells sort last and render as ``failed`` so a degraded
    sweep is obvious at a glance.
    """
    order = sorted(
        results, key=lambda name: (math.isnan(results[name]), results[name])
    )
    lines = [
        f"{'rank':>4}  {'method':<10} {'measured':>9}  {'paper':>6}",
    ]
    for rank, name in enumerate(order, start=1):
        paper = PAPER_TABLE1.get(name, float("nan"))
        measured = (
            "   failed" if math.isnan(results[name]) else f"{results[name]:>9.2f}"
        )
        lines.append(f"{rank:>4}  {name:<10} {measured}  {paper:>6.1f}")
    return "\n".join(lines)
