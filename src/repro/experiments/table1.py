"""Table 1: minimum perplexity achieved by each method.

Paper values (860k companies): LDA 8.5 < LSTM 11.6 < n-grams 15.5 <
unigram 19.5.  The driver fits each method's best-known configuration on
the train split and reports test perplexity, preserving the ranking rather
than the absolute numbers (the substrate is the synthetic universe).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentData
from repro.models.lda import LatentDirichletAllocation
from repro.models.lstm import LSTMModel
from repro.models.ngram import NGramModel
from repro.models.unigram import UnigramModel
from repro.obs import trace

__all__ = ["run_perplexity_table", "PAPER_TABLE1"]

#: The paper's reported minimum perplexities, for side-by-side printing.
PAPER_TABLE1: dict[str, float] = {
    "lda": 8.5,
    "lstm": 11.6,
    "ngram": 15.5,
    "unigram": 19.5,
}


def run_perplexity_table(
    data: ExperimentData,
    *,
    lda_topics: int = 4,
    lstm_hidden: int = 200,
    lstm_epochs: int = 14,
    lda_iter: int = 100,
    seed: int = 0,
) -> dict[str, float]:
    """Fit every method's best configuration; return test perplexities.

    The best configurations mirror the paper's findings: LDA with a small
    number of topics on binary input, a 1-layer LSTM with a large embedding,
    the better of bigram/trigram, and the unigram baseline.
    """
    split = data.split

    with trace.span("exp.table1.fit"):
        unigram = UnigramModel().fit(split.train)
        bigram = NGramModel(order=2).fit(split.train)
        trigram = NGramModel(order=3).fit(split.train)
        lstm = LSTMModel(
            hidden=lstm_hidden,
            n_layers=1,
            n_epochs=lstm_epochs,
            validation=split.validation,
            seed=seed,
        ).fit(split.train)
        lda = LatentDirichletAllocation(
            n_topics=lda_topics,
            inference="variational",
            n_iter=lda_iter,
            seed=seed,
        ).fit(split.train)

    with trace.span("exp.table1.evaluate"):
        results: dict[str, float] = {
            "unigram": unigram.perplexity(split.test),
            "ngram": min(
                bigram.perplexity(split.test), trigram.perplexity(split.test)
            ),
            "lstm": lstm.perplexity(split.test),
            "lda": lda.perplexity(split.test),
        }
    return results


def format_table(results: dict[str, float]) -> str:
    """Render the measured-vs-paper comparison as fixed-width text."""
    order = sorted(results, key=results.get)
    lines = [
        f"{'rank':>4}  {'method':<10} {'measured':>9}  {'paper':>6}",
    ]
    for rank, name in enumerate(order, start=1):
        paper = PAPER_TABLE1.get(name, float("nan"))
        lines.append(f"{rank:>4}  {name:<10} {results[name]:>9.2f}  {paper:>6.1f}")
    return "\n".join(lines)
