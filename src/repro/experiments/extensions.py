"""Extension experiments beyond the paper's figures.

* **Representation families** — the paper's related work (Sections 3.4 and
  3.5) discusses two alternatives to LDA features that it does not
  evaluate: LSI projections and aggregated word2vec embeddings (via the
  Fisher kernel).  This driver completes the comparison on the clustering
  task of Figure 7.
* **Streaming CHH accuracy** — the CHH line of work targets bounded-memory
  streams; this driver measures how the SpaceSaving-based sketch degrades
  relative to the exact table as the memory budget shrinks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.kmeans import KMeans
from repro.analysis.silhouette import silhouette_score
from repro.experiments.common import ExperimentData
from repro.models.chh import ConditionalHeavyHitters, StreamingCHH
from repro.models.fisher import FisherVectorEncoder
from repro.models.lda import LatentDirichletAllocation
from repro.models.lsi import LatentSemanticIndexing
from repro.preprocessing.tfidf import TfidfTransform

__all__ = ["run_representation_families", "run_streaming_chh_accuracy"]


def run_representation_families(
    data: ExperimentData,
    *,
    n_clusters: int = 25,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Cluster quality and profile purity for five representation families.

    Returns ``{family: {"silhouette": ..., "profile_purity": ...}}`` for
    raw binary, TF-IDF, LDA topic mixtures, LSI projections, and Fisher
    vectors over skip-gram embeddings.
    """
    corpus = data.corpus
    binary = corpus.binary_matrix()
    true_profiles = data.universe.ground_truth.company_mixture.argmax(axis=1)
    n_profiles = data.universe.config.n_profiles

    representations: dict[str, np.ndarray] = {"raw": binary}
    representations["tfidf"] = TfidfTransform().fit_transform(binary)
    lda = LatentDirichletAllocation(
        n_topics=n_profiles, inference="variational", n_iter=80, seed=seed
    ).fit(corpus)
    representations["lda"] = lda.company_features(corpus)
    lsi = LatentSemanticIndexing(n_profiles).fit(corpus)
    representations["lsi"] = lsi.company_features(corpus)
    fisher = FisherVectorEncoder(
        n_components=n_profiles, embedding_dim=12, n_epochs=6, seed=seed
    ).fit(corpus)
    representations["fisher"] = fisher.company_features(corpus)

    results: dict[str, dict[str, float]] = {}
    for name, features in representations.items():
        labels = KMeans(n_clusters, seed=seed).fit_predict(features)
        silhouette = silhouette_score(features, labels, sample_size=1500, seed=seed)
        profile_labels = KMeans(n_profiles, seed=seed).fit_predict(features)
        purity = 0
        for k in np.unique(profile_labels):
            members = true_profiles[profile_labels == k]
            purity += int(np.bincount(members).max()) if len(members) else 0
        results[name] = {
            "silhouette": float(silhouette),
            "profile_purity": purity / len(true_profiles),
        }
    return results


def run_streaming_chh_accuracy(
    data: ExperimentData,
    *,
    capacities: Sequence[int] = (8, 16, 64, 512),
    depth: int = 1,
    top_n: int = 30,
) -> list[dict[str, float]]:
    """Mean absolute error of streamed conditionals vs the exact table.

    For each context capacity, the sketch replays the training sequences
    and its conditional estimates for the ``top_n`` strongest exact rules
    are compared with the exact conditionals.
    """
    corpus = data.corpus
    sequences = corpus.sequences()
    exact = ConditionalHeavyHitters(depth=depth, min_context_count=10).fit(corpus)
    reference = exact.heavy_hitters(min_conditional=0.05)[:top_n]
    if not reference:
        raise ValueError("no exact rules to compare against; corpus too small")

    rows = []
    for capacity in capacities:
        sketch = StreamingCHH(
            depth=depth, context_capacity=capacity,
            successor_capacity=min(capacity, corpus.n_products),
        )
        for seq in sequences:
            sketch.update_sequence(seq)
        errors = []
        for context, item, conditional in reference:
            padded = tuple([-1] * (depth - len(context)) + list(context))
            estimate = sketch.conditional(padded, vocab_size=corpus.n_products)[item]
            errors.append(abs(estimate - conditional))
        rows.append(
            {
                "capacity": float(capacity),
                "mean_abs_error": float(np.mean(errors)),
                "max_abs_error": float(np.max(errors)),
                "n_rules": float(len(reference)),
            }
        )
    return rows
