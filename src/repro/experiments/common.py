"""Shared setup for all experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.data.columnar import open_corpus
from repro.data.corpus import Corpus, CorpusSplit
from repro.data.synthetic import InstallBaseSimulator, SimulatedUniverse, SimulatorConfig
from repro.obs import trace
from repro.runtime import Ok, ParallelMap, RunJournal, TaskError

__all__ = [
    "ExperimentData",
    "make_experiment_data",
    "load_corpus_data",
    "resolve_grid_outcomes",
]


@dataclass
class ExperimentData:
    """A corpus with its standard 70/10/20 split.

    ``universe`` carries the simulator's raw feed and ground truth when the
    data was generated in-process; corpora loaded from a published columnar
    directory have no universe (``None``) — drivers that need simulator
    ground truth must generate, not load.
    """

    universe: SimulatedUniverse | None
    corpus: Corpus
    split: CorpusSplit


def make_experiment_data(
    n_companies: int = 2000,
    *,
    seed: int = 7,
    split_seed: int = 1,
    config: SimulatorConfig | None = None,
) -> ExperimentData:
    """Generate the standard experiment corpus.

    All benchmarks use this entry point so that the same ``(n_companies,
    seed)`` pair always produces the identical universe, split 70/10/20 as
    in Section 5.
    """
    if config is None:
        config = SimulatorConfig(n_companies=n_companies)
    elif config.n_companies != n_companies:
        raise ValueError(
            "n_companies argument disagrees with config.n_companies; set one"
        )
    with trace.span("exp.data.simulate"):
        simulator = InstallBaseSimulator(config)
        universe = simulator.generate(seed=seed)
        corpus = Corpus(universe.companies, simulator.catalog.categories)
        trace.add_counter("n_companies", corpus.n_companies)
        trace.add_counter("n_products", corpus.n_products)
    with trace.span("exp.data.split"):
        split = corpus.split((0.7, 0.1, 0.2), seed=split_seed)
    return ExperimentData(universe=universe, corpus=corpus, split=split)


def load_corpus_data(
    corpus_dir: str,
    *,
    split_seed: int = 1,
) -> ExperimentData:
    """Open a published columnar corpus with the standard 70/10/20 split.

    The memmap-backed counterpart of :func:`make_experiment_data`: the
    corpus streams from disk, the split is an index view (no companies are
    materialised), and ``universe`` is ``None`` because a published corpus
    carries no simulator ground truth.  A single-chunk columnar build of
    ``(n_companies, seed)`` loaded here yields bit-identical matrices,
    sequences and fingerprints to ``make_experiment_data(n_companies,
    seed=seed)`` at the same ``split_seed``.
    """
    with trace.span("exp.data.load"):
        corpus = open_corpus(corpus_dir)
        trace.add_counter("n_companies", corpus.n_companies)
        trace.add_counter("n_products", corpus.n_products)
    with trace.span("exp.data.split"):
        split = corpus.split((0.7, 0.1, 0.2), seed=split_seed)
    return ExperimentData(universe=None, corpus=corpus, split=split)


def resolve_grid_outcomes(
    task: Callable[[dict[str, Any]], Any],
    payloads: list[dict[str, Any]],
    *,
    n_jobs: int = 1,
    retries: int = 0,
    task_timeout: float | None = None,
    journal: RunJournal | None = None,
    failure_value: Callable[[dict[str, Any], TaskError], Any],
) -> list[Any]:
    """Run a sweep's independent cells with journaling and failure isolation.

    The shared fault-tolerant grid loop of the sweep drivers.  Every
    payload carries its identity under ``"cell"``; cells already completed
    in ``journal`` replay their stored value (counted as ``journal.skip``)
    without re-running, the rest fan out through
    :meth:`~repro.runtime.ParallelMap.map_outcomes`, and each finished
    cell is journaled as it lands.  A cell that exhausts its attempts
    degrades to ``failure_value(payload, error)`` — a recorded-failure row
    — instead of aborting the sweep.  Values are returned in payload
    order, exactly as a fully serial, fault-free run would produce them.
    """
    values: list[Any] = [None] * len(payloads)
    pending: list[tuple[int, dict[str, Any]]] = []
    for index, payload in enumerate(payloads):
        if journal is not None:
            entry = journal.completed(payload["cell"])
            if entry is not None:
                values[index] = entry.value
                continue
        pending.append((index, payload))

    def journal_outcome(position: int, outcome: Any) -> None:
        # Fires the moment a cell's outcome is final, so a sweep killed
        # halfway keeps every cell that already finished.
        if journal is None:
            return
        cell = pending[position][1]["cell"]
        if isinstance(outcome, Ok):
            journal.record_ok(cell, outcome.value, attempts=outcome.attempts)
        else:
            journal.record_failure(cell, outcome.describe(), attempts=outcome.attempts)

    executor = ParallelMap(n_jobs, retries=retries, task_timeout=task_timeout)
    outcomes = executor.map_outcomes(
        task, [payload for __, payload in pending], on_outcome=journal_outcome
    )
    for (index, payload), outcome in zip(pending, outcomes):
        if isinstance(outcome, Ok):
            values[index] = outcome.value
        else:
            values[index] = failure_value(payload, outcome)
    return values
