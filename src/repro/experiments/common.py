"""Shared setup for all experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.corpus import Corpus, CorpusSplit
from repro.data.synthetic import InstallBaseSimulator, SimulatedUniverse, SimulatorConfig
from repro.obs import trace

__all__ = ["ExperimentData", "make_experiment_data"]


@dataclass
class ExperimentData:
    """A generated universe with its corpus and standard 70/10/20 split."""

    universe: SimulatedUniverse
    corpus: Corpus
    split: CorpusSplit


def make_experiment_data(
    n_companies: int = 2000,
    *,
    seed: int = 7,
    split_seed: int = 1,
    config: SimulatorConfig | None = None,
) -> ExperimentData:
    """Generate the standard experiment corpus.

    All benchmarks use this entry point so that the same ``(n_companies,
    seed)`` pair always produces the identical universe, split 70/10/20 as
    in Section 5.
    """
    if config is None:
        config = SimulatorConfig(n_companies=n_companies)
    elif config.n_companies != n_companies:
        raise ValueError(
            "n_companies argument disagrees with config.n_companies; set one"
        )
    with trace.span("exp.data.simulate"):
        simulator = InstallBaseSimulator(config)
        universe = simulator.generate(seed=seed)
        corpus = Corpus(universe.companies, simulator.catalog.categories)
        trace.add_counter("n_companies", corpus.n_companies)
        trace.add_counter("n_products", corpus.n_products)
    with trace.span("exp.data.split"):
        split = corpus.split((0.7, 0.1, 0.2), seed=split_seed)
    return ExperimentData(universe=universe, corpus=corpus, split=split)
