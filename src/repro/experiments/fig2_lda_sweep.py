"""Figure 2: LDA test perplexity vs number of topics, binary vs TF-IDF.

The paper sweeps the latent topic count over 2..16 for both raw binary and
TF-IDF inputs, finding (i) binary input beats TF-IDF pre-processing
("LDA indeed is able to assign higher weights to the most representative
products"), and (ii) small topic counts (2-4) minimise perplexity, rising
slowly afterwards.
"""

from __future__ import annotations

import functools
import math
from typing import Any, Sequence

from repro.experiments.common import ExperimentData, resolve_grid_outcomes
from repro.models.lda import LatentDirichletAllocation
from repro.obs import trace
from repro.runtime import (
    FitCache,
    RunJournal,
    cell_key,
    faults,
    fingerprint_corpus,
    fit_model,
)

__all__ = ["run_lda_sweep"]


def _sweep_task(payload: dict[str, Any]) -> dict[str, float | str]:
    """Worker task: fit one (input, topics) cell, return its row."""
    faults.inject(payload["cell"])
    with trace.span("exp.fig2.fit"):
        model = fit_model(
            payload["factory"],
            payload["train"],
            payload["cache"],
            payload["fingerprint"],
        )
    with trace.span("exp.fig2.evaluate"):
        return {
            "input": payload["input"],
            "n_topics": float(payload["n_topics"]),
            "test_perplexity": model.perplexity(payload["test"]),
            "n_parameters": float(model.n_parameters),
        }


def _failed_row(payload: dict[str, Any], error: object) -> dict[str, float | str]:
    """The recorded-failure row for one sweep cell: coordinates plus NaN."""
    return {
        "input": payload["input"],
        "n_topics": float(payload["n_topics"]),
        "test_perplexity": float("nan"),
        "n_parameters": float("nan"),
    }


def run_lda_sweep(
    data: ExperimentData,
    *,
    topic_grid: Sequence[int] = (2, 3, 4, 6, 8, 10, 12, 14, 16),
    inputs: Sequence[str] = ("binary", "tfidf"),
    n_iter: int = 100,
    seed: int = 0,
    n_jobs: int = 1,
    fit_cache: FitCache | None = None,
    retries: int = 0,
    task_timeout: float | None = None,
    journal: RunJournal | None = None,
) -> list[dict[str, float | str]]:
    """Fit LDA across the (topics, input) grid; return test perplexities.

    Cells are independent and fan out over a process pool when
    ``n_jobs > 1``; rows come back in (input, topics) grid order either
    way, so parallel sweeps match serial ones exactly.  A cell that
    exhausts its ``retries`` degrades to a NaN row; ``journal``
    checkpoints finished cells and skips them on resume.
    """
    split = data.split
    fingerprint = fingerprint_corpus(split.train) if fit_cache is not None else None
    payloads = [
        {
            "cell": cell_key("fig2", input_type, n_topics, n_iter, seed),
            "factory": functools.partial(
                LatentDirichletAllocation,
                n_topics=n_topics,
                inference="variational",
                input_type=input_type,
                n_iter=n_iter,
                seed=seed,
            ),
            "input": input_type,
            "n_topics": n_topics,
            "train": split.train,
            "test": split.test,
            "cache": fit_cache,
            "fingerprint": fingerprint,
        }
        for input_type in inputs
        for n_topics in topic_grid
    ]
    return resolve_grid_outcomes(
        _sweep_task,
        payloads,
        n_jobs=n_jobs,
        retries=retries,
        task_timeout=task_timeout,
        journal=journal,
        failure_value=_failed_row,
    )


def best_binary_band(rows: list[dict[str, float | str]]) -> tuple[float, float]:
    """(best perplexity, topic count) among the binary-input rows.

    Recorded-failure rows (NaN perplexity) are excluded from the band.
    """
    binary = [
        r
        for r in rows
        if r["input"] == "binary" and not math.isnan(float(r["test_perplexity"]))
    ]
    if not binary:
        raise ValueError("no binary rows in the sweep")
    best = min(binary, key=lambda r: r["test_perplexity"])
    return float(best["test_perplexity"]), float(best["n_topics"])
