"""Figure 2: LDA test perplexity vs number of topics, binary vs TF-IDF.

The paper sweeps the latent topic count over 2..16 for both raw binary and
TF-IDF inputs, finding (i) binary input beats TF-IDF pre-processing
("LDA indeed is able to assign higher weights to the most representative
products"), and (ii) small topic counts (2-4) minimise perplexity, rising
slowly afterwards.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentData
from repro.models.lda import LatentDirichletAllocation
from repro.obs import trace

__all__ = ["run_lda_sweep"]


def run_lda_sweep(
    data: ExperimentData,
    *,
    topic_grid: Sequence[int] = (2, 3, 4, 6, 8, 10, 12, 14, 16),
    inputs: Sequence[str] = ("binary", "tfidf"),
    n_iter: int = 100,
    seed: int = 0,
) -> list[dict[str, float | str]]:
    """Fit LDA across the (topics, input) grid; return test perplexities."""
    split = data.split
    rows: list[dict[str, float | str]] = []
    for input_type in inputs:
        for n_topics in topic_grid:
            with trace.span("exp.fig2.fit"):
                model = LatentDirichletAllocation(
                    n_topics=n_topics,
                    inference="variational",
                    input_type=input_type,
                    n_iter=n_iter,
                    seed=seed,
                ).fit(split.train)
            with trace.span("exp.fig2.evaluate"):
                rows.append(
                    {
                        "input": input_type,
                        "n_topics": float(n_topics),
                        "test_perplexity": model.perplexity(split.test),
                        "n_parameters": float(model.n_parameters),
                    }
                )
    return rows


def best_binary_band(rows: list[dict[str, float | str]]) -> tuple[float, float]:
    """(best perplexity, topic count) among the binary-input rows."""
    binary = [r for r in rows if r["input"] == "binary"]
    if not binary:
        raise ValueError("no binary rows in the sweep")
    best = min(binary, key=lambda r: r["test_perplexity"])
    return float(best["test_perplexity"]), float(best["n_topics"])
