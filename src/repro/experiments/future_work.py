"""Future-work study: modelling at the product-type (leaf) level.

The paper closes with: "we will gather additional internal data about the
IT structure of companies ... and assess other deep neural network
architectures starting from lower levels of product descriptions."  This
driver runs the experiment the paper defers: generate the universe at the
catalog's leaf granularity (product types), model it both at the leaf level
and rolled up to categories, and compare

* held-out perplexity per token (not directly comparable across vocabulary
  sizes, reported for reference),
* clustering purity of the LDA company features against the true latent
  profiles — the comparable measure.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_int
from repro.analysis.kmeans import KMeans
from repro.data.catalog import ProductCatalog, build_default_catalog
from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig
from repro.models.lda import LatentDirichletAllocation

__all__ = ["rollup_types_to_categories", "run_type_granularity_study"]


def rollup_types_to_categories(
    corpus: Corpus, catalog: ProductCatalog
) -> Corpus:
    """Collapse a product-type-level corpus to category granularity.

    Each company's types map to their categories; the category's first-seen
    date is the earliest of its types' dates.
    """
    mapping = {pt.name: pt.category for pt in catalog.product_types()}
    unknown = set(corpus.vocabulary) - mapping.keys()
    if unknown:
        raise ValueError(
            f"corpus contains tokens that are not product types: {sorted(unknown)[:3]}"
        )
    companies = []
    for company in corpus.companies:
        rolled: dict[str, object] = {}
        for type_name, date in company.first_seen.items():
            category = mapping[type_name]
            current = rolled.get(category)
            if current is None or date < current:  # type: ignore[operator]
                rolled[category] = date
        companies.append(
            Company(
                duns=company.duns,
                name=company.name,
                country=company.country,
                sic2=company.sic2,
                first_seen=rolled,  # type: ignore[arg-type]
                n_sites=company.n_sites,
            )
        )
    return Corpus(companies, catalog.categories)


def run_type_granularity_study(
    *,
    n_companies: int = 800,
    seed: int = 7,
    n_topics: int = 4,
    n_iter: int = 80,
) -> dict[str, dict[str, float]]:
    """Compare LDA at product-type vs category granularity.

    Returns ``{"product_type": {...}, "category": {...}}`` with vocabulary
    size, held-out perplexity and profile purity per level.
    """
    check_positive_int(n_companies, "n_companies")
    catalog = build_default_catalog()
    config = SimulatorConfig(n_companies=n_companies, granularity="product_type")
    simulator = InstallBaseSimulator(config, catalog=catalog)
    universe = simulator.generate(seed=seed)
    type_corpus = Corpus(universe.companies, catalog.product_type_names())
    category_corpus = rollup_types_to_categories(type_corpus, catalog)
    true_profiles = universe.ground_truth.company_mixture.argmax(axis=1)
    n_profiles = config.n_profiles

    results: dict[str, dict[str, float]] = {}
    for level, corpus in (("product_type", type_corpus), ("category", category_corpus)):
        split = corpus.split((0.7, 0.1, 0.2), seed=1)
        model = LatentDirichletAllocation(
            n_topics=n_topics, inference="variational", n_iter=n_iter, seed=0
        ).fit(split.train)
        theta = model.company_features(corpus)
        labels = KMeans(n_profiles, seed=0).fit_predict(theta)
        purity = 0
        for k in np.unique(labels):
            members = true_profiles[labels == k]
            purity += int(np.bincount(members).max()) if len(members) else 0
        results[level] = {
            "vocab_size": float(corpus.n_products),
            "test_perplexity": model.perplexity(split.test),
            "profile_purity": purity / len(true_profiles),
        }
    return results
