"""Figure 1: LSTM test perplexity across the 12-architecture grid.

The paper sweeps layers in {1, 2, 3} x nodes in {10, 100, 200, 300} for 14
epochs and finds 1 layer / 200 nodes best (test perplexity 11.6), with
deeper stacks strictly worse.  The driver reproduces the sweep; each grid
point reports its test perplexity and parameter count.
"""

from __future__ import annotations

import functools
import math
from typing import Any, Sequence

from repro.experiments.common import ExperimentData, resolve_grid_outcomes
from repro.models.lstm import LSTMModel
from repro.obs import trace
from repro.runtime import (
    FitCache,
    RunJournal,
    cell_key,
    faults,
    fingerprint_corpus,
    fit_model,
)

__all__ = ["run_lstm_grid"]


def _grid_task(payload: dict[str, Any]) -> dict[str, float]:
    """Worker task: fit one (layers, nodes) grid point, return its row."""
    faults.inject(payload["cell"])
    with trace.span("exp.fig1.fit"):
        model = fit_model(
            payload["factory"],
            payload["train"],
            payload["cache"],
            payload["fingerprint"],
        )
    with trace.span("exp.fig1.evaluate"):
        return {
            "n_layers": float(payload["n_layers"]),
            "nodes": float(payload["nodes"]),
            "test_perplexity": model.perplexity(payload["test"]),
            "n_parameters": float(model.n_parameters),
        }


def _failed_row(payload: dict[str, Any], error: object) -> dict[str, float]:
    """The recorded-failure row for one grid point: coordinates plus NaN."""
    return {
        "n_layers": float(payload["n_layers"]),
        "nodes": float(payload["nodes"]),
        "test_perplexity": float("nan"),
        "n_parameters": float("nan"),
    }


def run_lstm_grid(
    data: ExperimentData,
    *,
    layer_grid: Sequence[int] = (1, 2, 3),
    node_grid: Sequence[int] = (10, 100, 200, 300),
    n_epochs: int = 14,
    seed: int = 0,
    dtype: str = "float32",
    n_jobs: int = 1,
    fit_cache: FitCache | None = None,
    retries: int = 0,
    task_timeout: float | None = None,
    journal: RunJournal | None = None,
) -> list[dict[str, float]]:
    """Train every (layers, nodes) point; return per-point test results.

    Rows are sorted by (layers, nodes) and include the trainable parameter
    count the paper's "lessons learned" discussion compares against LDA's.
    Grid cells are independent; ``n_jobs > 1`` fans them out over a process
    pool with results gathered back in grid order, so the rows are
    identical to a serial run.  ``dtype`` selects the training precision of
    every grid point (``float32`` default; ``float64`` replays the original
    double-precision arithmetic bit-for-bit).

    A grid point that exhausts its ``retries`` degrades to a NaN row;
    ``journal`` checkpoints finished points and skips them on resume.
    """
    split = data.split
    fingerprint = fingerprint_corpus(split.train) if fit_cache is not None else None
    payloads = [
        {
            "cell": cell_key("fig1", n_layers, nodes, n_epochs, seed, dtype),
            "factory": functools.partial(
                LSTMModel,
                hidden=nodes,
                n_layers=n_layers,
                n_epochs=n_epochs,
                validation=split.validation,
                seed=seed,
                dtype=dtype,
            ),
            "n_layers": n_layers,
            "nodes": nodes,
            "train": split.train,
            "test": split.test,
            "cache": fit_cache,
            "fingerprint": fingerprint,
        }
        for n_layers in layer_grid
        for nodes in node_grid
    ]
    return resolve_grid_outcomes(
        _grid_task,
        payloads,
        n_jobs=n_jobs,
        retries=retries,
        task_timeout=task_timeout,
        journal=journal,
        failure_value=_failed_row,
    )


def best_point(rows: list[dict[str, float]]) -> dict[str, float]:
    """The grid point with the lowest test perplexity (failed rows excluded)."""
    finite = [r for r in rows if not math.isnan(r["test_perplexity"])]
    if not finite:
        raise ValueError("no grid rows supplied" if not rows else "every grid row failed")
    return min(finite, key=lambda r: r["test_perplexity"])
