"""Figure 1: LSTM test perplexity across the 12-architecture grid.

The paper sweeps layers in {1, 2, 3} x nodes in {10, 100, 200, 300} for 14
epochs and finds 1 layer / 200 nodes best (test perplexity 11.6), with
deeper stacks strictly worse.  The driver reproduces the sweep; each grid
point reports its test perplexity and parameter count.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentData
from repro.models.lstm import LSTMModel
from repro.obs import trace

__all__ = ["run_lstm_grid"]


def run_lstm_grid(
    data: ExperimentData,
    *,
    layer_grid: Sequence[int] = (1, 2, 3),
    node_grid: Sequence[int] = (10, 100, 200, 300),
    n_epochs: int = 14,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Train every (layers, nodes) point; return per-point test results.

    Rows are sorted by (layers, nodes) and include the trainable parameter
    count the paper's "lessons learned" discussion compares against LDA's.
    """
    split = data.split
    rows: list[dict[str, float]] = []
    for n_layers in layer_grid:
        for nodes in node_grid:
            with trace.span("exp.fig1.fit"):
                model = LSTMModel(
                    hidden=nodes,
                    n_layers=n_layers,
                    n_epochs=n_epochs,
                    validation=split.validation,
                    seed=seed,
                ).fit(split.train)
            with trace.span("exp.fig1.evaluate"):
                rows.append(
                    {
                        "n_layers": float(n_layers),
                        "nodes": float(nodes),
                        "test_perplexity": model.perplexity(split.test),
                        "n_parameters": float(model.n_parameters),
                    }
                )
    return rows


def best_point(rows: list[dict[str, float]]) -> dict[str, float]:
    """The grid point with the lowest test perplexity."""
    if not rows:
        raise ValueError("no grid rows supplied")
    return min(rows, key=lambda r: r["test_perplexity"])
