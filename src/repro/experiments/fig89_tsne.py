"""Figures 8 and 9: t-SNE projections of LDA product embeddings.

The paper projects the LDA3 and LDA4 product embeddings (the per-product
topic loadings) to 2-D with t-SNE and observes semantically coherent
neighbourhoods: hardware categories ('server_HW', 'storage_HW', 'HW_other')
cluster together, and so do software/commerce categories ('commerce',
'media', 'collaboration', 'product_lifecycle', 'electronics_PCs_SW',
'retail').  The driver returns the coordinates plus a quantitative
coherence check: the mean within-group distance of those named groups
versus the global mean pairwise distance.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tsne import TSNE
from repro.experiments.common import ExperimentData
from repro.models.lda import LatentDirichletAllocation
from repro.obs import trace

__all__ = ["run_tsne_projection", "HARDWARE_GROUP", "SOFTWARE_GROUP"]

#: Hardware categories expected to co-locate.  The paper names
#: ('server_HW', 'storage_HW', 'HW_other'); in the synthetic universe the
#: semantic structure lives in the category-parent groups, and near-universal
#: categories (server_HW) deliberately spread across profiles, so the
#: quantitative check uses the non-universal "Hardware (Basic)" members.
HARDWARE_GROUP: tuple[str, ...] = ("storage_HW", "HW_other", "mainframes", "midrange")

#: Software/commerce categories expected to co-locate (the paper names
#: 'commerce', 'media', 'collaboration', 'product_lifecycle',
#: 'electronics_PCs_SW', 'retail'; same caveat for the universal
#: electronics_PCs_SW).  These are "Enterprise Applications" members.
SOFTWARE_GROUP: tuple[str, ...] = (
    "commerce",
    "media",
    "collaboration",
    "retail",
    "financial_apps",
    "HR_human_management",
)


def run_tsne_projection(
    data: ExperimentData,
    *,
    n_topics: int = 3,
    perplexity: float = 8.0,
    n_iter: int = 400,
    seed: int = 0,
) -> dict[str, object]:
    """Project the LDA product embeddings; measure group coherence.

    Returns a dict with:

    * ``"coordinates"`` — ``{category: (x, y)}``;
    * ``"hardware_ratio"`` / ``"software_ratio"`` — within-group over global
      mean pairwise distance for the paper's named category groups (< 1
      means co-located);
    * ``"profile_core_ratio"`` — the same measure averaged over the true
      latent profiles' core products.  This is the direct quantitative form
      of the paper's observation that "the main products that construct a
      topic produce clusters of products".
    """
    corpus = data.corpus
    with trace.span("exp.fig89.fit"):
        lda = LatentDirichletAllocation(
            n_topics=n_topics, inference="variational", n_iter=100, seed=seed
        ).fit(corpus)
        embeddings = lda.product_embeddings()
    with trace.span("exp.fig89.project"):
        projection = TSNE(
            2, perplexity=perplexity, n_iter=n_iter, seed=seed
        ).fit_transform(embeddings)
    coordinates = {
        category: (float(projection[i, 0]), float(projection[i, 1]))
        for i, category in enumerate(corpus.vocabulary)
    }

    profile_product = data.universe.ground_truth.profile_product
    core_ratios = []
    for row in profile_product:
        core = np.argsort(-row)[:5]
        group = tuple(corpus.vocabulary[i] for i in core)
        core_ratios.append(
            _group_distance_ratio(projection, corpus.vocabulary, group)
        )
    return {
        "coordinates": coordinates,
        "hardware_ratio": _group_distance_ratio(projection, corpus.vocabulary, HARDWARE_GROUP),
        "software_ratio": _group_distance_ratio(projection, corpus.vocabulary, SOFTWARE_GROUP),
        "profile_core_ratio": float(np.mean(core_ratios)),
        "n_topics": n_topics,
    }


def _group_distance_ratio(
    projection: np.ndarray, vocabulary: tuple[str, ...], group: tuple[str, ...]
) -> float:
    """Mean within-group distance over global mean pairwise distance."""
    index = {name: i for i, name in enumerate(vocabulary)}
    members = [index[g] for g in group if g in index]
    if len(members) < 2:
        return float("nan")
    diffs = projection[:, None, :] - projection[None, :, :]
    distances = np.sqrt((diffs**2).sum(axis=2))
    mask = ~np.eye(len(projection), dtype=bool)
    global_mean = float(distances[mask].mean())
    sub = distances[np.ix_(members, members)]
    sub_mask = ~np.eye(len(members), dtype=bool)
    group_mean = float(sub[sub_mask].mean())
    if global_mean == 0.0:
        return float("nan")
    return group_mean / global_mean
