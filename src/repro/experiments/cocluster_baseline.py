"""Section 3.1 narrative: co-clustering finds only the popular products.

The paper tried PaCo and spectral co-clustering on a raw healthcare-industry
sample and "could not generate meaningful co-clusters: the only co-cluster
generated contained overall popular products".  This driver reproduces that
negative result: it spectral-co-clusters the raw binary matrix of one
industry slice and checks whether the densest co-cluster's product columns
are dominated by the globally most popular categories rather than by any
latent profile.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cocluster import SpectralCoclustering
from repro.experiments.common import ExperimentData
from repro.obs import trace

__all__ = ["run_cocluster_baseline"]


def run_cocluster_baseline(
    data: ExperimentData,
    *,
    n_clusters: int = 3,
    seed: int = 0,
) -> dict[str, object]:
    """Co-cluster the raw matrix; report popularity bias of the result.

    Returns the co-cluster summaries plus two meaningfulness measures:

    * ``popular_overlap`` — fraction of the densest non-degenerate
      co-cluster's products that belong to the global top-quartile most
      popular categories (values near 1 = the popularity block);
    * ``profile_purity`` — purity of the row clustering against the
      simulator's true dominant profiles.  The paper's negative finding
      corresponds to purity well below 1: raw-matrix co-clustering fails
      to recover the latent profiles that LDA features expose.
    """
    matrix = data.corpus.binary_matrix()
    # Drop empty rows/columns as spectral co-clustering requires.
    row_keep = matrix.sum(axis=1) > 0
    col_keep = matrix.sum(axis=0) > 0
    trimmed = matrix[np.ix_(row_keep, col_keep)]
    kept_products = [
        data.corpus.vocabulary[i] for i in np.flatnonzero(col_keep)
    ]
    with trace.span("exp.cocluster.fit"):
        model = SpectralCoclustering(n_clusters=n_clusters, seed=seed).fit(trimmed)
    summaries = model.cocluster_summary(trimmed)

    # The densest co-cluster with at least two products and two companies;
    # singleton blocks are degenerate artefacts.
    substantial = [s for s in summaries if s["n_rows"] >= 2 and s["n_cols"] >= 2]
    assert model.column_labels_ is not None and model.row_labels_ is not None
    if substantial:
        densest = max(substantial, key=lambda s: s["density"])
        dense_products = [
            kept_products[i]
            for i in np.flatnonzero(model.column_labels_ == int(densest["cluster"]))
        ]
    else:
        dense_products = []
    popularity = trimmed.mean(axis=0)
    top_quartile = set(
        kept_products[i]
        for i in np.argsort(-popularity)[: max(len(kept_products) // 4, 1)]
    )
    if dense_products:
        overlap = len(set(dense_products) & top_quartile) / len(dense_products)
    else:
        overlap = float("nan")

    # Purity of the row clusters against the true dominant profiles.  The
    # simulator's mixture rows align with corpus companies when no foreign
    # sites were generated (the default).
    mixtures = data.universe.ground_truth.company_mixture
    purity = float("nan")
    lda_purity = float("nan")
    if mixtures.shape[0] == matrix.shape[0]:
        true_profiles = mixtures.argmax(axis=1)[row_keep]

        def _purity(labels: np.ndarray) -> float:
            total = 0
            for k in np.unique(labels):
                members = true_profiles[labels == k]
                if len(members):
                    total += int(np.bincount(members).max())
            return total / len(true_profiles)

        with trace.span("exp.cocluster.evaluate"):
            purity = _purity(model.row_labels_)
            # The paper's resolution: clustering on LDA features recovers the
            # structure better than raw-matrix co-clustering.
            from repro.analysis.kmeans import KMeans
            from repro.models.lda import LatentDirichletAllocation

            n_profiles = data.universe.config.n_profiles
            lda = LatentDirichletAllocation(
                n_topics=n_profiles, inference="variational", n_iter=80, seed=seed
            ).fit(data.corpus)
            theta = lda.company_features(data.corpus)[row_keep]
            lda_purity = _purity(KMeans(n_profiles, seed=seed).fit_predict(theta))
    return {
        "summaries": summaries,
        "densest_cluster_products": dense_products,
        "popular_overlap": overlap,
        "profile_purity": purity,
        "lda_feature_purity": lda_purity,
    }
