"""Sliding-window evaluation of thresholded recommenders (Section 5.1).

For every window: retrain each model on everything strictly before the
window start, score every company's unowned products given its purchase
history, and compare the phi-thresholded recommendations with the products
that actually first appeared inside the window.

Aggregation follows the paper: each sliding window yields one accuracy
observation (micro-averaged over companies), so a sweep with l windows
gives l observations per threshold, from which the mean and a 95%
confidence interval are reported (Figures 3 and 4).  Precision is undefined
when nothing is retrieved; such windows are excluded from the precision
average, mirroring the paper's remark that "precision values are not
defined for this points".
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro._validation import check_probability
from repro.analysis.stats import mean_confidence_interval
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel
from repro.obs import metrics, trace
from repro.recommend.windows import SlidingWindowSpec, Window
from repro.runtime import (
    FitCache,
    ParallelMap,
    fingerprint_corpus,
    fit_model,
    resolve_n_jobs,
)

__all__ = ["WindowObservation", "ThresholdCurve", "RecommendationEvaluator"]


@dataclass(frozen=True)
class WindowObservation:
    """Micro-aggregated counts for one (window, threshold) cell."""

    window_start: dt.date
    threshold: float
    n_retrieved: int
    n_correct: int
    n_relevant: int

    @property
    def precision(self) -> float:
        """Correct / retrieved; NaN when nothing was retrieved."""
        if self.n_retrieved == 0:
            return float("nan")
        return self.n_correct / self.n_retrieved

    @property
    def recall(self) -> float:
        """Correct / relevant; zero when nothing was relevant."""
        if self.n_relevant == 0:
            return 0.0
        return self.n_correct / self.n_relevant

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (NaN propagates)."""
        p, r = self.precision, self.recall
        if np.isnan(p) or p + r == 0.0:
            return float("nan") if np.isnan(p) else 0.0
        return 2.0 * p * r / (p + r)


@dataclass
class ThresholdCurve:
    """Accuracy curves of one recommender across thresholds.

    Each metric maps a threshold to ``(mean, ci_low, ci_high)`` over the
    window observations.
    """

    name: str
    thresholds: list[float]
    observations: dict[float, list[WindowObservation]] = field(repr=False, default_factory=dict)

    def _aggregate(
        self, threshold: float, extract: Callable[[WindowObservation], float]
    ) -> tuple[float, float, float]:
        values = np.array(
            [extract(o) for o in self.observations[threshold]], dtype=np.float64
        )
        values = values[~np.isnan(values)]
        if values.size == 0:
            return float("nan"), float("nan"), float("nan")
        return mean_confidence_interval(values)

    def recall(self, threshold: float) -> tuple[float, float, float]:
        """Mean recall with 95% CI at a threshold."""
        return self._aggregate(threshold, lambda o: o.recall)

    def precision(self, threshold: float) -> tuple[float, float, float]:
        """Mean precision with 95% CI (over windows where it is defined)."""
        return self._aggregate(threshold, lambda o: o.precision)

    def f1(self, threshold: float) -> tuple[float, float, float]:
        """Mean F1 with 95% CI."""
        return self._aggregate(threshold, lambda o: o.f1)

    def retrieved(self, threshold: float) -> tuple[float, float, float]:
        """Mean number of retrieved products per window, with CI."""
        return self._aggregate(threshold, lambda o: float(o.n_retrieved))

    def correct(self, threshold: float) -> tuple[float, float, float]:
        """Mean number of correctly retrieved products per window, with CI."""
        return self._aggregate(threshold, lambda o: float(o.n_correct))

    def relevant(self, threshold: float) -> tuple[float, float, float]:
        """Mean number of relevant (ground-truth) products per window."""
        return self._aggregate(threshold, lambda o: float(o.n_relevant))

    def as_rows(self) -> list[dict[str, float]]:
        """Flat table: one row per threshold with all aggregate metrics."""
        rows = []
        for phi in self.thresholds:
            recall, recall_lo, recall_hi = self.recall(phi)
            precision, prec_lo, prec_hi = self.precision(phi)
            f1, f1_lo, f1_hi = self.f1(phi)
            rows.append(
                {
                    "threshold": phi,
                    "recall": recall,
                    "recall_lo": recall_lo,
                    "recall_hi": recall_hi,
                    "precision": precision,
                    "precision_lo": prec_lo,
                    "precision_hi": prec_hi,
                    "f1": f1,
                    "f1_lo": f1_lo,
                    "f1_hi": f1_hi,
                    "retrieved": self.retrieved(phi)[0],
                    "correct": self.correct(phi)[0],
                    "relevant": self.relevant(phi)[0],
                }
            )
        return rows


class RecommendationEvaluator:
    """Runs the paper's sliding-window protocol for a set of models.

    Parameters
    ----------
    corpus:
        The full corpus with dated products.
    spec:
        Window layout; defaults to the paper's 13 windows of 12 months.
    thresholds:
        The phi grid to sweep.
    retrain_per_window:
        Retrain each model on the data before every window (the paper's
        protocol).  With False, models are trained once on the data before
        the first window — cheaper, and a good approximation when windows
        are close together.
    n_jobs:
        Worker processes for the (window x model) fit+score fan-out.  The
        default ``1`` runs everything in-process and is bit-identical to
        the historical serial implementation; ``-1`` uses every CPU.
        Results are deterministic for any fixed seed regardless of the
        job count.
    fit_cache:
        Optional :class:`repro.runtime.FitCache`; fitted models are then
        keyed by (model class, hyperparameters, training-prefix
        fingerprint), so re-running a sweep — or two models sharing a
        training prefix across overlapping windows — never refits the
        same model twice.
    """

    def __init__(
        self,
        corpus: Corpus,
        *,
        spec: SlidingWindowSpec | None = None,
        thresholds: Sequence[float] = tuple(np.round(np.arange(0.0, 0.55, 0.05), 2)),
        retrain_per_window: bool = True,
        n_jobs: int = 1,
        fit_cache: FitCache | None = None,
    ) -> None:
        self.corpus = corpus
        self.spec = spec if spec is not None else SlidingWindowSpec()
        self.thresholds = [check_probability(t, "threshold") for t in thresholds]
        if not self.thresholds:
            raise ValueError("at least one threshold is required")
        self.retrain_per_window = bool(retrain_per_window)
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.fit_cache = fit_cache

    # ------------------------------------------------------------------
    def _window_tasks(
        self, window: Window
    ) -> tuple[list[list[int]], list[set[int]], list[set[int]]]:
        """Histories, owned sets and ground truths for one window.

        Companies enter the evaluation when they own at least one product
        before the window starts (otherwise there is no history to condition
        on).
        """
        histories: list[list[int]] = []
        owned_sets: list[set[int]] = []
        truths: list[set[int]] = []
        for company in self.corpus.companies:
            before = company.categories_before(window.start)
            if not before:
                continue
            history = [self.corpus.token(c) for c, __ in before]
            truth = {
                self.corpus.token(c)
                for c in company.categories_within(window.start, window.end)
            }
            histories.append(history)
            owned_sets.append(set(history))
            truths.append(truth)
        return histories, owned_sets, truths

    def _fit_model(
        self,
        factory: Callable[[], GenerativeModel],
        train_corpus: Corpus,
        fingerprint: str | None = None,
    ) -> GenerativeModel:
        """Fit through the cache when one is configured, directly otherwise."""
        return fit_model(factory, train_corpus, self.fit_cache, fingerprint)

    def evaluate(
        self,
        model_factories: dict[str, Callable[[], GenerativeModel]],
        *,
        verbose: bool = False,
    ) -> dict[str, ThresholdCurve]:
        """Run the full protocol; returns one curve per model name.

        With ``n_jobs > 1`` the (window x model) fit+score cells run on a
        process pool; observations are gathered back in (window, model)
        order, so the resulting curves are identical to a serial run of
        the same seed.
        """
        if not model_factories:
            raise ValueError("at least one model factory is required")
        windows = self.spec.windows()
        curves = {
            name: ThresholdCurve(name=name, thresholds=list(self.thresholds),
                                 observations={t: [] for t in self.thresholds})
            for name in model_factories
        }
        if self.n_jobs > 1:
            self._evaluate_parallel(model_factories, windows, curves, verbose=verbose)
        else:
            self._evaluate_serial(model_factories, windows, curves, verbose=verbose)
        if all(
            not observations
            for curve in curves.values()
            for observations in curve.observations.values()
        ):
            raise ValueError(
                "no sliding window had any company with history before its "
                "start; check the window spec against the corpus timeline"
            )
        return curves

    def _evaluate_serial(
        self,
        model_factories: dict[str, Callable[[], GenerativeModel]],
        windows: list[Window],
        curves: dict[str, ThresholdCurve],
        *,
        verbose: bool,
    ) -> None:
        """The historical in-process loop (the ``n_jobs=1`` reference path)."""
        trained: dict[str, GenerativeModel] = {}
        for w_index, window in enumerate(windows):
            with trace.span("recommend.window"):
                histories, owned_sets, truths = self._window_tasks(window)
            if not histories:
                continue
            metrics.inc("recommend.windows")
            metrics.inc("recommend.companies", len(histories))
            train_corpus = self.corpus.truncated_before(window.start)
            fingerprint = (
                fingerprint_corpus(train_corpus)
                if self.fit_cache is not None
                else None
            )
            for name, factory in model_factories.items():
                if self.retrain_per_window or name not in trained:
                    model = self._fit_model(factory, train_corpus, fingerprint)
                    trained[name] = model
                else:
                    model = trained[name]
                scores = model.batch_next_product_proba(histories)
                metrics.inc("recommend.candidates", scores.size)
                self._score_window(
                    curves[name], window, scores, owned_sets, truths
                )
                if verbose:  # pragma: no cover - console convenience
                    print(f"window {w_index + 1}/{len(windows)} [{window.start}] {name} done")

    def _evaluate_parallel(
        self,
        model_factories: dict[str, Callable[[], GenerativeModel]],
        windows: list[Window],
        curves: dict[str, ThresholdCurve],
        *,
        verbose: bool,
    ) -> None:
        """Fan the fit+score cells out over a process pool.

        With ``retrain_per_window`` every (window, model) cell is one task;
        otherwise the one-off fits are parallelized across models and the
        cheap scoring pass stays in-process.  Results merge in submission
        order, so curves match the serial path exactly.
        """
        prepared: list[tuple[Window, list[list[int]], list[set[int]], list[set[int]]]] = []
        for window in windows:
            with trace.span("recommend.window"):
                histories, owned_sets, truths = self._window_tasks(window)
            if not histories:
                continue
            metrics.inc("recommend.windows")
            metrics.inc("recommend.companies", len(histories))
            prepared.append((window, histories, owned_sets, truths))
        if not prepared:
            return
        executor = ParallelMap(self.n_jobs)
        if self.retrain_per_window:
            payloads = []
            for window, histories, owned_sets, truths in prepared:
                train_corpus = self.corpus.truncated_before(window.start)
                fingerprint = (
                    fingerprint_corpus(train_corpus)
                    if self.fit_cache is not None
                    else None
                )
                for name, factory in model_factories.items():
                    payloads.append(
                        {
                            "name": name,
                            "factory": factory,
                            "train": train_corpus,
                            "fingerprint": fingerprint,
                            "cache": self.fit_cache,
                            "histories": histories,
                            "owned_sets": owned_sets,
                            "truths": truths,
                            "thresholds": self.thresholds,
                            "window_start": window.start,
                        }
                    )
            results = executor.map(_fit_score_task, payloads)
            for payload, observations in zip(payloads, results):
                curve = curves[payload["name"]]
                for observation in observations:
                    curve.observations[observation.threshold].append(observation)
                if verbose:  # pragma: no cover - console convenience
                    print(f"[{payload['window_start']}] {payload['name']} done")
        else:
            first_window = prepared[0][0]
            train_corpus = self.corpus.truncated_before(first_window.start)
            fingerprint = (
                fingerprint_corpus(train_corpus)
                if self.fit_cache is not None
                else None
            )
            fit_payloads = [
                {
                    "factory": factory,
                    "train": train_corpus,
                    "fingerprint": fingerprint,
                    "cache": self.fit_cache,
                }
                for factory in model_factories.values()
            ]
            fitted = executor.map(_fit_task, fit_payloads)
            models = dict(zip(model_factories, fitted))
            for window, histories, owned_sets, truths in prepared:
                for name in model_factories:
                    scores = models[name].batch_next_product_proba(histories)
                    metrics.inc("recommend.candidates", scores.size)
                    self._score_window(
                        curves[name], window, scores, owned_sets, truths
                    )

    def _score_window(
        self,
        curve: ThresholdCurve,
        window: Window,
        scores: np.ndarray,
        owned_sets: list[set[int]],
        truths: list[set[int]],
    ) -> None:
        """Threshold the score matrix and append one observation per phi."""
        observations = _count_observations(
            scores, owned_sets, truths, self.thresholds, window.start
        )
        _record_observation_metrics(observations)
        for observation in observations:
            curve.observations[observation.threshold].append(observation)


def _boolean_masks(
    shape: tuple[int, int],
    owned_sets: list[set[int]],
    truths: list[set[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Per-company owned / ground-truth indicator matrices for one window."""
    owned = np.zeros(shape, dtype=bool)
    truth = np.zeros(shape, dtype=bool)
    for i, tokens in enumerate(owned_sets):
        if tokens:
            owned[i, list(tokens)] = True
    for i, tokens in enumerate(truths):
        if tokens:
            truth[i, list(tokens)] = True
    return owned, truth


def _count_observations(
    scores: np.ndarray,
    owned_sets: list[set[int]],
    truths: list[set[int]],
    thresholds: Sequence[float],
    window_start: dt.date,
) -> list[WindowObservation]:
    """One vectorized threshold pass over a window's score matrix.

    Owned products can never be recommended (their scores are excluded
    from every threshold), and hits are counted where a retrieved product
    appears in the company's ground truth — both via precomputed boolean
    matrices, one comparison per threshold.
    """
    owned, truth = _boolean_masks(scores.shape, owned_sets, truths)
    eligible = ~owned
    relevant = int(truth.sum())
    observations = []
    for phi in thresholds:
        hits = (scores >= phi) & eligible
        observations.append(
            WindowObservation(
                window_start=window_start,
                threshold=phi,
                n_retrieved=int(hits.sum()),
                n_correct=int((hits & truth).sum()),
                n_relevant=relevant,
            )
        )
    return observations


def _record_observation_metrics(observations: list[WindowObservation]) -> None:
    """Mirror the per-window metric increments of the historical loop."""
    if not observations:
        return
    metrics.inc("recommend.relevant", observations[0].n_relevant)
    for observation in observations:
        metrics.inc("recommend.retrieved", observation.n_retrieved)
        metrics.inc("recommend.hits", observation.n_correct)


def _fit_task(payload: dict[str, Any]) -> GenerativeModel:
    """Worker task: fit one model (optionally through the cache)."""
    return fit_model(
        payload["factory"],
        payload["train"],
        payload["cache"],
        payload["fingerprint"],
    )


def _fit_score_task(payload: dict[str, Any]) -> list[WindowObservation]:
    """Worker task: fit + score one (window, model) cell.

    Emits the same metric increments as the serial loop; the executor
    merges worker counters back into the parent registry.
    """
    model = _fit_task(payload)
    scores = model.batch_next_product_proba(payload["histories"])
    metrics.inc("recommend.candidates", scores.size)
    observations = _count_observations(
        scores,
        payload["owned_sets"],
        payload["truths"],
        payload["thresholds"],
        payload["window_start"],
    )
    _record_observation_metrics(observations)
    return observations