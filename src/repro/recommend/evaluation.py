"""Sliding-window evaluation of thresholded recommenders (Section 5.1).

For every window: retrain each model on everything strictly before the
window start, score every company's unowned products given its purchase
history, and compare the phi-thresholded recommendations with the products
that actually first appeared inside the window.

Aggregation follows the paper: each sliding window yields one accuracy
observation (micro-averaged over companies), so a sweep with l windows
gives l observations per threshold, from which the mean and a 95%
confidence interval are reported (Figures 3 and 4).  Precision is undefined
when nothing is retrieved; such windows are excluded from the precision
average, mirroring the paper's remark that "precision values are not
defined for this points".
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro._validation import check_probability
from repro.analysis.stats import mean_confidence_interval
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel
from repro.obs import get_logger, metrics, trace
from repro.recommend.windows import SlidingWindowSpec, Window
from repro.runtime import (
    FitCache,
    Ok,
    ParallelMap,
    RunJournal,
    cell_key,
    faults,
    fingerprint_corpus,
    fit_model,
    resolve_n_jobs,
    run_with_retries,
)

__all__ = ["WindowObservation", "ThresholdCurve", "RecommendationEvaluator"]


@dataclass(frozen=True)
class WindowObservation:
    """Micro-aggregated counts for one (window, threshold) cell."""

    window_start: dt.date
    threshold: float
    n_retrieved: int
    n_correct: int
    n_relevant: int

    @property
    def precision(self) -> float:
        """Correct / retrieved; NaN when nothing was retrieved."""
        if self.n_retrieved == 0:
            return float("nan")
        return self.n_correct / self.n_retrieved

    @property
    def recall(self) -> float:
        """Correct / relevant; zero when nothing was relevant."""
        if self.n_relevant == 0:
            return 0.0
        return self.n_correct / self.n_relevant

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (NaN propagates)."""
        p, r = self.precision, self.recall
        if np.isnan(p) or p + r == 0.0:
            return float("nan") if np.isnan(p) else 0.0
        return 2.0 * p * r / (p + r)

    def as_json(self) -> dict[str, Any]:
        """JSON-serializable form, for the checkpoint journal."""
        return {
            "window_start": self.window_start.isoformat(),
            "threshold": self.threshold,
            "n_retrieved": self.n_retrieved,
            "n_correct": self.n_correct,
            "n_relevant": self.n_relevant,
        }

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "WindowObservation":
        """Rebuild an observation journaled by :meth:`as_json`."""
        return cls(
            window_start=dt.date.fromisoformat(record["window_start"]),
            threshold=float(record["threshold"]),
            n_retrieved=int(record["n_retrieved"]),
            n_correct=int(record["n_correct"]),
            n_relevant=int(record["n_relevant"]),
        )


@dataclass
class ThresholdCurve:
    """Accuracy curves of one recommender across thresholds.

    Each metric maps a threshold to ``(mean, ci_low, ci_high)`` over the
    window observations.
    """

    name: str
    thresholds: list[float]
    observations: dict[float, list[WindowObservation]] = field(repr=False, default_factory=dict)

    def _aggregate(
        self, threshold: float, extract: Callable[[WindowObservation], float]
    ) -> tuple[float, float, float]:
        values = np.array(
            [extract(o) for o in self.observations[threshold]], dtype=np.float64
        )
        values = values[~np.isnan(values)]
        if values.size == 0:
            return float("nan"), float("nan"), float("nan")
        return mean_confidence_interval(values)

    def recall(self, threshold: float) -> tuple[float, float, float]:
        """Mean recall with 95% CI at a threshold."""
        return self._aggregate(threshold, lambda o: o.recall)

    def precision(self, threshold: float) -> tuple[float, float, float]:
        """Mean precision with 95% CI (over windows where it is defined)."""
        return self._aggregate(threshold, lambda o: o.precision)

    def f1(self, threshold: float) -> tuple[float, float, float]:
        """Mean F1 with 95% CI."""
        return self._aggregate(threshold, lambda o: o.f1)

    def retrieved(self, threshold: float) -> tuple[float, float, float]:
        """Mean number of retrieved products per window, with CI."""
        return self._aggregate(threshold, lambda o: float(o.n_retrieved))

    def correct(self, threshold: float) -> tuple[float, float, float]:
        """Mean number of correctly retrieved products per window, with CI."""
        return self._aggregate(threshold, lambda o: float(o.n_correct))

    def relevant(self, threshold: float) -> tuple[float, float, float]:
        """Mean number of relevant (ground-truth) products per window."""
        return self._aggregate(threshold, lambda o: float(o.n_relevant))

    def as_rows(self) -> list[dict[str, float]]:
        """Flat table: one row per threshold with all aggregate metrics."""
        rows = []
        for phi in self.thresholds:
            recall, recall_lo, recall_hi = self.recall(phi)
            precision, prec_lo, prec_hi = self.precision(phi)
            f1, f1_lo, f1_hi = self.f1(phi)
            rows.append(
                {
                    "threshold": phi,
                    "recall": recall,
                    "recall_lo": recall_lo,
                    "recall_hi": recall_hi,
                    "precision": precision,
                    "precision_lo": prec_lo,
                    "precision_hi": prec_hi,
                    "f1": f1,
                    "f1_lo": f1_lo,
                    "f1_hi": f1_hi,
                    "retrieved": self.retrieved(phi)[0],
                    "correct": self.correct(phi)[0],
                    "relevant": self.relevant(phi)[0],
                }
            )
        return rows


class RecommendationEvaluator:
    """Runs the paper's sliding-window protocol for a set of models.

    Parameters
    ----------
    corpus:
        The full corpus with dated products.
    spec:
        Window layout; defaults to the paper's 13 windows of 12 months.
    thresholds:
        The phi grid to sweep.
    retrain_per_window:
        Retrain each model on the data before every window (the paper's
        protocol).  With False, models are trained once on the data before
        the first window — cheaper, and a good approximation when windows
        are close together.
    n_jobs:
        Worker processes for the (window x model) fit+score fan-out.  The
        default ``1`` runs everything in-process and is bit-identical to
        the historical serial implementation; ``-1`` uses every CPU.
        Results are deterministic for any fixed seed regardless of the
        job count.
    fit_cache:
        Optional :class:`repro.runtime.FitCache`; fitted models are then
        keyed by (model class, hyperparameters, training-prefix
        fingerprint), so re-running a sweep — or two models sharing a
        training prefix across overlapping windows — never refits the
        same model twice.
    retries:
        Extra attempts per (window, model) cell after its first failure.
    task_timeout:
        Wall-clock seconds allowed per pooled cell (``n_jobs > 1`` only).
    journal:
        Optional :class:`repro.runtime.RunJournal`.  In the
        retrain-per-window protocol every finished (window, model) cell is
        checkpointed with its observations; a resumed sweep replays
        journaled cells (``journal.skip``) and re-runs only the rest.  A
        cell that exhausts its attempts is recorded as failed and its
        window simply contributes no observation for that model.
    """

    def __init__(
        self,
        corpus: Corpus,
        *,
        spec: SlidingWindowSpec | None = None,
        thresholds: Sequence[float] = tuple(np.round(np.arange(0.0, 0.55, 0.05), 2)),
        retrain_per_window: bool = True,
        n_jobs: int = 1,
        fit_cache: FitCache | None = None,
        retries: int = 0,
        task_timeout: float | None = None,
        journal: RunJournal | None = None,
    ) -> None:
        self.corpus = corpus
        self.spec = spec if spec is not None else SlidingWindowSpec()
        self.thresholds = [check_probability(t, "threshold") for t in thresholds]
        if not self.thresholds:
            raise ValueError("at least one threshold is required")
        self.retrain_per_window = bool(retrain_per_window)
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.fit_cache = fit_cache
        self.retries = int(retries)
        self.task_timeout = task_timeout
        self.journal = journal
        self._n_failed_cells = 0

    # ------------------------------------------------------------------
    def _window_tasks(
        self, window: Window
    ) -> tuple[list[list[int]], list[set[int]], list[set[int]]]:
        """Histories, owned sets and ground truths for one window.

        Companies enter the evaluation when they own at least one product
        before the window starts (otherwise there is no history to condition
        on).
        """
        histories: list[list[int]] = []
        owned_sets: list[set[int]] = []
        truths: list[set[int]] = []
        for company in self.corpus.companies:
            before = company.categories_before(window.start)
            if not before:
                continue
            history = [self.corpus.token(c) for c, __ in before]
            truth = {
                self.corpus.token(c)
                for c in company.categories_within(window.start, window.end)
            }
            histories.append(history)
            owned_sets.append(set(history))
            truths.append(truth)
        return histories, owned_sets, truths

    def _fit_model(
        self,
        factory: Callable[[], GenerativeModel],
        train_corpus: Corpus,
        fingerprint: str | None = None,
    ) -> GenerativeModel:
        """Fit through the cache when one is configured, directly otherwise."""
        return fit_model(factory, train_corpus, self.fit_cache, fingerprint)

    def evaluate(
        self,
        model_factories: dict[str, Callable[[], GenerativeModel]],
        *,
        verbose: bool = False,
    ) -> dict[str, ThresholdCurve]:
        """Run the full protocol; returns one curve per model name.

        With ``n_jobs > 1`` the (window x model) fit+score cells run on a
        process pool; observations are gathered back in (window, model)
        order, so the resulting curves are identical to a serial run of
        the same seed.
        """
        if not model_factories:
            raise ValueError("at least one model factory is required")
        windows = self.spec.windows()
        curves = {
            name: ThresholdCurve(name=name, thresholds=list(self.thresholds),
                                 observations={t: [] for t in self.thresholds})
            for name in model_factories
        }
        self._n_failed_cells = 0
        if self.n_jobs > 1:
            self._evaluate_parallel(model_factories, windows, curves, verbose=verbose)
        else:
            self._evaluate_serial(model_factories, windows, curves, verbose=verbose)
        if all(
            not observations
            for curve in curves.values()
            for observations in curve.observations.values()
        ):
            if self._n_failed_cells:
                raise RuntimeError(
                    f"every evaluation cell failed ({self._n_failed_cells} "
                    "recorded failures); see the runtime logs or journal"
                )
            raise ValueError(
                "no sliding window had any company with history before its "
                "start; check the window spec against the corpus timeline"
            )
        return curves

    def _cell_key(self, name: str, window: Window) -> str:
        """Journal/fault-site identity of one (window, model) cell."""
        mode = "retrain" if self.retrain_per_window else "shared"
        return cell_key("recommend", mode, name, window.start.isoformat())

    def _replay_journal(self, key: str, curve: ThresholdCurve) -> bool:
        """Replay a journaled cell's observations into ``curve`` if present."""
        if self.journal is None:
            return False
        entry = self.journal.completed(key)
        if entry is None:
            return False
        for record in entry.value:
            observation = WindowObservation.from_json(record)
            curve.observations[observation.threshold].append(observation)
        return True

    def _journal_outcome(self, key: str, outcome: Any) -> None:
        """Checkpoint one cell outcome the moment it is final."""
        if self.journal is None:
            return
        if isinstance(outcome, Ok):
            self.journal.record_ok(
                key,
                [o.as_json() for o in outcome.value],
                attempts=outcome.attempts,
            )
        else:
            self.journal.record_failure(
                key, outcome.describe(), attempts=outcome.attempts
            )

    def _merge_outcome(self, key: str, outcome: Any, curve: ThresholdCurve) -> None:
        """Fold one cell outcome into its curve.

        A failed cell contributes no observation — the window is skipped
        for that model, recorded rather than fatal.
        """
        if isinstance(outcome, Ok):
            for observation in outcome.value:
                curve.observations[observation.threshold].append(observation)
            return
        self._n_failed_cells += 1
        get_logger("recommend").warning(
            "cell %s failed after %d attempt(s); window skipped for this "
            "model: %s",
            key,
            outcome.attempts,
            outcome.describe(),
        )

    def _absorb(self, key: str, outcome: Any, curve: ThresholdCurve) -> None:
        """Journal and fold one cell outcome (the serial-path combination)."""
        self._journal_outcome(key, outcome)
        self._merge_outcome(key, outcome, curve)

    def _evaluate_serial(
        self,
        model_factories: dict[str, Callable[[], GenerativeModel]],
        windows: list[Window],
        curves: dict[str, ThresholdCurve],
        *,
        verbose: bool,
    ) -> None:
        """The historical in-process loop (the ``n_jobs=1`` reference path)."""
        trained: dict[str, GenerativeModel] = {}
        shared_train: tuple[Corpus, str | None] | None = None
        for w_index, window in enumerate(windows):
            with trace.span("recommend.window"):
                histories, owned_sets, truths = self._window_tasks(window)
            if not histories:
                continue
            metrics.inc("recommend.windows")
            metrics.inc("recommend.companies", len(histories))
            train_corpus = self.corpus.truncated_before(window.start)
            fingerprint = (
                fingerprint_corpus(train_corpus)
                if self.fit_cache is not None
                else None
            )
            if shared_train is None:
                # The once-before-the-first-window corpus of the
                # no-retrain protocol; pinned here so a resume that skips
                # the first window still trains on the right prefix.
                shared_train = (train_corpus, fingerprint)
            for name, factory in model_factories.items():
                key = self._cell_key(name, window)
                if self._replay_journal(key, curves[name]):
                    continue

                def cell(
                    name: str = name,
                    factory: Callable[[], GenerativeModel] = factory,
                    key: str = key,
                ) -> list[WindowObservation]:
                    faults.inject(key)
                    if self.retrain_per_window:
                        model = self._fit_model(factory, train_corpus, fingerprint)
                    elif name not in trained:
                        corpus, shared_fingerprint = shared_train
                        model = self._fit_model(factory, corpus, shared_fingerprint)
                        trained[name] = model
                    else:
                        model = trained[name]
                    scores = model.batch_next_product_proba(histories)
                    metrics.inc("recommend.candidates", scores.size)
                    observations = _count_observations(
                        scores, owned_sets, truths, self.thresholds, window.start
                    )
                    _record_observation_metrics(observations)
                    return observations

                self._absorb(key, run_with_retries(cell, retries=self.retries),
                             curves[name])
                if verbose:  # pragma: no cover - console convenience
                    print(f"window {w_index + 1}/{len(windows)} [{window.start}] {name} done")

    def _evaluate_parallel(
        self,
        model_factories: dict[str, Callable[[], GenerativeModel]],
        windows: list[Window],
        curves: dict[str, ThresholdCurve],
        *,
        verbose: bool,
    ) -> None:
        """Fan the fit+score cells out over a process pool.

        With ``retrain_per_window`` every (window, model) cell is one task;
        otherwise the one-off fits are parallelized across models and the
        cheap scoring pass stays in-process.  Results merge in submission
        order, so curves match the serial path exactly.
        """
        prepared: list[tuple[Window, list[list[int]], list[set[int]], list[set[int]]]] = []
        for window in windows:
            with trace.span("recommend.window"):
                histories, owned_sets, truths = self._window_tasks(window)
            if not histories:
                continue
            metrics.inc("recommend.windows")
            metrics.inc("recommend.companies", len(histories))
            prepared.append((window, histories, owned_sets, truths))
        if not prepared:
            return
        executor = ParallelMap(
            self.n_jobs, retries=self.retries, task_timeout=self.task_timeout
        )
        if self.retrain_per_window:
            payloads = []
            for window, histories, owned_sets, truths in prepared:
                # The training prefix is built lazily: a fully journaled
                # window replays without paying for truncation/hashing.
                train_corpus: Corpus | None = None
                fingerprint: str | None = None
                for name, factory in model_factories.items():
                    key = self._cell_key(name, window)
                    if self._replay_journal(key, curves[name]):
                        continue
                    if train_corpus is None:
                        train_corpus = self.corpus.truncated_before(window.start)
                        fingerprint = (
                            fingerprint_corpus(train_corpus)
                            if self.fit_cache is not None
                            else None
                        )
                    payloads.append(
                        {
                            "name": name,
                            "cell": key,
                            "factory": factory,
                            "train": train_corpus,
                            "fingerprint": fingerprint,
                            "cache": self.fit_cache,
                            "histories": histories,
                            "owned_sets": owned_sets,
                            "truths": truths,
                            "thresholds": self.thresholds,
                            "window_start": window.start,
                        }
                    )
            def journal_outcome(position: int, outcome: Any) -> None:
                # Journaling happens per finished cell (completion order —
                # entries are keyed, so order is irrelevant) while curve
                # merging below stays in submission order for determinism.
                self._journal_outcome(payloads[position]["cell"], outcome)

            outcomes = executor.map_outcomes(
                _fit_score_task, payloads, on_outcome=journal_outcome
            )
            for payload, outcome in zip(payloads, outcomes):
                self._merge_outcome(payload["cell"], outcome, curves[payload["name"]])
                if verbose:  # pragma: no cover - console convenience
                    print(f"[{payload['window_start']}] {payload['name']} done")
        else:
            first_window = prepared[0][0]
            train_corpus = self.corpus.truncated_before(first_window.start)
            fingerprint = (
                fingerprint_corpus(train_corpus)
                if self.fit_cache is not None
                else None
            )
            fit_payloads = [
                {
                    "name": name,
                    "factory": factory,
                    "train": train_corpus,
                    "fingerprint": fingerprint,
                    "cache": self.fit_cache,
                }
                for name, factory in model_factories.items()
            ]
            models: dict[str, GenerativeModel] = {}
            for payload, outcome in zip(
                fit_payloads, executor.map_outcomes(_fit_task, fit_payloads)
            ):
                if isinstance(outcome, Ok):
                    models[payload["name"]] = outcome.value
                    continue
                self._n_failed_cells += 1
                get_logger("recommend").warning(
                    "fit of model %s failed after %d attempt(s); model "
                    "excluded from the sweep: %s",
                    payload["name"],
                    outcome.attempts,
                    outcome.describe(),
                )
            for window, histories, owned_sets, truths in prepared:
                for name in models:
                    scores = models[name].batch_next_product_proba(histories)
                    metrics.inc("recommend.candidates", scores.size)
                    self._score_window(
                        curves[name], window, scores, owned_sets, truths
                    )

    def _score_window(
        self,
        curve: ThresholdCurve,
        window: Window,
        scores: np.ndarray,
        owned_sets: list[set[int]],
        truths: list[set[int]],
    ) -> None:
        """Threshold the score matrix and append one observation per phi."""
        observations = _count_observations(
            scores, owned_sets, truths, self.thresholds, window.start
        )
        _record_observation_metrics(observations)
        for observation in observations:
            curve.observations[observation.threshold].append(observation)


def _boolean_masks(
    shape: tuple[int, int],
    owned_sets: list[set[int]],
    truths: list[set[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Per-company owned / ground-truth indicator matrices for one window."""
    owned = np.zeros(shape, dtype=bool)
    truth = np.zeros(shape, dtype=bool)
    for i, tokens in enumerate(owned_sets):
        if tokens:
            owned[i, list(tokens)] = True
    for i, tokens in enumerate(truths):
        if tokens:
            truth[i, list(tokens)] = True
    return owned, truth


def _count_observations(
    scores: np.ndarray,
    owned_sets: list[set[int]],
    truths: list[set[int]],
    thresholds: Sequence[float],
    window_start: dt.date,
) -> list[WindowObservation]:
    """One vectorized threshold pass over a window's score matrix.

    Owned products can never be recommended (their scores are excluded
    from every threshold), and hits are counted where a retrieved product
    appears in the company's ground truth — both via precomputed boolean
    matrices, one comparison per threshold.
    """
    owned, truth = _boolean_masks(scores.shape, owned_sets, truths)
    eligible = ~owned
    relevant = int(truth.sum())
    observations = []
    for phi in thresholds:
        hits = (scores >= phi) & eligible
        observations.append(
            WindowObservation(
                window_start=window_start,
                threshold=phi,
                n_retrieved=int(hits.sum()),
                n_correct=int((hits & truth).sum()),
                n_relevant=relevant,
            )
        )
    return observations


def _record_observation_metrics(observations: list[WindowObservation]) -> None:
    """Mirror the per-window metric increments of the historical loop."""
    if not observations:
        return
    metrics.inc("recommend.relevant", observations[0].n_relevant)
    for observation in observations:
        metrics.inc("recommend.retrieved", observation.n_retrieved)
        metrics.inc("recommend.hits", observation.n_correct)


def _fit_task(payload: dict[str, Any]) -> GenerativeModel:
    """Worker task: fit one model (optionally through the cache)."""
    return fit_model(
        payload["factory"],
        payload["train"],
        payload["cache"],
        payload["fingerprint"],
    )


def _fit_score_task(payload: dict[str, Any]) -> list[WindowObservation]:
    """Worker task: fit + score one (window, model) cell.

    Emits the same metric increments as the serial loop; the executor
    merges worker counters back into the parent registry.
    """
    faults.inject(payload["cell"])
    model = _fit_task(payload)
    scores = model.batch_next_product_proba(payload["histories"])
    metrics.inc("recommend.candidates", scores.size)
    observations = _count_observations(
        scores,
        payload["owned_sets"],
        payload["truths"],
        payload["thresholds"],
        payload["window_start"],
    )
    _record_observation_metrics(observations)
    return observations