"""Top-k ranking metrics for recommenders.

The paper evaluates thresholded recommendations (precision/recall vs phi).
A production recommender is usually consumed as a ranked top-k list
instead, so the library also ships the standard ranking metrics —
precision@k, recall@k, mean reciprocal rank, and nDCG@k — plus an
evaluator that scores any :class:`~repro.models.base.GenerativeModel` on
the same sliding-window ground truth.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._validation import check_positive_int
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "ndcg_at_k",
    "RankingReport",
    "evaluate_ranking",
]


def precision_at_k(ranked: list[int], truth: set[int], k: int) -> float:
    """Fraction of the top-k ranked items that are relevant."""
    check_positive_int(k, "k")
    if not ranked:
        return 0.0
    top = ranked[:k]
    return sum(1 for item in top if item in truth) / len(top)


def recall_at_k(ranked: list[int], truth: set[int], k: int) -> float:
    """Fraction of the relevant items found in the top k."""
    check_positive_int(k, "k")
    if not truth:
        return 0.0
    top = set(ranked[:k])
    return len(top & truth) / len(truth)


def reciprocal_rank(ranked: list[int], truth: set[int]) -> float:
    """1 / rank of the first relevant item (0 if none appears)."""
    for position, item in enumerate(ranked, start=1):
        if item in truth:
            return 1.0 / position
    return 0.0


def ndcg_at_k(ranked: list[int], truth: set[int], k: int) -> float:
    """Normalised discounted cumulative gain with binary relevance."""
    check_positive_int(k, "k")
    if not truth:
        return 0.0
    gain = 0.0
    for position, item in enumerate(ranked[:k], start=1):
        if item in truth:
            gain += 1.0 / np.log2(position + 1)
    ideal = sum(1.0 / np.log2(p + 1) for p in range(1, min(len(truth), k) + 1))
    return gain / ideal if ideal > 0 else 0.0


@dataclass(frozen=True)
class RankingReport:
    """Mean ranking metrics over all evaluated companies."""

    k: int
    n_companies: int
    precision: float
    recall: float
    mrr: float
    ndcg: float


def evaluate_ranking(
    corpus: Corpus,
    model_factory: Callable[[], GenerativeModel],
    *,
    cutoff: dt.date = dt.date(2013, 1, 1),
    horizon: dt.date = dt.date(2016, 1, 1),
    k: int = 5,
) -> RankingReport:
    """Score a model's ranked recommendations against post-cutoff truth.

    The model trains on everything strictly before ``cutoff``; for each
    company with history, unowned products are ranked by score and compared
    with the products first seen in ``[cutoff, horizon)``.  Companies with
    no ground-truth products are skipped (all ranking metrics would be
    vacuous for them).
    """
    check_positive_int(k, "k")
    if horizon <= cutoff:
        raise ValueError(f"horizon {horizon} must follow cutoff {cutoff}")
    train = corpus.truncated_before(cutoff)
    model = model_factory().fit(train)

    histories: list[list[int]] = []
    truths: list[set[int]] = []
    for company in corpus.companies:
        before = company.categories_before(cutoff)
        if not before:
            continue
        truth = {
            corpus.token(c) for c in company.categories_within(cutoff, horizon)
        }
        if not truth:
            continue
        histories.append([corpus.token(c) for c, __ in before])
        truths.append(truth)
    if not histories:
        raise ValueError("no company has both history and ground truth")

    scores = model.batch_next_product_proba(histories)
    precisions, recalls, mrrs, ndcgs = [], [], [], []
    for row, history, truth in zip(scores, histories, truths):
        owned = set(history)
        order = np.argsort(-row, kind="stable")
        ranked = [int(t) for t in order if int(t) not in owned]
        precisions.append(precision_at_k(ranked, truth, k))
        recalls.append(recall_at_k(ranked, truth, k))
        mrrs.append(reciprocal_rank(ranked, truth))
        ndcgs.append(ndcg_at_k(ranked, truth, k))
    return RankingReport(
        k=k,
        n_companies=len(histories),
        precision=float(np.mean(precisions)),
        recall=float(np.mean(recalls)),
        mrr=float(np.mean(mrrs)),
        ndcg=float(np.mean(ndcgs)),
    )
