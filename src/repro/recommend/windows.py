"""Sliding evaluation windows over the install-base timeline.

The paper's protocol (Section 5.1): windows of r = 12 months, sliding by
two months, starting January 1, 2013; 13 windows in total, the last one
covering January 2015 - January 2016.  Everything strictly before a
window's start is training data for that window.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

from repro._validation import check_positive_int
from repro.preprocessing.timeutil import add_months

__all__ = ["SlidingWindowSpec", "Window"]


@dataclass(frozen=True)
class Window:
    """One evaluation window ``[start, end)``."""

    start: dt.date
    end: dt.date

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window [{self.start}, {self.end})")


@dataclass(frozen=True)
class SlidingWindowSpec:
    """Generator of the paper's sliding windows.

    Parameters
    ----------
    first_start:
        Start of the first window (paper: 2013-01-01).
    window_months:
        Window span r (paper: 12; the span of marketing interest is 6-24).
    stride_months:
        Slide granularity (paper: 2).
    n_windows:
        Number of windows l (paper: 13).
    """

    first_start: dt.date = dt.date(2013, 1, 1)
    window_months: int = 12
    stride_months: int = 2
    n_windows: int = 13

    def __post_init__(self) -> None:
        check_positive_int(self.window_months, "window_months")
        check_positive_int(self.stride_months, "stride_months")
        check_positive_int(self.n_windows, "n_windows")

    def windows(self) -> list[Window]:
        """All windows, earliest first."""
        result = []
        for i in range(self.n_windows):
            start = add_months(self.first_start, i * self.stride_months)
            end = add_months(start, self.window_months)
            result.append(Window(start=start, end=end))
        return result

    @property
    def last_end(self) -> dt.date:
        """End date of the final window."""
        return self.windows()[-1].end
