"""Baseline recommenders for the accuracy figures.

The paper sanity-checks the harness with "the random generator that
produced a product recommendation with a uniform probability = 1/38": it
retrieves everything for phi <= 1/38 and essentially nothing correct above
(Section 5.1).  :class:`RandomRecommender` reproduces exactly that
behaviour inside the shared harness.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel

__all__ = ["RandomRecommender"]


class RandomRecommender(GenerativeModel):
    """Uniform scorer: every product gets probability 1/M."""

    name = "random"

    def fit(self, corpus: Corpus) -> "RandomRecommender":
        self._vocab_size = corpus.n_products
        return self

    def log_prob(self, corpus: Corpus) -> float:
        self._check_fitted()
        if corpus.n_products != self.vocab_size:
            raise ValueError("product dimension mismatch")
        return float(corpus.total_products() * -np.log(self.vocab_size))

    def next_product_proba(self, history: list[int]) -> np.ndarray:
        self._check_history(history)
        return np.full(self.vocab_size, 1.0 / self.vocab_size)

    def _get_state(self) -> dict[str, Any]:
        return super()._get_state()

    def _set_state(self, state: dict[str, Any]) -> None:
        super()._set_state(state)
