"""Threshold recommender over any generative model.

Section 4.3: "If for a product p_i the probability of the generative model
M ... exceeds a threshold phi we assume that the product p_i should be
recommended to a given company."  Products the company already owns are
never recommended.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_probability
from repro.models.base import GenerativeModel

__all__ = ["ThresholdRecommender"]


class ThresholdRecommender:
    """Wraps a fitted model into a phi-thresholded recommender."""

    def __init__(self, model: GenerativeModel, *, threshold: float = 0.1) -> None:
        if not isinstance(model, GenerativeModel):
            raise TypeError(
                f"model must be a GenerativeModel, got {type(model).__name__}"
            )
        if not model.is_fitted:
            raise ValueError("model must be fitted before building a recommender")
        self.model = model
        self.threshold = check_probability(threshold, "threshold")

    def scores(self, history: list[int]) -> np.ndarray:
        """Raw conditional product probabilities for a company history."""
        return self.model.next_product_proba(history)

    def recommend(
        self, history: list[int], *, threshold: float | None = None
    ) -> list[int]:
        """Products scoring above the threshold, excluding those owned.

        Returns token ids sorted by descending score.
        """
        phi = self.threshold if threshold is None else check_probability(threshold, "threshold")
        scores = self.scores(history)
        owned = set(history)
        candidates = [
            (float(scores[token]), token)
            for token in range(len(scores))
            if token not in owned and scores[token] >= phi
        ]
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        return [token for __, token in candidates]

    def top_k(self, history: list[int], k: int) -> list[int]:
        """The k highest-scoring unowned products regardless of threshold."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        scores = self.scores(history)
        owned = set(history)
        order = np.argsort(-scores, kind="stable")
        result = [int(t) for t in order if int(t) not in owned]
        return result[:k]
