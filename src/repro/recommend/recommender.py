"""Threshold recommender over any generative model.

Section 4.3: "If for a product p_i the probability of the generative model
M ... exceeds a threshold phi we assume that the product p_i should be
recommended to a given company."  Products the company already owns are
never recommended.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_probability
from repro.models.base import GenerativeModel

__all__ = ["ThresholdRecommender"]


class ThresholdRecommender:
    """Wraps a fitted model into a phi-thresholded recommender."""

    def __init__(self, model: GenerativeModel, *, threshold: float = 0.1) -> None:
        if not isinstance(model, GenerativeModel):
            raise TypeError(
                f"model must be a GenerativeModel, got {type(model).__name__}"
            )
        if not model.is_fitted:
            raise ValueError("model must be fitted before building a recommender")
        self.model = model
        self.threshold = check_probability(threshold, "threshold")

    def scores(self, history: list[int]) -> np.ndarray:
        """Raw conditional product probabilities for a company history.

        The history is validated against the model vocabulary up front, so
        out-of-range token ids raise a clear :class:`ValueError` here
        rather than an ``IndexError`` inside a numpy kernel.
        """
        return self.model.next_product_proba(self.model.validate_history(history))

    def _owned_mask(self, history: list[int], size: int) -> np.ndarray:
        """Boolean mask of the products the company already owns."""
        owned = np.zeros(size, dtype=bool)
        if history:
            owned[np.asarray(history, dtype=np.intp)] = True
        return owned

    def recommend_scored(
        self, history: list[int], *, threshold: float | None = None
    ) -> list[tuple[int, float]]:
        """``(token, score)`` pairs above the threshold, excluding owned.

        Sorted by descending score, ties broken by ascending token id.
        """
        phi = self.threshold if threshold is None else check_probability(threshold, "threshold")
        clean = self.model.validate_history(history)
        scores = self.model.next_product_proba(clean)
        eligible = (scores >= phi) & ~self._owned_mask(clean, len(scores))
        candidates = np.flatnonzero(eligible)
        if len(candidates) == 0:
            return []
        # Stable argsort of the negated scores keeps ascending-token order
        # within each tied score group.
        order = np.argsort(-scores[candidates], kind="stable")
        ranked = candidates[order]
        return [(int(t), float(scores[t])) for t in ranked]

    def recommend(
        self, history: list[int], *, threshold: float | None = None
    ) -> list[int]:
        """Products scoring above the threshold, excluding those owned.

        Returns token ids sorted by descending score.
        """
        return [token for token, __ in self.recommend_scored(history, threshold=threshold)]

    def top_k(self, history: list[int], k: int) -> list[int]:
        """The k highest-scoring unowned products regardless of threshold."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        clean = self.model.validate_history(history)
        scores = self.model.next_product_proba(clean)
        candidates = np.flatnonzero(~self._owned_mask(clean, len(scores)))
        order = np.argsort(-scores[candidates], kind="stable")
        return [int(t) for t in candidates[order][:k]]
