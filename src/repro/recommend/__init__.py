"""Sliding-window recommendation harness (Sections 4.3 and 5.1).

Any :class:`~repro.models.base.GenerativeModel` becomes a recommender by
thresholding its conditional product probabilities; the evaluator slides a
12-month window over the corpus timeline, retrains on everything before
each window, and scores recommendations against the products that actually
appeared inside the window.
"""

from repro.recommend.baselines import RandomRecommender
from repro.recommend.evaluation import (
    RecommendationEvaluator,
    ThresholdCurve,
    WindowObservation,
)
from repro.recommend.ranking import (
    RankingReport,
    evaluate_ranking,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.recommend.recommender import ThresholdRecommender
from repro.recommend.windows import SlidingWindowSpec

__all__ = [
    "RandomRecommender",
    "RecommendationEvaluator",
    "ThresholdCurve",
    "WindowObservation",
    "ThresholdRecommender",
    "SlidingWindowSpec",
    "RankingReport",
    "evaluate_ranking",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "ndcg_at_k",
]
