"""Command-line experiment runner: ``python -m repro <experiment>``.

Every paper artifact can be regenerated from the console::

    repro table1 --companies 2000
    repro lda-sweep
    repro lstm-grid --epochs 14
    repro recommend --windows 13
    repro bpmf
    repro silhouette
    repro tsne --topics 3
    repro sequentiality
    repro cocluster
    repro sales-demo

All commands accept ``--companies`` and ``--seed`` to control the synthetic
universe.  Output is plain fixed-width text.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    make_experiment_data,
    run_bpmf_analysis,
    run_cocluster_baseline,
    run_lda_sweep,
    run_lstm_grid,
    run_perplexity_table,
    run_recommendation_accuracy,
    run_sequentiality,
    run_silhouette_curves,
    run_tsne_projection,
)
from repro.experiments.fig34_recommendation import format_curves
from repro.experiments.sequentiality import PAPER_FRACTIONS
from repro.experiments.table1 import format_table
from repro.recommend.windows import SlidingWindowSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for all experiment subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the EDBT 2019 hidden-layer-models experiments.",
    )
    parser.add_argument("--companies", type=int, default=2000, help="synthetic corpus size")
    parser.add_argument("--seed", type=int, default=7, help="universe generation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: minimum perplexity per method")

    lda = sub.add_parser("lda-sweep", help="Figure 2: LDA perplexity vs topics")
    lda.add_argument("--iterations", type=int, default=100)

    lstm = sub.add_parser("lstm-grid", help="Figure 1: LSTM architecture grid")
    lstm.add_argument("--epochs", type=int, default=14)

    rec = sub.add_parser("recommend", help="Figures 3/4: recommendation accuracy")
    rec.add_argument("--windows", type=int, default=13)
    rec.add_argument("--retrain", action="store_true", help="retrain per window (slow)")

    sub.add_parser("bpmf", help="Figures 5/6: BPMF score degeneracy")
    sub.add_parser("silhouette", help="Figure 7: silhouette curves")

    tsne = sub.add_parser("tsne", help="Figures 8/9: t-SNE product projection")
    tsne.add_argument("--topics", type=int, default=3)

    sub.add_parser("sequentiality", help="In-text binomial sequentiality test")
    sub.add_parser("cocluster", help="Section 3.1 co-clustering baseline")
    sub.add_parser("sales-demo", help="Section 6 sales tool walk-through")

    rank = sub.add_parser("ranking", help="Extension: top-k ranking metrics")
    rank.add_argument("--k", type=int, default=5)

    sub.add_parser("representations", help="Extension: representation families")
    return parser


def _cmd_table1(args: argparse.Namespace) -> None:
    data = make_experiment_data(args.companies, seed=args.seed)
    print(format_table(run_perplexity_table(data)))


def _cmd_lda_sweep(args: argparse.Namespace) -> None:
    data = make_experiment_data(args.companies, seed=args.seed)
    rows = run_lda_sweep(data, n_iter=args.iterations)
    print(f"{'input':<8} {'topics':>6} {'perplexity':>11} {'params':>7}")
    for row in rows:
        print(
            f"{row['input']:<8} {row['n_topics']:>6.0f} "
            f"{row['test_perplexity']:>11.2f} {row['n_parameters']:>7.0f}"
        )


def _cmd_lstm_grid(args: argparse.Namespace) -> None:
    data = make_experiment_data(args.companies, seed=args.seed)
    rows = run_lstm_grid(data, n_epochs=args.epochs)
    print(f"{'layers':>6} {'nodes':>6} {'perplexity':>11} {'params':>9}")
    for row in rows:
        print(
            f"{row['n_layers']:>6.0f} {row['nodes']:>6.0f} "
            f"{row['test_perplexity']:>11.2f} {row['n_parameters']:>9.0f}"
        )


def _cmd_recommend(args: argparse.Namespace) -> None:
    data = make_experiment_data(args.companies, seed=args.seed)
    curves = run_recommendation_accuracy(
        data,
        spec=SlidingWindowSpec(n_windows=args.windows),
        retrain_per_window=args.retrain,
    )
    print(format_curves(curves))


def _cmd_bpmf(args: argparse.Namespace) -> None:
    data = make_experiment_data(args.companies, seed=args.seed)
    result = run_bpmf_analysis(data)
    quantiles = result["score_quantiles"]
    print("BPMF recommendation score distribution (Figure 5):")
    for key, value in quantiles.items():
        print(f"  {key:>12}: {value:.4f}")
    print("\nThreshold sweep (Figure 6):")
    print(f"{'threshold':>9} {'precision':>9} {'recall':>7} {'f1':>7} {'retrieved':>10}")
    for row in result["threshold_rows"]:
        print(
            f"{row['threshold']:>9.2f} {row['precision']:>9.3f} "
            f"{row['recall']:>7.3f} {row['f1']:>7.3f} {row['retrieved']:>10.0f}"
        )


def _cmd_silhouette(args: argparse.Namespace) -> None:
    data = make_experiment_data(args.companies, seed=args.seed)
    rows = run_silhouette_curves(data)
    print(f"{'representation':<14} {'clusters':>8} {'silhouette':>11}")
    for row in rows:
        print(
            f"{row['representation']:<14} {row['n_clusters']:>8.0f} "
            f"{row['silhouette']:>11.3f}"
        )


def _cmd_tsne(args: argparse.Namespace) -> None:
    data = make_experiment_data(args.companies, seed=args.seed)
    result = run_tsne_projection(data, n_topics=args.topics)
    print(f"t-SNE of LDA{args.topics} product embeddings (Figures 8/9):")
    for category, (x, y) in sorted(result["coordinates"].items()):
        print(f"  {category:<26} {x:>8.2f} {y:>8.2f}")
    print(f"hardware group distance ratio: {result['hardware_ratio']:.3f} (<1 = co-located)")
    print(f"software group distance ratio: {result['software_ratio']:.3f} (<1 = co-located)")
    print(f"profile-core distance ratio:   {result['profile_core_ratio']:.3f} (<1 = co-located)")


def _cmd_sequentiality(args: argparse.Namespace) -> None:
    data = make_experiment_data(args.companies, seed=args.seed)
    reports = run_sequentiality(data)
    print(f"{'order':>5} {'significant':>11} {'distinct':>8} {'fraction':>8} {'paper':>6}")
    for order, report in reports.items():
        print(
            f"{order:>5} {report.n_significant:>11} {report.n_distinct:>8} "
            f"{report.significant_fraction:>8.2f} {PAPER_FRACTIONS[order]:>6.2f}"
        )


def _cmd_cocluster(args: argparse.Namespace) -> None:
    data = make_experiment_data(args.companies, seed=args.seed)
    result = run_cocluster_baseline(data)
    print("co-cluster summaries (rows x cols, density):")
    for summary in result["summaries"]:
        print(
            f"  cluster {summary['cluster']:.0f}: {summary['n_rows']:.0f} x "
            f"{summary['n_cols']:.0f}, density {summary['density']:.3f}"
        )
    print(f"densest cluster products: {result['densest_cluster_products']}")
    print(f"overlap with top-quartile popular products: {result['popular_overlap']:.2f}")
    print(f"row-cluster purity vs true profiles: {result['profile_purity']:.2f}")
    print(f"k-means-on-LDA-features purity:       {result['lda_feature_purity']:.2f}")


def _cmd_sales_demo(args: argparse.Namespace) -> None:
    from repro.app import FirmographicFilter, SalesRecommendationTool
    from repro.data.internal import InternalSalesDatabase
    from repro.models.lda import LatentDirichletAllocation

    data = make_experiment_data(args.companies, seed=args.seed)
    corpus = data.corpus
    lda = LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=80, seed=0
    ).fit(corpus)
    internal = InternalSalesDatabase(corpus.companies, seed=args.seed)
    tool = SalesRecommendationTool(corpus, lda.company_features(corpus), internal)
    target = corpus.companies[0]
    print(f"target: {target.name} ({target.duns}) — owns {sorted(target.categories)}")
    print("\ntop similar companies:")
    for hit in tool.similar_companies(target.duns.value, k=5):
        print(f"  {hit.name:<32} similarity {hit.similarity:.3f}")
    print("\nrecommendations (similar clients' whitespace):")
    for rec in tool.recommend_products(target.duns.value):
        print(
            f"  {rec.category:<26} strength {rec.strength:.3f} "
            f"({rec.n_supporters} supporters)"
        )
    industry_filter = FirmographicFilter(sic2=target.sic2)
    same_industry = tool.similar_companies(target.duns.value, k=3, filters=industry_filter)
    print(f"\nsame-industry matches (SIC2 {target.sic2}):")
    for hit in same_industry:
        print(f"  {hit.name:<32} similarity {hit.similarity:.3f}")


def _cmd_ranking(args: argparse.Namespace) -> None:
    from repro.models.chh import ConditionalHeavyHitters
    from repro.models.lda import LatentDirichletAllocation
    from repro.recommend.baselines import RandomRecommender
    from repro.recommend.ranking import evaluate_ranking

    data = make_experiment_data(args.companies, seed=args.seed)
    factories = {
        "LDA3": lambda: LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=80, seed=0
        ),
        "CHH": lambda: ConditionalHeavyHitters(depth=2),
        "random": lambda: RandomRecommender(),
    }
    print(f"{'model':<8} {'P@'+str(args.k):>7} {'R@'+str(args.k):>7} {'MRR':>6} {'nDCG':>6}")
    for name, factory in factories.items():
        report = evaluate_ranking(data.corpus, factory, k=args.k)
        print(
            f"{name:<8} {report.precision:>7.3f} {report.recall:>7.3f} "
            f"{report.mrr:>6.3f} {report.ndcg:>6.3f}"
        )


def _cmd_representations(args: argparse.Namespace) -> None:
    from repro.experiments import run_representation_families

    data = make_experiment_data(args.companies, seed=args.seed)
    results = run_representation_families(data)
    print(f"{'family':<8} {'silhouette':>11} {'purity':>7}")
    for name, metrics in sorted(results.items(), key=lambda kv: -kv[1]["silhouette"]):
        print(f"{name:<8} {metrics['silhouette']:>11.3f} {metrics['profile_purity']:>7.3f}")


_COMMANDS: dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": _cmd_table1,
    "lda-sweep": _cmd_lda_sweep,
    "lstm-grid": _cmd_lstm_grid,
    "recommend": _cmd_recommend,
    "bpmf": _cmd_bpmf,
    "silhouette": _cmd_silhouette,
    "tsne": _cmd_tsne,
    "sequentiality": _cmd_sequentiality,
    "cocluster": _cmd_cocluster,
    "sales-demo": _cmd_sales_demo,
    "ranking": _cmd_ranking,
    "representations": _cmd_representations,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
