"""Command-line experiment runner: ``python -m repro <experiment>``.

Every paper artifact can be regenerated from the console::

    repro table1 --companies 2000
    repro lda-sweep
    repro lstm-grid --epochs 14      # alias: repro fig1 --dtype float32
    repro recommend --windows 13
    repro bpmf
    repro silhouette
    repro tsne --topics 3
    repro sequentiality
    repro cocluster
    repro sales-demo
    repro serve --companies 300 --port 8151

Robustness tooling rides the same corpus flags::

    repro scenario build /tmp/messy --pack messy-world --scenario-seed 3
    repro replay --windows 6 --canary --candidate-pack drift
    repro serve --canary 3            # replay-gated hot-swap promotion

All commands accept ``--companies`` and ``--seed`` to control the synthetic
universe, plus the observability flags ``--log-level``, ``--log-json PATH``,
``--trace`` and ``--profile``.  Output is plain fixed-width text; ``--trace``
appends a span-tree timing report covering every stage and model.

Runtime flags: ``--jobs N`` fans independent fits out over N worker
processes (results identical to ``--jobs 1``), ``--cache-dir PATH`` reuses
fitted models across runs via the content-addressed fit cache, and
``--metrics-json PATH`` dumps the run's counters (including ``cache.hit`` /
``cache.miss``) for scripted inspection.

Fault-tolerance flags: ``--retries N`` re-attempts each failed sweep cell,
``--task-timeout S`` bounds each pooled cell's wall clock,
``--checkpoint-dir PATH`` journals finished cells so ``--resume`` replays
them instead of re-running, and ``--inject-faults SPEC`` arms the
deterministic fault injectors (see :mod:`repro.runtime.faults`).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Callable

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import report as obs_report
from repro.obs import trace as obs_trace
from repro.runtime import FitCache, RunJournal, faults as runtime_faults

from repro.experiments import (
    make_experiment_data,
    run_bpmf_analysis,
    run_cocluster_baseline,
    run_lda_sweep,
    run_lstm_grid,
    run_perplexity_table,
    run_recommendation_accuracy,
    run_sequentiality,
    run_silhouette_curves,
    run_tsne_projection,
)
from repro.experiments.fig34_recommendation import format_curves
from repro.experiments.sequentiality import PAPER_FRACTIONS
from repro.experiments.table1 import format_table
from repro.recommend.windows import SlidingWindowSpec

__all__ = ["main", "build_parser"]


def _add_global_options(parser: argparse.ArgumentParser, *, suppress: bool) -> None:
    """Attach the shared corpus + observability flags to ``parser``.

    The same options are registered on the main parser (with real
    defaults) and, defaults-suppressed, on every subparser — so
    ``repro --trace table1`` and ``repro table1 --trace`` both work.
    """

    def default(value: object) -> object:
        return argparse.SUPPRESS if suppress else value

    parser.add_argument(
        "--companies", type=int, default=default(2000), help="synthetic corpus size"
    )
    parser.add_argument(
        "--seed", type=int, default=default(7), help="universe generation seed"
    )
    parser.add_argument(
        "--corpus-dir",
        metavar="DIR",
        default=default(None),
        help="run from a published columnar corpus directory (memmap-backed, "
        "bounded memory) instead of simulating; overrides --companies/--seed "
        "for data (build one with `repro corpus build DIR`)",
    )
    parser.add_argument(
        "--log-level",
        default=default("warning"),
        choices=("debug", "info", "warning", "error"),
        help="console log threshold",
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        default=default(None),
        help="also append structured JSON-lines logs to PATH",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        default=default(False),
        help="record stage/model spans and print a timing report",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        default=default(False),
        help="capture the cProfile top hot functions (implies a report)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=default(1),
        metavar="N",
        help="worker processes for fit fan-out (1 = serial, -1 = all CPUs); "
        "results are identical for any value",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=default(None),
        help="content-addressed fit cache directory; reruns with the same "
        "corpus and hyperparameters reuse fitted models",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=default(None),
        help="write the run's metric counters (cache.hit/miss, runtime.tasks, "
        "recommend.*) as JSON to PATH",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=default(0),
        metavar="N",
        help="extra attempts per sweep cell after its first failure "
        "(0 = fail the cell immediately; failed cells degrade to recorded "
        "failures, they never abort the sweep)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=default(None),
        metavar="SECONDS",
        help="wall-clock budget per pooled sweep cell (--jobs > 1 only); "
        "a cell that exceeds it counts as one failed attempt",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        default=default(None),
        help="journal finished sweep cells under PATH; combine with "
        "--resume to skip them after an interruption",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        default=default(False),
        help="replay cells already journaled in --checkpoint-dir instead "
        "of re-running them (counted as journal.skip)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=default(None),
        help="arm deterministic fault injection, e.g. "
        "'crash:table1/s:lda' or 'segfault:fig1:times=1' — "
        "comma-separated mode:match[:opt=val[;opt=val]] specs "
        "(modes: crash, segfault, hang, corrupt)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for all experiment subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the EDBT 2019 hidden-layer-models experiments.",
    )
    _add_global_options(parser, suppress=False)
    shared = argparse.ArgumentParser(add_help=False)
    _add_global_options(shared, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser(
        "table1", help="Table 1: minimum perplexity per method", parents=[shared]
    )
    table1.add_argument(
        "--methods",
        metavar="LIST",
        default=None,
        help="comma-separated subset of table rows to compute "
        "(unigram, ngram, lstm, lda); default: all",
    )

    corpus_cmd = sub.add_parser(
        "corpus",
        help="build or inspect an on-disk columnar corpus",
        parents=[shared],
    )
    corpus_cmd.add_argument(
        "action", choices=["build", "info"], help="'build' simulates to DIR; "
        "'info' prints a built corpus's manifest summary"
    )
    corpus_cmd.add_argument("dir", metavar="DIR", help="corpus directory")
    corpus_cmd.add_argument(
        "--chunk-size",
        type=int,
        default=50_000,
        metavar="N",
        help="companies simulated per streamed batch; a single-chunk build "
        "(chunk-size >= companies) is bit-identical to the in-memory "
        "universe of the same (companies, seed)",
    )

    scenario_cmd = sub.add_parser(
        "scenario",
        help="build a corrupted messy-world corpus, or list scenario packs",
        parents=[shared],
    )
    scenario_cmd.add_argument(
        "action",
        choices=["build", "list"],
        help="'build' corrupts the corpus and writes it to DIR with its "
        "ground-truth manifest; 'list' prints the available packs",
    )
    scenario_cmd.add_argument(
        "dir", nargs="?", metavar="DIR", help="output corpus directory (build)"
    )
    scenario_cmd.add_argument(
        "--pack",
        default="messy-world",
        help="scenario pack to apply (see `repro scenario list`)",
    )
    scenario_cmd.add_argument(
        "--scenario-seed",
        type=int,
        default=0,
        metavar="N",
        help="corruption seed — same (pack, seed, corpus) always yields the "
        "same manifest digest and corpus fingerprint",
    )

    lda = sub.add_parser(
        "lda-sweep", help="Figure 2: LDA perplexity vs topics", parents=[shared]
    )
    lda.add_argument("--iterations", type=int, default=100)

    lstm = sub.add_parser(
        "lstm-grid",
        aliases=["fig1"],
        help="Figure 1: LSTM architecture grid (alias: fig1)",
        parents=[shared],
    )
    lstm.add_argument("--epochs", type=int, default=14)
    lstm.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default="float32",
        help="training precision: float32 uses the fast fused kernels "
        "(default), float64 replays the original double-precision "
        "arithmetic bit-for-bit",
    )

    rec = sub.add_parser(
        "recommend", help="Figures 3/4: recommendation accuracy", parents=[shared]
    )
    rec.add_argument("--windows", type=int, default=13)
    rec.add_argument(
        "--retrain",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="--retrain (default) follows the paper exactly: refit every "
        "model on the data before each window; --no-retrain trains once "
        "before the first window — much faster, approximate numbers",
    )

    replay_cmd = sub.add_parser(
        "replay",
        help="time-sliced replay of a frozen model, with optional canary",
        parents=[shared],
    )
    replay_cmd.add_argument(
        "--windows", type=int, default=6, help="sliding windows to replay"
    )
    replay_cmd.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        metavar="PHI",
        help="recommendation probability threshold applied per window",
    )
    replay_cmd.add_argument(
        "--model",
        choices=["lda", "ngram", "unigram"],
        default="lda",
        help="incumbent model family, fitted once on pre-window data",
    )
    replay_cmd.add_argument(
        "--canary",
        action="store_true",
        help="also fit a candidate and run the canary promotion gate "
        "(incumbent vs candidate on the same replayed windows)",
    )
    replay_cmd.add_argument(
        "--candidate-pack",
        default=None,
        metavar="PACK",
        help="corrupt the candidate's training data with this scenario pack "
        "first (e.g. 'drift' manufactures a rejectable candidate)",
    )
    replay_cmd.add_argument(
        "--candidate-seed",
        type=int,
        default=1,
        metavar="N",
        help="fit seed for the canary candidate (and the corruption seed "
        "when --candidate-pack is given)",
    )

    sub.add_parser(
        "bpmf", help="Figures 5/6: BPMF score degeneracy", parents=[shared]
    )
    sub.add_parser("silhouette", help="Figure 7: silhouette curves", parents=[shared])

    tsne = sub.add_parser(
        "tsne", help="Figures 8/9: t-SNE product projection", parents=[shared]
    )
    tsne.add_argument("--topics", type=int, default=3)

    sub.add_parser(
        "sequentiality", help="In-text binomial sequentiality test", parents=[shared]
    )
    sub.add_parser(
        "cocluster", help="Section 3.1 co-clustering baseline", parents=[shared]
    )
    sub.add_parser(
        "sales-demo", help="Section 6 sales tool walk-through", parents=[shared]
    )

    rank = sub.add_parser(
        "ranking", help="Extension: top-k ranking metrics", parents=[shared]
    )
    rank.add_argument("--k", type=int, default=5)

    serve = sub.add_parser(
        "serve",
        help="Section 6 tool as a resilient HTTP service",
        parents=[shared],
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8151, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        metavar="N",
        help="concurrent requests admitted before shedding with 429",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help="default per-request deadline budget",
    )
    serve.add_argument(
        "--quarantine",
        metavar="PATH",
        default=None,
        help="append rejected payloads to PATH as JSON lines",
    )
    serve.add_argument(
        "--slo-latency-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help="2xx answers slower than this burn the latency SLO budget",
    )
    serve.add_argument(
        "--slo-fast-window",
        type=float,
        default=300.0,
        metavar="S",
        help="fast burn-rate window in seconds",
    )
    serve.add_argument(
        "--slo-slow-window",
        type=float,
        default=3600.0,
        metavar="S",
        help="slow burn-rate window in seconds",
    )
    serve.add_argument(
        "--flight-capacity",
        type=int,
        default=64,
        metavar="N",
        help="flight-recorder slots per section (failed ring / slowest heap)",
    )
    serve.add_argument(
        "--no-request-spans",
        action="store_true",
        help="disable per-request span capture (flight records lose spans)",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="micro-batching window coalescing concurrent /recommend "
        "scoring into one batched GEMM (0 disables batching)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=16,
        metavar="N",
        help="hard cap on coalesced batch size",
    )
    serve.add_argument(
        "--topk-cache",
        type=int,
        default=1024,
        metavar="N",
        help="entries in the generation-keyed top-k result cache "
        "(0 disables caching)",
    )
    serve.add_argument(
        "--similarity",
        choices=["exact", "ann"],
        default="exact",
        help="backend answering /similar: exact cosine or LSH with "
        "exact re-ranking",
    )
    serve.add_argument(
        "--canary",
        type=int,
        default=0,
        metavar="N",
        help="replay-based canary gate on /admin/hotswap: shadow-score the "
        "candidate against the incumbent over N sliding windows of the "
        "reference slice and reject regressions with a 409 (0 disables)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="pre-fork worker processes; >1 starts a shared-nothing fleet "
        "(SO_REUSEPORT kernel load-balancing) plus a shard router",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="company shard groups (workers assigned round-robin; the "
        "router pins each company's /similar traffic to its shard)",
    )
    serve.add_argument(
        "--artifact-dir",
        default=None,
        metavar="DIR",
        help="generation-numbered artifact store workers mmap models from "
        "(fleet mode; default: a temp dir, freshly published)",
    )
    serve.add_argument(
        "--router-port",
        type=int,
        default=0,
        metavar="PORT",
        help="fleet router bind port (0 picks a free one)",
    )

    obs_cmd = sub.add_parser(
        "obs",
        help="observability utilities against a running service",
        parents=[shared],
    )
    obs_cmd.add_argument("action", choices=["top"], help="'top': live terminal dashboard")
    obs_cmd.add_argument(
        "--url",
        default="http://127.0.0.1:8151",
        help="base URL of a running `repro serve` instance",
    )
    obs_cmd.add_argument(
        "--interval", type=float, default=2.0, metavar="S", help="poll interval"
    )
    obs_cmd.add_argument(
        "--count",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: until Ctrl-C)",
    )
    obs_cmd.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen",
    )

    sub.add_parser(
        "representations", help="Extension: representation families", parents=[shared]
    )
    return parser


#: Subcommand aliases journal under their canonical name, so ``repro fig1``
#: and ``repro lstm-grid`` resume from the same checkpoint file.
_CANONICAL_COMMANDS: dict[str, str] = {"fig1": "lstm-grid"}


def _build_journal(args: argparse.Namespace) -> RunJournal | None:
    """The run journal configured by ``--checkpoint-dir`` / ``--resume``.

    One JSONL file per (canonical) command; the journal's meta line pins
    the corpus identity so a checkpoint from a different ``--companies`` /
    ``--seed`` run is discarded rather than wrongly replayed.  With
    ``--corpus-dir`` the identity is the corpus's content fingerprint (read
    from its manifest), so a rebuilt-but-identical corpus still resumes and
    a changed one invalidates the checkpoint.
    """
    if not args.checkpoint_dir:
        return None
    command = _CANONICAL_COMMANDS.get(args.command, args.command)
    if getattr(args, "corpus_dir", None):
        from repro.data.columnar import manifest_fingerprint

        meta = {"command": command, "corpus": manifest_fingerprint(args.corpus_dir)}
    else:
        meta = {"command": command, "companies": args.companies, "seed": args.seed}
    os.makedirs(args.checkpoint_dir, exist_ok=True)
    return RunJournal(
        os.path.join(args.checkpoint_dir, f"{command}.journal.jsonl"),
        meta=meta,
        resume=args.resume,
    )


def _experiment_data(args: argparse.Namespace, *, needs_universe: bool = False):
    """The command's data: a memmap-backed load or an in-memory simulation.

    ``--corpus-dir`` opens the published columnar corpus (streamed,
    bounded memory).  Commands that consume simulator ground truth
    (``needs_universe=True``) cannot run from a published corpus — the
    manifest stores no latent mixtures — and reject the flag.
    """
    if getattr(args, "corpus_dir", None):
        if needs_universe:
            raise SystemExit(
                f"repro {args.command}: --corpus-dir is not supported here — "
                "this command needs simulator ground truth, which a published "
                "corpus does not carry; rerun with --companies/--seed"
            )
        from repro.experiments import load_corpus_data

        return load_corpus_data(args.corpus_dir)
    return make_experiment_data(args.companies, seed=args.seed)


def _runtime_kwargs(args: argparse.Namespace) -> dict[str, object]:
    """The runtime / fault-tolerance flags as driver keyword arguments."""
    cache = FitCache(args.cache_dir) if args.cache_dir else None
    return {
        "n_jobs": args.jobs,
        "fit_cache": cache,
        "retries": args.retries,
        "task_timeout": args.task_timeout,
        "journal": _build_journal(args),
    }


def _cmd_table1(args: argparse.Namespace) -> None:
    data = _experiment_data(args)
    methods = None
    if args.methods:
        methods = tuple(
            name.strip() for name in args.methods.split(",") if name.strip()
        )
    try:
        results = run_perplexity_table(data, methods=methods, **_runtime_kwargs(args))
    except ValueError as exc:
        if "table1 method" in str(exc):
            raise SystemExit(f"repro table1: {exc}") from exc
        raise
    print(format_table(results))


def _cmd_corpus(args: argparse.Namespace) -> None:
    from repro.data.columnar import open_corpus, simulate_to_columnar

    if args.action == "build":
        started = time.perf_counter()
        manifest = simulate_to_columnar(
            args.dir,
            n_companies=args.companies,
            seed=args.seed,
            chunk_size=args.chunk_size,
        )
        elapsed = time.perf_counter() - started
        rate = manifest["n_companies"] / elapsed if elapsed > 0 else float("inf")
        print(f"built corpus at {args.dir}")
        print(f"  companies:   {manifest['n_companies']}")
        print(f"  tokens:      {manifest['n_tokens']}")
        print(f"  vocabulary:  {len(manifest['vocabulary'])} products")
        print(f"  fingerprint: {manifest['fingerprint']}")
        print(f"  build time:  {elapsed:.1f}s ({rate:,.0f} companies/s)")
        return
    from repro.data.columnar import MANIFEST_NAME

    corpus = open_corpus(args.dir)
    with open(os.path.join(args.dir, MANIFEST_NAME), encoding="utf-8") as handle:
        manifest = json.load(handle)
    total_bytes = sum(
        os.path.getsize(os.path.join(args.dir, spec["file"]))
        for spec in manifest["columns"].values()
    )
    print(f"corpus at {args.dir}")
    print(f"  companies:   {corpus.n_companies}")
    print(f"  tokens:      {manifest['n_tokens']}")
    print(f"  vocabulary:  {corpus.n_products} products")
    print(f"  fingerprint: {corpus.fingerprint()}")
    print(f"  on disk:     {total_bytes / 1e6:.1f} MB across "
          f"{len(manifest['columns'])} columns")


def _cmd_scenario(args: argparse.Namespace) -> None:
    from repro.scenarios import available_packs, write_scenario

    if args.action == "list":
        print(f"{'pack':<14} description")
        for name, description in available_packs().items():
            print(f"{name:<14} {description}")
        return
    if not args.dir:
        raise SystemExit("repro scenario build: the DIR argument is required")
    data = _experiment_data(args)
    started = time.perf_counter()
    result = write_scenario(
        data.corpus, args.dir, args.pack, seed=args.scenario_seed
    )
    elapsed = time.perf_counter() - started
    manifest = result.manifest
    print(f"built scenario corpus at {args.dir}")
    print(f"  pack:            {manifest.pack}")
    print(f"  scenario seed:   {manifest.seed}")
    print(f"  companies:       {result.corpus.n_companies}")
    print(f"  source corpus:   {manifest.source_fingerprint}")
    print(f"  result corpus:   {manifest.result_fingerprint}")
    print(f"  manifest digest: {manifest.digest()}")
    print(f"  build time:      {elapsed:.1f}s")
    print(f"  events:          {len(manifest.events)}")
    for kind, count in sorted(manifest.kinds().items()):
        print(f"    {kind:<18} {count}")


def _replay_model(family: str, train, *, seed: int):
    """Fit one frozen model of the requested family on ``train``."""
    if family == "lda":
        from repro.models.lda import LatentDirichletAllocation

        return LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=60, seed=seed
        ).fit(train)
    if family == "ngram":
        from repro.models.ngram import NGramModel

        return NGramModel(order=2).fit(train)
    from repro.models.unigram import UnigramModel

    return UnigramModel().fit(train)


def _print_replay_report(report) -> None:
    print(
        f"{'window':<12} {'companies':>9} {'retrieved':>9} {'correct':>8} "
        f"{'precision':>9} {'recall':>7} {'f1':>6} {'jsd':>7} {'drift':>5}"
    )
    for r in report.results:
        jsd = "     --" if r.js_divergence != r.js_divergence else f"{r.js_divergence:>7.4f}"
        precision = "      nan" if r.precision != r.precision else f"{r.precision:>9.3f}"
        f1 = "   nan" if r.f1 != r.f1 else f"{r.f1:>6.3f}"
        print(
            f"{r.window_start.isoformat():<12} {r.n_companies:>9} "
            f"{r.n_retrieved:>9} {r.n_correct:>8} {precision} "
            f"{r.recall:>7.3f} {f1} {jsd} {'yes' if r.drifted else 'no':>5}"
        )
    print(
        f"mean recall {report.mean_recall():.3f}, "
        f"mean precision {report.mean_precision():.3f}, "
        f"{report.windows_drifted}/{report.n_windows} windows drifted"
    )


def _cmd_replay(args: argparse.Namespace) -> None:
    from repro.replay import CanaryGate, ReplayHarness

    data = _experiment_data(args)
    corpus = data.corpus
    spec = SlidingWindowSpec(n_windows=args.windows)
    # Models fit on the full timeline, as serving artifacts do; the
    # harness then asks how each frozen artifact holds up window by
    # window as the traffic distribution moves.
    incumbent = _replay_model(args.model, corpus, seed=0)
    harness = ReplayHarness(
        corpus,
        spec=spec,
        threshold=args.threshold,
        journal=_build_journal(args),
    )
    report = harness.replay(incumbent, args.model)
    print(
        f"replay of frozen {args.model} over {args.windows} windows "
        f"(phi={args.threshold:g}):"
    )
    _print_replay_report(report)

    if not args.canary and not args.candidate_pack:
        return
    if args.candidate_pack:
        from repro.scenarios import build_scenario

        candidate_train = build_scenario(
            corpus, args.candidate_pack, seed=args.candidate_seed
        ).corpus
        candidate_desc = (
            f"{args.model} fitted on {args.candidate_pack!r}-corrupted data"
        )
    else:
        candidate_train = corpus
        candidate_desc = f"{args.model} refit with seed {args.candidate_seed}"
    candidate = _replay_model(args.model, candidate_train, seed=args.candidate_seed)
    gate = CanaryGate(corpus, spec=spec, threshold=args.threshold)
    verdict = gate.evaluate(incumbent, candidate)
    print(f"\ncanary: candidate is {candidate_desc}")
    _print_replay_report(verdict.candidate)
    status = "PROMOTE" if verdict.passed else "REJECT"
    print(f"\ncanary verdict: {status} ({verdict.reason})")
    print(f"  {verdict.detail}")
    for key, value in verdict.as_dict().items():
        if key in ("passed", "reason", "detail"):
            continue
        print(f"  {key}: {value}")


def _cmd_lda_sweep(args: argparse.Namespace) -> None:
    data = _experiment_data(args)
    rows = run_lda_sweep(data, n_iter=args.iterations, **_runtime_kwargs(args))
    print(f"{'input':<8} {'topics':>6} {'perplexity':>11} {'params':>7}")
    for row in rows:
        print(
            f"{row['input']:<8} {row['n_topics']:>6.0f} "
            f"{row['test_perplexity']:>11.2f} {row['n_parameters']:>7.0f}"
        )


def _cmd_lstm_grid(args: argparse.Namespace) -> None:
    data = _experiment_data(args)
    rows = run_lstm_grid(
        data, n_epochs=args.epochs, dtype=args.dtype, **_runtime_kwargs(args)
    )
    print(f"{'layers':>6} {'nodes':>6} {'perplexity':>11} {'params':>9}")
    for row in rows:
        print(
            f"{row['n_layers']:>6.0f} {row['nodes']:>6.0f} "
            f"{row['test_perplexity']:>11.2f} {row['n_parameters']:>9.0f}"
        )


def _cmd_recommend(args: argparse.Namespace) -> None:
    data = _experiment_data(args)
    curves = run_recommendation_accuracy(
        data,
        spec=SlidingWindowSpec(n_windows=args.windows),
        retrain_per_window=args.retrain,
        **_runtime_kwargs(args),
    )
    print(format_curves(curves))


def _cmd_bpmf(args: argparse.Namespace) -> None:
    data = _experiment_data(args)
    result = run_bpmf_analysis(
        data,
        fit_cache=FitCache(args.cache_dir) if args.cache_dir else None,
        retries=args.retries,
        journal=_build_journal(args),
    )
    quantiles = result["score_quantiles"]
    print("BPMF recommendation score distribution (Figure 5):")
    for key, value in quantiles.items():
        print(f"  {key:>12}: {value:.4f}")
    if "failed" in result:
        print(f"\nanalysis failed (recorded): {result['failed']}")
    print("\nThreshold sweep (Figure 6):")
    print(f"{'threshold':>9} {'precision':>9} {'recall':>7} {'f1':>7} {'retrieved':>10}")
    for row in result["threshold_rows"]:
        print(
            f"{row['threshold']:>9.2f} {row['precision']:>9.3f} "
            f"{row['recall']:>7.3f} {row['f1']:>7.3f} {row['retrieved']:>10.0f}"
        )


def _cmd_silhouette(args: argparse.Namespace) -> None:
    data = _experiment_data(args)
    rows = run_silhouette_curves(data)
    print(f"{'representation':<14} {'clusters':>8} {'silhouette':>11}")
    for row in rows:
        print(
            f"{row['representation']:<14} {row['n_clusters']:>8.0f} "
            f"{row['silhouette']:>11.3f}"
        )


def _cmd_tsne(args: argparse.Namespace) -> None:
    data = _experiment_data(args, needs_universe=True)
    result = run_tsne_projection(data, n_topics=args.topics)
    print(f"t-SNE of LDA{args.topics} product embeddings (Figures 8/9):")
    for category, (x, y) in sorted(result["coordinates"].items()):
        print(f"  {category:<26} {x:>8.2f} {y:>8.2f}")
    print(f"hardware group distance ratio: {result['hardware_ratio']:.3f} (<1 = co-located)")
    print(f"software group distance ratio: {result['software_ratio']:.3f} (<1 = co-located)")
    print(f"profile-core distance ratio:   {result['profile_core_ratio']:.3f} (<1 = co-located)")


def _cmd_sequentiality(args: argparse.Namespace) -> None:
    data = _experiment_data(args)
    reports = run_sequentiality(data)
    print(f"{'order':>5} {'significant':>11} {'distinct':>8} {'fraction':>8} {'paper':>6}")
    for order, report in reports.items():
        print(
            f"{order:>5} {report.n_significant:>11} {report.n_distinct:>8} "
            f"{report.significant_fraction:>8.2f} {PAPER_FRACTIONS[order]:>6.2f}"
        )


def _cmd_cocluster(args: argparse.Namespace) -> None:
    data = _experiment_data(args, needs_universe=True)
    result = run_cocluster_baseline(data)
    print("co-cluster summaries (rows x cols, density):")
    for summary in result["summaries"]:
        print(
            f"  cluster {summary['cluster']:.0f}: {summary['n_rows']:.0f} x "
            f"{summary['n_cols']:.0f}, density {summary['density']:.3f}"
        )
    print(f"densest cluster products: {result['densest_cluster_products']}")
    print(f"overlap with top-quartile popular products: {result['popular_overlap']:.2f}")
    print(f"row-cluster purity vs true profiles: {result['profile_purity']:.2f}")
    print(f"k-means-on-LDA-features purity:       {result['lda_feature_purity']:.2f}")


def _cmd_sales_demo(args: argparse.Namespace) -> None:
    from repro.app import FirmographicFilter, SalesRecommendationTool
    from repro.data.internal import InternalSalesDatabase
    from repro.models.lda import LatentDirichletAllocation

    data = _experiment_data(args)
    corpus = data.corpus
    lda = LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=80, seed=0
    ).fit(corpus)
    internal = InternalSalesDatabase(corpus.companies, seed=args.seed)
    tool = SalesRecommendationTool(corpus, lda.company_features(corpus), internal)
    target = corpus.companies[0]
    print(f"target: {target.name} ({target.duns}) — owns {sorted(target.categories)}")
    print("\ntop similar companies:")
    for hit in tool.similar_companies(target.duns.value, k=5):
        print(f"  {hit.name:<32} similarity {hit.similarity:.3f}")
    print("\nrecommendations (similar clients' whitespace):")
    for rec in tool.recommend_products(target.duns.value):
        print(
            f"  {rec.category:<26} strength {rec.strength:.3f} "
            f"({rec.n_supporters} supporters)"
        )
    industry_filter = FirmographicFilter(sic2=target.sic2)
    same_industry = tool.similar_companies(target.duns.value, k=3, filters=industry_filter)
    print(f"\nsame-industry matches (SIC2 {target.sic2}):")
    for hit in same_industry:
        print(f"  {hit.name:<32} similarity {hit.similarity:.3f}")


def _cmd_ranking(args: argparse.Namespace) -> None:
    from repro.models.chh import ConditionalHeavyHitters
    from repro.models.lda import LatentDirichletAllocation
    from repro.recommend.baselines import RandomRecommender
    from repro.recommend.ranking import evaluate_ranking

    data = _experiment_data(args)
    factories = {
        "LDA3": lambda: LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=80, seed=0
        ),
        "CHH": lambda: ConditionalHeavyHitters(depth=2),
        "random": lambda: RandomRecommender(),
    }
    print(f"{'model':<8} {'P@'+str(args.k):>7} {'R@'+str(args.k):>7} {'MRR':>6} {'nDCG':>6}")
    for name, factory in factories.items():
        report = evaluate_ranking(data.corpus, factory, k=args.k)
        print(
            f"{name:<8} {report.precision:>7.3f} {report.recall:>7.3f} "
            f"{report.mrr:>6.3f} {report.ndcg:>6.3f}"
        )


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.serve import ServiceConfig, ServiceHTTPServer, build_demo_service

    config = ServiceConfig(
        max_inflight=args.max_inflight,
        default_deadline_ms=args.deadline_ms,
        quarantine_path=args.quarantine,
        slo_latency_threshold_ms=args.slo_latency_ms,
        slo_fast_window_s=args.slo_fast_window,
        slo_slow_window_s=args.slo_slow_window,
        flight_capacity=args.flight_capacity,
        request_spans=not args.no_request_spans,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        topk_cache_size=args.topk_cache,
        similarity=args.similarity,
        canary_windows=args.canary,
    )
    if args.workers > 1:
        _serve_fleet(args, config)
        return
    service = build_demo_service(
        args.companies, seed=args.seed, config=config, corpus_dir=args.corpus_dir
    )
    server = ServiceHTTPServer((args.host, args.port), service)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} (Ctrl-C to stop)")
    print("endpoints: GET /healthz /readyz /metrics /slo "
          "/admin/debug /admin/profile; "
          "POST /recommend /similar /admin/hotswap")
    print(f"dashboard: repro obs top --url http://{host}:{port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    snapshot = service.metrics_snapshot()
    counters = {k: v for k, v in sorted(snapshot["counters"].items())}
    print("\nfinal counters:")
    for name, value in counters.items():
        print(f"  {name}: {value}")


def _serve_fleet(args: argparse.Namespace, config) -> None:
    """The `repro serve --workers N` path: pre-fork fleet + shard router."""
    import dataclasses
    import tempfile
    from pathlib import Path

    from repro.serve import (
        ArtifactStore,
        FleetSupervisor,
        demo_service_factory,
        publish_demo_artifacts,
    )
    from repro.serve.router import start_router

    artifact_root = args.artifact_dir or tempfile.mkdtemp(prefix="repro-artifacts-")
    store = ArtifactStore(artifact_root)
    if store.generation() is None:
        print(f"publishing demo models to {artifact_root} ...")
        publish_demo_artifacts(
            store, args.companies, seed=args.seed, corpus_dir=args.corpus_dir
        )
    state_dir = Path(artifact_root) / "fleet-state"
    worker_config = dataclasses.replace(config, reuse_port=True)
    supervisor = FleetSupervisor(
        demo_service_factory(
            store,
            args.companies,
            seed=args.seed,
            config=worker_config,
            corpus_dir=args.corpus_dir,
        ),
        n_workers=args.workers,
        shards=args.shards,
        host=args.host,
        port=args.port,
        state_dir=state_dir,
        store=store,
    )
    supervisor.start()
    router_server = None
    try:
        states = supervisor.wait_ready()
        router_server, _thread = start_router(
            state_dir, shards=args.shards, host=args.host, port=args.router_port
        )
        router_host, router_port = router_server.server_address[:2]
        print(
            f"fleet of {args.workers} workers ({args.shards} shard group(s)) "
            f"on {supervisor.fleet_url} (Ctrl-C to stop)"
        )
        for state in states:
            print(
                f"  worker {state.index}: pid {state.pid}, shard {state.shard}, "
                f"direct {state.direct_url}, model generation {state.generation}"
            )
        print(f"router on http://{router_host}:{router_port} "
              "(GET /metrics /healthz /readyz /slo /fleet; POST routed)")
        print(f"dashboard: repro obs top --url http://{router_host}:{router_port}")
        print(f"hot-swap: publish a generation under {artifact_root} "
              "(workers poll the bump file; SIGHUP forces a re-check)")
        while True:
            import time

            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        if router_server is not None:
            router_server.shutdown()
            router_server.server_close()
        supervisor.stop()
    print(f"fleet drained ({supervisor.restarts} worker restart(s) during run)")


def _cmd_obs(args: argparse.Namespace) -> None:
    from repro.obs.top import run_top

    # Only "top" exists today (argparse enforces the choices).
    code = run_top(
        args.url,
        interval=args.interval,
        count=args.count,
        clear=not args.no_clear,
    )
    if code != 0:
        raise SystemExit(code)


def _cmd_representations(args: argparse.Namespace) -> None:
    from repro.experiments import run_representation_families

    data = _experiment_data(args, needs_universe=True)
    results = run_representation_families(data)
    print(f"{'family':<8} {'silhouette':>11} {'purity':>7}")
    for name, metrics in sorted(results.items(), key=lambda kv: -kv[1]["silhouette"]):
        print(f"{name:<8} {metrics['silhouette']:>11.3f} {metrics['profile_purity']:>7.3f}")


_COMMANDS: dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": _cmd_table1,
    "corpus": _cmd_corpus,
    "scenario": _cmd_scenario,
    "replay": _cmd_replay,
    "lda-sweep": _cmd_lda_sweep,
    "lstm-grid": _cmd_lstm_grid,
    "fig1": _cmd_lstm_grid,
    "recommend": _cmd_recommend,
    "bpmf": _cmd_bpmf,
    "silhouette": _cmd_silhouette,
    "tsne": _cmd_tsne,
    "sequentiality": _cmd_sequentiality,
    "cocluster": _cmd_cocluster,
    "sales-demo": _cmd_sales_demo,
    "ranking": _cmd_ranking,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
    "representations": _cmd_representations,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro`` console script.

    Observability flags: ``--trace`` records stage/model spans and prints a
    timing report after the command's normal output; ``--profile`` adds the
    cProfile top hot functions; ``--log-level`` / ``--log-json`` configure
    the structured logger.  With all flags off the instrumented paths stay
    dormant (single flag checks).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    if args.inject_faults:
        try:
            runtime_faults.parse_faults(args.inject_faults)
        except ValueError as exc:
            parser.error(f"--inject-faults: {exc}")
    try:
        obs.configure_logging(args.log_level.upper(), json_path=args.log_json)
    except OSError as exc:
        parser.error(f"--log-json: cannot open {args.log_json!r} ({exc.strerror})")
    if args.trace or args.profile:
        obs.enable_all()
    if args.metrics_json:
        obs_metrics.enable()
    if args.profile:
        obs_profile.enable()
    previous_env = {
        name: os.environ.get(name) for name in ("REPRO_FAULTS", "REPRO_FAULTS_STATE")
    }
    temp_state_dir: str | None = None
    if args.inject_faults:
        # The env vars inherit into pool workers; the state directory makes
        # times=N firing counts atomic across processes.
        os.environ["REPRO_FAULTS"] = args.inject_faults
        if args.checkpoint_dir:
            state_dir = os.path.join(args.checkpoint_dir, "fault-state")
            os.makedirs(state_dir, exist_ok=True)
        else:
            state_dir = temp_state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        os.environ["REPRO_FAULTS_STATE"] = state_dir
    log = obs.get_logger("cli")
    log.info(
        "command started",
        extra={"obs": {"command": args.command, "companies": args.companies,
                       "seed": args.seed}},
    )
    started = time.perf_counter()
    try:
        try:
            with obs_trace.span(f"cmd.{args.command}"), obs_profile.capture(
                f"cmd.{args.command}"
            ):
                _COMMANDS[args.command](args)
        except Exception:
            log.error("command failed", exc_info=True,
                      extra={"obs": {"command": args.command}})
            raise
    finally:
        for name, value in previous_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        if temp_state_dir is not None:
            shutil.rmtree(temp_state_dir, ignore_errors=True)
    log.info(
        "command finished",
        extra={"obs": {"command": args.command,
                       "wall_s": round(time.perf_counter() - started, 3)}},
    )
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(obs_metrics.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.trace or args.profile:
        log.info("run report", extra={"obs": obs_report.render_json()})
        print()
        print(obs_report.render_text())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
