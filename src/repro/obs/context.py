"""Request-scoped observability context: ids, span capture, correlation.

Every server request runs inside a :func:`request_scope`.  The scope

* mints (or honors) a **request id** — the caller-visible correlation
  handle, echoed in the ``X-Request-Id`` response header;
* mints a **trace id** — the internal identifier of the request's span
  tree (always fresh, even when the request id was supplied inbound);
* installs an isolated :class:`~repro.obs.trace.TraceBuffer` via
  :func:`repro.obs.trace.capture`, so the request's spans form their own
  tree regardless of what concurrent requests do;
* exposes itself through a :class:`contextvars.ContextVar` so the JSON
  log formatter (:mod:`repro.obs.logging`) can stamp ``request_id`` /
  ``trace_id`` onto every line emitted while the request is in flight.

The context variable makes all of this thread- and task-safe: a
``ThreadingHTTPServer`` handler thread, a worker thread it spawns via
``contextvars.copy_context()``, and an asyncio task all see exactly the
context of their own request.
"""

from __future__ import annotations

import contextvars
import re
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Iterator

from contextlib import contextmanager

from repro.obs.trace import TraceBuffer, capture

__all__ = [
    "RequestContext",
    "REQUEST_ID_HEADER",
    "current",
    "current_request_id",
    "mint_request_id",
    "sanitize_request_id",
    "request_scope",
]

#: Canonical header carrying the request id in and out of the service.
REQUEST_ID_HEADER = "X-Request-Id"

#: Inbound ids must look like reasonable correlation tokens; anything
#: else (control characters, oversized blobs) is replaced with a minted
#: id so logs and headers stay injection-safe.
_VALID_ID = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


@dataclass
class RequestContext:
    """One request's observability identity and span capture target."""

    request_id: str
    trace_id: str
    buffer: TraceBuffer = field(default_factory=TraceBuffer)
    started: float = field(default_factory=time.time)

    def spans(self) -> list[dict]:
        """The captured span forest, JSON-encodable."""
        return self.buffer.as_dicts()


_context: contextvars.ContextVar[RequestContext | None] = contextvars.ContextVar(
    "repro_obs_request_context", default=None
)


def current() -> RequestContext | None:
    """The active request context, or None outside a request scope."""
    return _context.get()


def current_request_id() -> str | None:
    """The active request id, or None outside a request scope."""
    ctx = _context.get()
    return ctx.request_id if ctx is not None else None


def mint_request_id() -> str:
    """A fresh 16-hex-char request id."""
    return uuid.uuid4().hex[:16]


def sanitize_request_id(candidate: object) -> str | None:
    """``candidate`` if it is a usable inbound request id, else None."""
    if isinstance(candidate, str) and _VALID_ID.match(candidate):
        return candidate
    return None


@contextmanager
def request_scope(
    request_id: str | None = None,
    *,
    capture_spans: bool = True,
    clock: Callable[[], float] = time.time,
) -> Iterator[RequestContext]:
    """Run the enclosed block under a fresh request context.

    ``request_id`` (already sanitized) is honored when given, minted
    otherwise.  With ``capture_spans`` (the default) the request's spans
    are recorded into the context's isolated buffer; with it off the
    scope still provides ids for logging/headers but spans follow the
    global enable flag, for measuring telemetry overhead.
    """
    ctx = RequestContext(
        request_id=request_id if request_id is not None else mint_request_id(),
        trace_id=uuid.uuid4().hex,
        started=clock(),
    )
    token = _context.set(ctx)
    try:
        if capture_spans:
            with capture(ctx.buffer):
                yield ctx
        else:
            yield ctx
    finally:
        _context.reset(token)
