"""Named counter/gauge/histogram registry with snapshot, reset and JSON export.

The registry is the *aggregate* side of observability: while spans
(:mod:`repro.obs.trace`) record where time goes, metrics record how much
work was done — windows evaluated, candidates scored, products retrieved.

Two usage styles:

* explicit — ``get_registry().counter("recommend.hits").inc(3)`` always
  records, for code that owns its registry (the benchmark harness);
* guarded module helpers — :func:`inc`, :func:`observe`, :func:`set_gauge`
  check a global enable flag first and are safe to leave in hot paths;
  they are **disabled by default** and cost one flag check when off.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "enable",
    "disable",
    "is_enabled",
    "inc",
    "observe",
    "set_gauge",
    "snapshot",
    "reset",
]

#: Maximum raw observations a histogram retains for quantile estimates.
_HISTOGRAM_SAMPLE_CAP = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        self.value += float(amount)


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        self.value += float(amount)


class Histogram:
    """Streaming summary of observed values.

    Count, sum, min and max are exact; quantiles are computed from the
    first :data:`_HISTOGRAM_SAMPLE_CAP` retained observations.
    """

    __slots__ = ("count", "total", "min", "max", "_sample")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sample: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._sample) < _HISTOGRAM_SAMPLE_CAP:
            self._sample.append(value)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the retained sample (NaN if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._sample:
            return float("nan")
        ordered = sorted(self._sample)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def summary(self) -> dict[str, float]:
        """Count/sum/mean/min/max/median snapshot of the histogram."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": float("nan"),
                    "min": float("nan"), "max": float("nan"), "p50": float("nan")}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
        }


class MetricsRegistry:
    """A namespace of counters, gauges and histograms.

    Names are free-form dotted strings; the convention mirrors span names
    (``model.<name>.<method>.calls``, ``recommend.retrieved``).  A name is
    bound to the kind of instrument that first claimed it; asking for the
    same name as a different kind raises :class:`TypeError`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unclaimed(self, name: str, kind: dict[str, Any]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise TypeError(f"metric {name!r} already registered as another kind")

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._counters)
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._gauges)
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unclaimed(name, self._histograms)
            instrument = self._histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every registered instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every registered instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def to_json(self, *, indent: int | None = None) -> str:
        """The snapshot serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


_default = MetricsRegistry()
_enabled = False


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default


def enable() -> None:
    """Turn the guarded module-level helpers on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the guarded module-level helpers off (the default)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether the guarded helpers currently record."""
    return _enabled


def inc(name: str, amount: float = 1.0) -> None:
    """Guarded counter increment on the default registry."""
    if _enabled:
        _default.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Guarded histogram observation on the default registry."""
    if _enabled:
        _default.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Guarded gauge update on the default registry."""
    if _enabled:
        _default.gauge(name).set(value)


def snapshot() -> dict[str, Any]:
    """Snapshot of the default registry."""
    return _default.snapshot()


def reset() -> None:
    """Reset the default registry (helpers stay in their current state)."""
    _default.reset()
