"""Named counter/gauge/histogram registry with labels, snapshot and export.

The registry is the *aggregate* side of observability: while spans
(:mod:`repro.obs.trace`) record where time goes, metrics record how much
work was done — windows evaluated, candidates scored, products retrieved.

Two usage styles:

* explicit — ``get_registry().counter("recommend.hits").inc(3)`` always
  records, for code that owns its registry (the benchmark harness);
* guarded module helpers — :func:`inc`, :func:`observe`, :func:`set_gauge`
  check a global enable flag first and are safe to leave in hot paths;
  they are **disabled by default** and cost one flag check when off.

Labels
------
Serving metrics carry bounded-cardinality labels (``endpoint``, ``tier``,
``outcome``)::

    registry.counter("serve.requests", {"endpoint": "/recommend", "outcome": "ok"}).inc()

A ``(name, labels)`` pair identifies one *series* inside the ``name``
family.  Distinct label sets per family are capped (default 64): past the
cap new label sets collapse into a single overflow series whose label
values are all ``__overflow__``, so a misbehaving caller can degrade
resolution but never memory.  Snapshots render labeled series as
``name{key="value",...}`` keys.

Thread safety
-------------
Every instrument guards its state with its own lock and the registry
guards series creation, so concurrent serve threads never lose
increments.  Histograms keep exact count/sum/min/max forever and bound
memory by reservoir-sampling retained observations past a cap.
"""

from __future__ import annotations

import json
import random
import threading
from bisect import bisect_left
from typing import Any, Iterator, Mapping, NamedTuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SeriesView",
    "series_key",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "get_registry",
    "enable",
    "disable",
    "is_enabled",
    "inc",
    "observe",
    "set_gauge",
    "snapshot",
    "merge_snapshots",
    "reset",
]

#: Maximum raw observations a histogram retains for quantile estimates;
#: past this the retained set is a uniform reservoir sample of the full
#: stream (count/sum/min/max stay exact).
_HISTOGRAM_SAMPLE_CAP = 4096

#: Default distinct label sets per metric family before overflow folding.
_DEFAULT_MAX_SERIES = 64

#: Latency bucket bounds (milliseconds) used by the serving histograms.
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Label values of the per-family overflow series.
OVERFLOW_LABEL_VALUE = "__overflow__"


def series_key(name: str, labels: Mapping[str, str] | None = None) -> str:
    """The canonical snapshot key of a series: ``name{k="v",...}``.

    Labels are sorted by key; an unlabeled series is keyed by its bare
    name.  This is also the identity used for cardinality accounting.
    """
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total (thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        amount = float(amount)
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value that can move in either direction (thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        value = float(value)
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        amount = float(amount)
        with self._lock:
            self.value += amount


class Exemplar(NamedTuple):
    """A sampled observation attached to a histogram bucket."""

    labels: dict[str, str]
    value: float
    ts: float


class Histogram:
    """Streaming summary of observed values (thread-safe).

    Count, sum, min and max are exact over the full stream; quantiles are
    estimated from a uniform reservoir sample of up to
    :data:`_HISTOGRAM_SAMPLE_CAP` observations.  With ``buckets`` set the
    histogram additionally tracks Prometheus-style cumulative bucket
    counts (an implicit ``+Inf`` bucket is always appended) and can attach
    an exemplar — e.g. a ``request_id`` — to the bucket each observation
    lands in, so a scrape can name a concrete slow request per latency
    band.
    """

    __slots__ = (
        "count", "total", "min", "max", "buckets",
        "_bucket_counts", "_exemplars", "_sample", "_rng", "_lock",
    )

    def __init__(
        self,
        buckets: tuple[float, ...] | None = None,
        *,
        sample_seed: int = 0,
    ) -> None:
        if buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            if list(bounds) != sorted(set(bounds)):
                raise ValueError("buckets must be strictly increasing")
            self.buckets = bounds
            # One slot per finite bound plus the +Inf catch-all.
            self._bucket_counts = [0] * (len(bounds) + 1)
            self._exemplars: list[Exemplar | None] = [None] * (len(bounds) + 1)
        else:
            self.buckets = None
            self._bucket_counts = []
            self._exemplars = []
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sample: list[float] = []
        self._rng = random.Random(sample_seed)
        self._lock = threading.Lock()

    def observe(
        self,
        value: float,
        *,
        exemplar: Mapping[str, str] | None = None,
        ts: float = 0.0,
    ) -> None:
        """Record one observation, optionally tagged with an exemplar."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._sample) < _HISTOGRAM_SAMPLE_CAP:
                self._sample.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < _HISTOGRAM_SAMPLE_CAP:
                    self._sample[slot] = value
            if self.buckets is not None:
                index = bisect_left(self.buckets, value)
                self._bucket_counts[index] += 1
                if exemplar is not None:
                    self._exemplars[index] = Exemplar(dict(exemplar), value, float(ts))

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the retained sample (NaN if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            sample = list(self._sample)
        if not sample:
            return float("nan")
        ordered = sorted(sample)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` rows, ``+Inf`` last.

        Empty when the histogram was created without buckets.
        """
        if self.buckets is None:
            return []
        with self._lock:
            counts = list(self._bucket_counts)
        rows: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets + (float("inf"),), counts):
            running += n
            rows.append((bound, running))
        return rows

    def exemplars(self) -> list[tuple[float, Exemplar]]:
        """``(le, exemplar)`` pairs for buckets that have one."""
        if self.buckets is None:
            return []
        with self._lock:
            stored = list(self._exemplars)
        bounds = self.buckets + (float("inf"),)
        return [(bounds[i], ex) for i, ex in enumerate(stored) if ex is not None]

    def summary(self) -> dict[str, float]:
        """Count/sum/mean/min/max/median/tail snapshot of the histogram."""
        with self._lock:
            count, total = self.count, self.total
            low, high = self.min, self.max
        if count == 0:
            nan = float("nan")
            return {"count": 0, "sum": 0.0, "mean": nan,
                    "min": nan, "max": nan, "p50": nan, "p90": nan, "p99": nan}
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": low,
            "max": high,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class SeriesView(NamedTuple):
    """One registered series, as exposed to exporters."""

    kind: str  # counter | gauge | histogram
    name: str  # family name (dotted)
    labels: dict[str, str]
    instrument: Counter | Gauge | Histogram


class MetricsRegistry:
    """A namespace of counters, gauges and histograms.

    Names are free-form dotted strings; the convention mirrors span names
    (``model.<name>.<method>.calls``, ``serve.requests``).  A name is
    bound to the kind of instrument that first claimed it; asking for the
    same name as a different kind raises :class:`TypeError`.  All methods
    are thread-safe.
    """

    def __init__(self, *, max_series_per_family: int = _DEFAULT_MAX_SERIES) -> None:
        if max_series_per_family < 1:
            raise ValueError("max_series_per_family must be >= 1")
        self._max_series = max_series_per_family
        self._lock = threading.Lock()
        self._kinds: dict[str, str] = {}  # family name -> kind
        self._series: dict[str, SeriesView] = {}  # series key -> view
        self._family_counts: dict[str, int] = {}
        self._overflowed = 0

    # ------------------------------------------------------------------
    def _resolve(
        self,
        kind: str,
        name: str,
        labels: Mapping[str, str] | None,
        factory,
    ):
        labels = {str(k): str(v) for k, v in labels.items()} if labels else {}
        key = series_key(name, labels)
        view = self._series.get(key)
        if view is not None:
            if view.kind != kind:
                raise TypeError(f"metric {name!r} already registered as {view.kind}")
            return view.instrument
        with self._lock:
            view = self._series.get(key)
            if view is not None:
                if view.kind != kind:
                    raise TypeError(f"metric {name!r} already registered as {view.kind}")
                return view.instrument
            claimed = self._kinds.get(name)
            if claimed is not None and claimed != kind:
                raise TypeError(f"metric {name!r} already registered as another kind")
            if labels and self._family_counts.get(name, 0) >= self._max_series:
                # Cardinality cap: fold into the family's overflow series.
                self._overflowed += 1
                labels = {k: OVERFLOW_LABEL_VALUE for k in labels}
                key = series_key(name, labels)
                view = self._series.get(key)
                if view is not None:
                    return view.instrument
            self._kinds[name] = kind
            instrument = factory()
            self._series[key] = SeriesView(kind, name, labels, instrument)
            self._family_counts[name] = self._family_counts.get(name, 0) + 1
            return instrument

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        """The counter series ``(name, labels)``, created on first use."""
        return self._resolve("counter", name, labels, Counter)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        """The gauge series ``(name, labels)``, created on first use."""
        return self._resolve("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        *,
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """The histogram series ``(name, labels)``, created on first use.

        ``buckets`` applies on first creation of a series; later calls
        return the existing series regardless of the argument.
        """
        return self._resolve("histogram", name, labels, lambda: Histogram(buckets))

    # ------------------------------------------------------------------
    def series(self) -> Iterator[SeriesView]:
        """Every registered series, family-name then label order."""
        with self._lock:
            views = list(self._series.items())
        for _key, view in sorted(views, key=lambda kv: (kv[1].name, kv[0])):
            yield view

    @property
    def overflowed_series(self) -> int:
        """Label sets folded into overflow series since creation."""
        with self._lock:
            return self._overflowed

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every registered instrument.

        Labeled series appear under ``name{key="value",...}`` keys.
        """
        with self._lock:
            views = sorted(self._series.items())
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for key, view in views:
            if view.kind == "counter":
                counters[key] = view.instrument.value
            elif view.kind == "gauge":
                gauges[key] = view.instrument.value
            else:
                histograms[key] = view.instrument.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        """Drop every registered instrument."""
        with self._lock:
            self._kinds.clear()
            self._series.clear()
            self._family_counts.clear()
            self._overflowed = 0

    def to_json(self, *, indent: int | None = None) -> str:
        """The snapshot serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


_default = MetricsRegistry()
_enabled = False


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default


def enable() -> None:
    """Turn the guarded module-level helpers on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the guarded module-level helpers off (the default)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether the guarded helpers currently record."""
    return _enabled


def inc(
    name: str, amount: float = 1.0, labels: Mapping[str, str] | None = None
) -> None:
    """Guarded counter increment on the default registry."""
    if _enabled:
        _default.counter(name, labels).inc(amount)


def observe(
    name: str, value: float, labels: Mapping[str, str] | None = None
) -> None:
    """Guarded histogram observation on the default registry."""
    if _enabled:
        _default.histogram(name, labels).observe(value)


def set_gauge(
    name: str, value: float, labels: Mapping[str, str] | None = None
) -> None:
    """Guarded gauge update on the default registry."""
    if _enabled:
        _default.gauge(name, labels).set(value)


def snapshot() -> dict[str, Any]:
    """Snapshot of the default registry."""
    return _default.snapshot()


#: Gauge families where a fleet-wide view wants the worst worker, not the
#: sum (summing breaker-state enum values would be meaningless).
_MERGE_MAX_GAUGES = frozenset({"serve.breaker.state"})


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-worker metric snapshots into one fleet-level snapshot.

    The scrape aggregation of the fleet router and ``repro obs top``:

    * **counters** are summed per series key — totals across the fleet;
    * **gauges** are summed (in-flight, occupancy) except families in
      :data:`_MERGE_MAX_GAUGES`, where the max (worst worker) is kept;
    * **histograms** merge exactly for ``count``/``sum``/``mean``/``min``/
      ``max``; quantiles cannot be merged exactly from summaries, so the
      fleet ``p50``/``p90``/``p99`` are the **max across workers** — a
      conservative upper bound (the fleet p99 is never better than its
      worst worker's).

    Input snapshots missing a section are treated as empty; the result
    carries ``workers`` (how many snapshots merged).
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for snap in snapshots:
        for key, value in (snap.get("counters") or {}).items():
            counters[key] = counters.get(key, 0.0) + float(value)
        for key, value in (snap.get("gauges") or {}).items():
            family = key.partition("{")[0]
            if family in _MERGE_MAX_GAUGES:
                gauges[key] = max(gauges.get(key, float("-inf")), float(value))
            else:
                gauges[key] = gauges.get(key, 0.0) + float(value)
        for key, summary in (snap.get("histograms") or {}).items():
            if not isinstance(summary, dict) or not summary.get("count"):
                continue
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = dict(summary)
                continue
            merged["count"] += summary["count"]
            merged["sum"] += summary["sum"]
            merged["mean"] = merged["sum"] / merged["count"]
            for stat, op in (("min", min), ("max", max), ("p50", max),
                             ("p90", max), ("p99", max)):
                if stat in merged and stat in summary:
                    merged[stat] = op(merged[stat], summary[stat])
    return {
        "workers": len(snapshots),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def reset() -> None:
    """Reset the default registry (helpers stay in their current state)."""
    _default.reset()
