"""SLO objectives evaluated over multi-window burn rates.

An SLO states "at least ``target`` of requests are *good* over the
compliance period".  The error budget is ``1 - target``; the **burn
rate** of a window is how many times faster than budget-neutral the
service is consuming it::

    burn = bad_fraction_in_window / (1 - target)

Burn rate 1.0 exactly exhausts the budget over the period; 14.4 burns a
30-day budget in 50 hours — the classic page threshold.  Alerting on a
single window is either noisy (short window) or slow to clear (long
window), so this module implements the standard **multi-window rule**: an
objective alerts only while *both* its fast window (default 5 min,
catches sudden bursts) and its slow window (default 1 h, proves the burst
is sustained and makes the alert reset quickly once the problem stops)
exceed the burn threshold.

Three objectives cover the serving stack (see
:class:`repro.serve.service.RecommendationService`):

* ``availability`` — request not shed / not internally failed;
* ``latency`` — request answered under the latency threshold;
* ``quality`` — request answered by the primary model tier (degradation
  down the ladder burns this budget *before* users see wrong answers).

Counts live in fixed-resolution ring buffers, so memory is bounded by
``window / resolution`` regardless of traffic, and the clock is
injectable so tests (and the load harness) can compress hours into
milliseconds.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = ["Objective", "WindowCounts", "BurnRate", "SLOMonitor"]


@dataclass(frozen=True)
class Objective:
    """One service-level objective: a named good/bad classification."""

    name: str
    #: Target good fraction over the compliance period, e.g. 0.99.
    target: float
    #: Human-readable definition of a good event (shown on /slo).
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")

    @property
    def budget(self) -> float:
        """The error budget: the tolerable bad fraction."""
        return 1.0 - self.target


class WindowCounts:
    """Good/bad totals over a sliding window, in a fixed ring of buckets.

    The window is divided into ``n_buckets`` equal slices; events land in
    the slice covering the current time and slices older than the window
    are zeroed lazily as the clock advances.  Totals are therefore exact
    to within one bucket's width, with O(n_buckets) memory forever.
    """

    __slots__ = ("window_s", "_bucket_s", "_good", "_bad", "_stamps", "_clock", "_lock")

    def __init__(
        self,
        window_s: float,
        *,
        n_buckets: int = 60,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        self.window_s = float(window_s)
        self._bucket_s = self.window_s / n_buckets
        self._good = [0] * n_buckets
        self._bad = [0] * n_buckets
        self._stamps = [-1] * n_buckets  # epoch index each slot last served
        self._clock = clock
        self._lock = threading.Lock()

    def _slot(self, now: float) -> int:
        epoch = int(now / self._bucket_s)
        index = epoch % len(self._good)
        if self._stamps[index] != epoch:
            self._good[index] = 0
            self._bad[index] = 0
            self._stamps[index] = epoch
        return index

    def record(self, good: bool) -> None:
        """Count one event at the current time."""
        with self._lock:
            index = self._slot(self._clock())
            if good:
                self._good[index] += 1
            else:
                self._bad[index] += 1

    def totals(self) -> tuple[int, int]:
        """``(good, bad)`` totals over the live window."""
        with self._lock:
            now = self._clock()
            current_epoch = int(now / self._bucket_s)
            oldest = current_epoch - len(self._good) + 1
            good = bad = 0
            for i in range(len(self._good)):
                if oldest <= self._stamps[i] <= current_epoch:
                    good += self._good[i]
                    bad += self._bad[i]
            return good, bad


@dataclass(frozen=True)
class BurnRate:
    """Burn-rate evaluation of one objective over one window."""

    window_s: float
    good: int
    bad: int
    bad_fraction: float
    burn_rate: float

    def as_dict(self) -> dict[str, Any]:
        """JSON-encodable representation (as served on ``/slo``)."""
        return {
            "window_s": self.window_s,
            "good": self.good,
            "bad": self.bad,
            "bad_fraction": round(self.bad_fraction, 6),
            "burn_rate": round(self.burn_rate, 4),
        }


class SLOMonitor:
    """Multi-window burn-rate tracker for a set of objectives.

    Parameters
    ----------
    objectives:
        The SLOs to track.
    fast_window_s / slow_window_s:
        The multi-window pair (defaults: 5 min and 1 h).
    burn_threshold:
        Both windows must burn at or above this rate to alert (14.4 —
        the "30-day budget gone in 50 h" page threshold).
    clock:
        Monotonic seconds source, injectable for tests.
    """

    def __init__(
        self,
        objectives: list[Objective],
        *,
        fast_window_s: float = 300.0,
        slow_window_s: float = 3600.0,
        burn_threshold: float = 14.4,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not objectives:
            raise ValueError("at least one objective is required")
        if fast_window_s >= slow_window_s:
            raise ValueError("fast window must be shorter than the slow window")
        if burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.objectives = {o.name: o for o in objectives}
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.burn_threshold = float(burn_threshold)
        self._clock = clock
        self._windows: dict[str, dict[str, WindowCounts]] = {
            o.name: {
                "fast": WindowCounts(fast_window_s, clock=clock),
                "slow": WindowCounts(slow_window_s, clock=clock),
            }
            for o in objectives
        }

    def record(self, outcomes: Mapping[str, bool]) -> None:
        """Record one request: ``{objective_name: good}`` per objective.

        Objectives absent from ``outcomes`` are not counted for this
        request (e.g. a shed request has no latency measurement).
        """
        for name, good in outcomes.items():
            windows = self._windows.get(name)
            if windows is None:
                raise KeyError(f"unknown objective {name!r}")
            windows["fast"].record(bool(good))
            windows["slow"].record(bool(good))

    def _evaluate_window(self, objective: Objective, counts: WindowCounts) -> BurnRate:
        good, bad = counts.totals()
        total = good + bad
        bad_fraction = (bad / total) if total else 0.0
        return BurnRate(
            window_s=counts.window_s,
            good=good,
            bad=bad,
            bad_fraction=bad_fraction,
            burn_rate=bad_fraction / objective.budget,
        )

    def evaluate(self) -> dict[str, Any]:
        """Burn rates, alert states and budget math for every objective."""
        report: dict[str, Any] = {
            "burn_threshold": self.burn_threshold,
            "windows": {"fast_s": self.fast_window_s, "slow_s": self.slow_window_s},
            "objectives": {},
            "alerts": [],
        }
        for name, objective in self.objectives.items():
            fast = self._evaluate_window(objective, self._windows[name]["fast"])
            slow = self._evaluate_window(objective, self._windows[name]["slow"])
            alerting = (
                fast.burn_rate >= self.burn_threshold
                and slow.burn_rate >= self.burn_threshold
            )
            report["objectives"][name] = {
                "target": objective.target,
                "budget": round(objective.budget, 6),
                "description": objective.description,
                "fast": fast.as_dict(),
                "slow": slow.as_dict(),
                "alerting": alerting,
            }
            if alerting:
                report["alerts"].append(name)
        return report

    def alerting(self) -> list[str]:
        """Names of objectives currently in the alerting state."""
        return self.evaluate()["alerts"]
