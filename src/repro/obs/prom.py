"""Prometheus text exposition (and a strict parser) for the metrics registry.

:func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry` into the
Prometheus text format (version 0.0.4) any scraper understands; with
``openmetrics=True`` it produces OpenMetrics 1.0 instead, which carries
per-bucket **exemplars** (the ``request_id`` of a concrete request that
landed in that latency band) and the terminating ``# EOF``.

Naming: dotted registry families map to Prometheus names by replacing
every non-``[a-zA-Z0-9_:]`` character with ``_`` (``serve.latency.ms`` →
``serve_latency_ms``); counter samples get the conventional ``_total``
suffix.  Bucketed histograms render as ``histogram`` families
(``_bucket``/``_sum``/``_count``); bucketless histograms render as
``summary`` families with ``quantile`` series from the reservoir sample.

:func:`parse` is the strict validating parser the CI scrape check and the
tests run over the exposition: it rejects malformed lines, samples without
a preceding ``# TYPE``, non-cumulative or ``+Inf``-less histograms,
``_count``/``+Inf`` mismatches and duplicate series — close enough to the
real scraper's behaviour that passing it means a real Prometheus can
ingest the endpoint.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "CONTENT_TYPE_TEXT",
    "CONTENT_TYPE_OPENMETRICS",
    "prom_name",
    "render",
    "parse",
    "ParseError",
]

#: Content type of the Prometheus text format (version 0.0.4).
CONTENT_TYPE_TEXT = "text/plain; version=0.0.4; charset=utf-8"

#: Content type of OpenMetrics 1.0 (the exemplar-carrying format).
CONTENT_TYPE_OPENMETRICS = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")

#: Summary quantiles rendered for bucketless histograms.
_SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


def prom_name(family: str) -> str:
    """The dotted registry family name as a valid Prometheus name."""
    name = _NAME_FIX.sub("_", family)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_le(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return f"{bound:.1f}"
    return format(bound, "g")


def _labels_text(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(k, labels[k]) for k in sorted(labels)] + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{prom_name(k)}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def render(registry: MetricsRegistry, *, openmetrics: bool = False) -> str:
    """The registry in Prometheus (or OpenMetrics) text exposition format."""
    # Group series by family so each family gets exactly one TYPE header.
    families: dict[str, list] = {}
    kinds: dict[str, str] = {}
    for view in registry.series():
        families.setdefault(view.name, []).append(view)
        kinds[view.name] = view.kind
    lines: list[str] = []
    for family in sorted(families):
        kind = kinds[family]
        base = prom_name(family)
        views = families[family]
        if kind == "counter":
            type_name = base if openmetrics else base + "_total"
            lines.append(f"# HELP {type_name} Counter {family} from the repro metrics registry.")
            lines.append(f"# TYPE {type_name} counter")
            for view in views:
                lines.append(
                    f"{base}_total{_labels_text(view.labels)} "
                    f"{_fmt_value(view.instrument.value)}"
                )
        elif kind == "gauge":
            lines.append(f"# HELP {base} Gauge {family} from the repro metrics registry.")
            lines.append(f"# TYPE {base} gauge")
            for view in views:
                lines.append(
                    f"{base}{_labels_text(view.labels)} {_fmt_value(view.instrument.value)}"
                )
        else:
            bucketed = any(view.instrument.buckets is not None for view in views)
            family_type = "histogram" if bucketed else "summary"
            lines.append(f"# HELP {base} Histogram {family} from the repro metrics registry.")
            lines.append(f"# TYPE {base} {family_type}")
            for view in views:
                hist: Histogram = view.instrument
                if bucketed:
                    exemplars = dict(hist.exemplars()) if openmetrics else {}
                    for bound, cumulative in hist.cumulative_buckets():
                        line = (
                            f"{base}_bucket"
                            f"{_labels_text(view.labels, (('le', _fmt_le(bound)),))} "
                            f"{cumulative}"
                        )
                        exemplar = exemplars.get(bound)
                        if exemplar is not None:
                            ex_labels = ",".join(
                                f'{prom_name(k)}="{_escape(v)}"'
                                for k, v in sorted(exemplar.labels.items())
                            )
                            line += (
                                f" # {{{ex_labels}}} {_fmt_value(exemplar.value)}"
                                f" {_fmt_value(exemplar.ts)}"
                            )
                        lines.append(line)
                else:
                    for q in _SUMMARY_QUANTILES:
                        lines.append(
                            f"{base}{_labels_text(view.labels, (('quantile', format(q, 'g')),))} "
                            f"{_fmt_value(hist.quantile(q))}"
                        )
                summary = hist.summary()
                lines.append(
                    f"{base}_sum{_labels_text(view.labels)} {_fmt_value(summary['sum'])}"
                )
                lines.append(
                    f"{base}_count{_labels_text(view.labels)} {int(summary['count'])}"
                )
    if openmetrics:
        lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Strict parsing / validation
# ----------------------------------------------------------------------
class ParseError(ValueError):
    """The exposition violated the Prometheus text format."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ #]+)"
    r"(?: (?P<ts>[0-9.eE+-]+))?"
    r"(?P<exemplar> # \{[^}]*\} [^ ]+(?: [^ ]+)?)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}

#: Sample-name suffixes each family type may emit.
_TYPE_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count"),
    "summary": ("", "_sum", "_count"),
    "untyped": ("",),
}


def _parse_value(raw: str, lineno: int) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    try:
        return float(raw)
    except ValueError:
        raise ParseError(lineno, f"unparseable sample value {raw!r}")


def _family_of(name: str, types: dict[str, str]) -> tuple[str, str] | None:
    """Match a sample name to its declared family and suffix."""
    for family, kind in types.items():
        for suffix in _TYPE_SUFFIXES[kind]:
            if name == family + suffix:
                return family, suffix
    return None


def parse(text: str, *, require_labels_prefix: str | None = None) -> dict[str, Any]:
    """Strictly parse a Prometheus/OpenMetrics text exposition.

    Returns ``{"families": {name: {"type": ..., "samples": [...]}}}``
    where each sample is ``{"name", "labels", "value", "exemplar"}``.

    Raises :class:`ParseError` on any violation: malformed lines, samples
    without a preceding ``# TYPE``, duplicate series, counters without
    ``_total``, histograms missing ``+Inf`` / ``_sum`` / ``_count``,
    non-monotone bucket counts, or ``_count`` != the ``+Inf`` bucket.

    ``require_labels_prefix``: when given, every sample of a family whose
    name starts with the prefix must carry at least one label other than
    ``le`` / ``quantile`` — the CI guard that no ``serve.*`` metric ships
    unlabeled.
    """
    types: dict[str, str] = {}
    families: dict[str, dict[str, Any]] = {}
    seen_series: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 2 and parts[1] == "EOF" and line == "# EOF":
                continue
            if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                raise ParseError(lineno, f"malformed comment line {line!r}")
            _, keyword, name, rest = parts
            if not _NAME_OK.match(name):
                raise ParseError(lineno, f"invalid metric name {name!r}")
            if keyword == "TYPE":
                if rest not in _VALID_TYPES:
                    raise ParseError(lineno, f"unknown metric type {rest!r}")
                # Text format declares counters as `<family>_total`;
                # OpenMetrics declares the bare family. Accept both by
                # stripping the suffix for counters.
                family = name
                if rest == "counter" and family.endswith("_total"):
                    family = family[: -len("_total")]
                if family in types:
                    raise ParseError(lineno, f"duplicate TYPE for {family!r}")
                types[family] = rest
                families[family] = {"type": rest, "samples": []}
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ParseError(lineno, f"malformed sample line {line!r}")
        name = match.group("name")
        resolved = _family_of(name, types)
        if resolved is None:
            raise ParseError(lineno, f"sample {name!r} has no preceding # TYPE")
        family, _suffix = resolved
        labels_raw = match.group("labels") or ""
        labels: dict[str, str] = {}
        position = 0
        while position < len(labels_raw):
            label_match = _LABEL_RE.match(labels_raw, position)
            if label_match is None:
                raise ParseError(lineno, f"malformed labels {labels_raw!r}")
            key, value = label_match.group(1), label_match.group(2)
            if key in labels:
                raise ParseError(lineno, f"duplicate label {key!r}")
            labels[key] = value.replace('\\"', '"').replace("\\n", "\n").replace(
                "\\\\", "\\"
            )
            position = label_match.end()
            if position < len(labels_raw):
                if labels_raw[position] != ",":
                    raise ParseError(lineno, f"malformed labels {labels_raw!r}")
                position += 1
        series_id = (name, tuple(sorted(labels.items())))
        if series_id in seen_series:
            raise ParseError(lineno, f"duplicate series {name}{labels!r}")
        seen_series.add(series_id)
        value = _parse_value(match.group("value"), lineno)
        exemplar_raw = match.group("exemplar")
        exemplar = None
        if exemplar_raw:
            ex_labels = dict(
                (m.group(1), m.group(2)) for m in _LABEL_RE.finditer(exemplar_raw)
            )
            exemplar = {"labels": ex_labels}
        if require_labels_prefix and family.startswith(require_labels_prefix):
            meaningful = [k for k in labels if k not in ("le", "quantile")]
            if not meaningful:
                raise ParseError(
                    lineno,
                    f"series {name!r} matches prefix {require_labels_prefix!r} "
                    "but carries no labels",
                )
        families[family]["samples"].append(
            {"name": name, "labels": labels, "value": value, "exemplar": exemplar}
        )

    _validate_histograms(types, families)
    return {"families": families}


def _validate_histograms(
    types: dict[str, str], families: dict[str, dict[str, Any]]
) -> None:
    for family, kind in types.items():
        if kind != "histogram":
            continue
        groups: dict[tuple, dict[str, Any]] = {}
        for sample in families[family]["samples"]:
            base_labels = tuple(
                sorted((k, v) for k, v in sample["labels"].items() if k != "le")
            )
            group = groups.setdefault(
                base_labels, {"buckets": [], "sum": None, "count": None}
            )
            if sample["name"].endswith("_bucket"):
                le = sample["labels"].get("le")
                if le is None:
                    raise ParseError(0, f"{family}: bucket sample without le label")
                group["buckets"].append((_parse_value(le, 0), sample["value"]))
            elif sample["name"].endswith("_sum"):
                group["sum"] = sample["value"]
            elif sample["name"].endswith("_count"):
                group["count"] = sample["value"]
        for base_labels, group in groups.items():
            buckets = sorted(group["buckets"])
            if not buckets or not math.isinf(buckets[-1][0]):
                raise ParseError(
                    0, f"{family}{dict(base_labels)}: histogram lacks a +Inf bucket"
                )
            running = -1.0
            for _le, cumulative in buckets:
                if cumulative < running:
                    raise ParseError(
                        0, f"{family}{dict(base_labels)}: bucket counts not cumulative"
                    )
                running = cumulative
            if group["sum"] is None or group["count"] is None:
                raise ParseError(
                    0, f"{family}{dict(base_labels)}: missing _sum or _count"
                )
            if group["count"] != buckets[-1][1]:
                raise ParseError(
                    0,
                    f"{family}{dict(base_labels)}: _count {group['count']} != "
                    f"+Inf bucket {buckets[-1][1]}",
                )
