"""Render the recorded trace, metrics and profiles as text or JSON.

The text renderer produces the fixed-width "timing report" the CLI prints
after a ``--trace`` run: an indented span tree with call counts and
wall/CPU seconds, a metrics table, and (with ``--profile``) the hottest
functions per capture.  The JSON renderer produces the same content as a
plain dict for machine consumers (the benchmark harness's artifact files).
"""

from __future__ import annotations

from typing import Any

from repro.obs import metrics as _metrics
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.obs.profile import ProfileCapture
from repro.obs.trace import Span

__all__ = [
    "format_span_tree",
    "format_metrics",
    "format_profiles",
    "render_text",
    "render_json",
    "timing_report",
]


def format_span_tree(spans: list[Span], *, indent: int = 2) -> str:
    """Fixed-width rendering of a span forest.

    One line per span: indented name, merged call count, accumulated wall
    and CPU seconds, followed by any span counters in brackets.
    """
    lines = [f"{'span':<52} {'calls':>7} {'wall s':>10} {'cpu s':>10}"]

    def emit(node: Span, depth: int) -> None:
        label = " " * (indent * depth) + node.name
        line = f"{label:<52} {node.n_calls:>7} {node.wall:>10.3f} {node.cpu:>10.3f}"
        if node.counters:
            extras = " ".join(
                f"{key}={value:g}" for key, value in sorted(node.counters.items())
            )
            line += f"  [{extras}]"
        lines.append(line)
        for child in node.children:
            emit(child, depth + 1)

    for root in spans:
        emit(root, 0)
    return "\n".join(lines)


def format_metrics(snapshot: dict[str, Any]) -> str:
    """Fixed-width rendering of a metrics snapshot (empty string if bare)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters or gauges:
        lines.append(f"{'metric':<52} {'value':>14}")
        for name, value in counters.items():
            lines.append(f"{name:<52} {value:>14g}")
        for name, value in gauges.items():
            lines.append(f"{name:<52} {value:>14g}")
    if histograms:
        lines.append(
            f"{'histogram':<40} {'count':>7} {'mean':>10} {'min':>10} "
            f"{'p50':>10} {'max':>10}"
        )
        for name, stats in histograms.items():
            lines.append(
                f"{name:<40} {stats['count']:>7} {stats['mean']:>10.4g} "
                f"{stats['min']:>10.4g} {stats['p50']:>10.4g} {stats['max']:>10.4g}"
            )
    return "\n".join(lines)


def format_profiles(profiles: list[ProfileCapture]) -> str:
    """Fixed-width rendering of profile captures (hottest first)."""
    lines: list[str] = []
    for capture in profiles:
        lines.append(f"profile [{capture.label}] — top {len(capture.top)} by cumulative time")
        lines.append(f"  {'cum s':>9} {'tot s':>9} {'calls':>9}  location")
        for row in capture.top:
            lines.append(
                f"  {row.cumulative_s:>9.3f} {row.total_s:>9.3f} "
                f"{row.n_calls:>9}  {row.location}"
            )
    return "\n".join(lines)


def render_text(
    spans: list[Span] | None = None,
    metrics_snapshot: dict[str, Any] | None = None,
    profiles: list[ProfileCapture] | None = None,
) -> str:
    """The full timing report as fixed-width text.

    Arguments default to the global trace roots, default-registry snapshot
    and recorded profile captures; pass explicit values to render other
    sources.  Sections with nothing to show are omitted.
    """
    spans = _trace.roots() if spans is None else spans
    if metrics_snapshot is None:
        metrics_snapshot = _metrics.snapshot()
    profiles = _profile.captures() if profiles is None else profiles
    sections: list[str] = []
    if spans:
        sections.append("== timing report ==\n" + format_span_tree(spans))
    metrics_text = format_metrics(metrics_snapshot)
    if metrics_text:
        sections.append("== metrics ==\n" + metrics_text)
    if profiles:
        sections.append("== profiles ==\n" + format_profiles(profiles))
    if not sections:
        return "== timing report ==\n(no spans recorded; run with tracing enabled)"
    return "\n\n".join(sections)


def render_json(
    spans: list[Span] | None = None,
    metrics_snapshot: dict[str, Any] | None = None,
    profiles: list[ProfileCapture] | None = None,
) -> dict[str, Any]:
    """The same report content as a JSON-encodable dict."""
    spans = _trace.roots() if spans is None else spans
    if metrics_snapshot is None:
        metrics_snapshot = _metrics.snapshot()
    profiles = _profile.captures() if profiles is None else profiles
    return {
        "trace": [root.as_dict() for root in spans],
        "metrics": metrics_snapshot,
        "profiles": [capture.as_dict() for capture in profiles],
    }


def timing_report() -> str:
    """Convenience: :func:`render_text` over the global observability state."""
    return render_text()
