"""Structured logging setup: plain-text console plus JSON-lines file output.

All library logging hangs off the ``repro`` logger hierarchy.  Nothing is
emitted until :func:`configure` is called (normally once, by the CLI from
``--log-level`` / ``--log-json``); libraries embedding :mod:`repro` can call
it themselves or attach their own handlers.

Structured payloads ride on the standard :mod:`logging` ``extra``
mechanism under the ``obs`` key::

    get_logger("cli").info("command finished", extra={"obs": {"wall_s": 1.2}})

The plain-text handler renders only the message; the JSON-lines handler
merges the ``obs`` dict into the record object, one JSON document per line.
"""

from __future__ import annotations

import json
import logging
import sys
from pathlib import Path
from typing import IO, Any

__all__ = ["LOGGER_NAME", "JsonLinesFormatter", "configure", "get_logger"]

#: Root of the library's logger hierarchy.
LOGGER_NAME = "repro"

#: Handlers installed by :func:`configure`, removed on reconfiguration so
#: repeated calls (tests, long-lived embedding processes) never stack
#: duplicate handlers.
_installed: list[logging.Handler] = []


def _json_safe(value: Any) -> Any:
    """Recursively coerce ``value`` into strictly valid JSON.

    ``json.dumps`` happily emits ``NaN``/``Infinity`` (invalid JSON that
    downstream parsers reject) and raises on unknown types; log emission
    must do neither, so non-finite floats become strings and anything
    unencodable falls back to ``repr``.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


class JsonLinesFormatter(logging.Formatter):
    """Format records as one JSON document per line.

    Standard fields: ``ts`` (epoch seconds), ``level``, ``logger``,
    ``message``; any dict passed as ``extra={"obs": {...}}`` is merged in,
    and exception info is rendered under ``exc_info``.  When the record is
    emitted inside a request scope (:mod:`repro.obs.context`), the line is
    stamped with that request's ``request_id`` and ``trace_id`` so log
    lines join up with metrics exemplars and flight-recorder entries.
    Values that are not JSON-serialisable (or are non-finite floats) are
    coerced rather than raised on — a log call must never take down the
    caller.
    """

    def format(self, record: logging.LogRecord) -> str:
        """Render one record as a single-line JSON document."""
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        # Imported here: repro.obs.context pulls in trace machinery that
        # must not become a hard import dependency of basic logging setup.
        from repro.obs import context as obs_context

        ctx = obs_context.current()
        if ctx is not None:
            payload["request_id"] = ctx.request_id
            payload["trace_id"] = ctx.trace_id
        structured = getattr(record, "obs", None)
        if isinstance(structured, dict):
            payload.update(structured)
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(_json_safe(payload), default=repr, allow_nan=False)


def configure(
    level: int | str = "WARNING",
    *,
    json_path: str | Path | None = None,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger; idempotent.

    Parameters
    ----------
    level:
        Threshold for the plain-text console handler (name or number).
    json_path:
        When given, also append JSON-lines records (at INFO and above,
        regardless of the console level) to this file.
    stream:
        Console destination; defaults to ``sys.stderr``.

    Returns the configured ``repro`` logger.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    logger = logging.getLogger(LOGGER_NAME)
    for handler in _installed:
        logger.removeHandler(handler)
        handler.close()
    _installed.clear()

    console = logging.StreamHandler(stream if stream is not None else sys.stderr)
    console.setLevel(level)
    console.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    logger.addHandler(console)
    _installed.append(console)

    if json_path is not None:
        file_handler = logging.FileHandler(Path(json_path), encoding="utf-8")
        file_handler.setLevel(min(level, logging.INFO))
        file_handler.setFormatter(JsonLinesFormatter())
        logger.addHandler(file_handler)
        _installed.append(file_handler)

    # The logger itself passes everything any handler might want; the
    # handlers apply their own thresholds.
    logger.setLevel(min(level, logging.INFO))
    logger.propagate = False
    return logger


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if name is None:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")
