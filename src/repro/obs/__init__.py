"""Observability spine: tracing, metrics, logging, profiling, reporting.

``repro.obs`` is the shared instrumentation layer the model, experiment,
recommender, CLI and benchmark code all report through:

* :mod:`repro.obs.trace` — hierarchical spans with wall/CPU time and
  counters (``exp.<figure>.<stage>``, ``model.<name>.<method>``);
* :mod:`repro.obs.metrics` — named counter/gauge/histogram registry with
  snapshot/reset and JSON export;
* :mod:`repro.obs.logging` — structured logging (plain text + JSON lines);
* :mod:`repro.obs.instrument` — decorators and the ``GenerativeModel``
  mixin that auto-spans every model's core methods;
* :mod:`repro.obs.profile` — opt-in cProfile top-N hot-function capture;
* :mod:`repro.obs.report` — the span-tree/metrics/profile timing report.

Everything is **off by default** and the disabled paths cost a single flag
check, so production code keeps its instrumentation permanently in place.
Turn it on with :func:`enable_all` (the CLI's ``--trace`` does this) and
collect with :func:`repro.obs.report.timing_report`.
"""

from __future__ import annotations

from repro.obs import instrument, metrics, profile, report, trace
from repro.obs.instrument import InstrumentedModel, traced
from repro.obs.logging import JsonLinesFormatter, configure as configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.report import render_json, render_text, timing_report
from repro.obs.trace import Span, add_counter, current_span, span

__all__ = [
    # submodules
    "trace",
    "metrics",
    "instrument",
    "profile",
    "report",
    # tracing
    "Span",
    "span",
    "current_span",
    "add_counter",
    # metrics
    "MetricsRegistry",
    "get_registry",
    # logging
    "JsonLinesFormatter",
    "configure_logging",
    "get_logger",
    # instrumentation
    "InstrumentedModel",
    "traced",
    # reporting
    "render_text",
    "render_json",
    "timing_report",
    # lifecycle
    "enable_all",
    "disable_all",
    "reset_all",
]


def enable_all() -> None:
    """Enable tracing and metrics together (profiling stays opt-in)."""
    trace.enable()
    metrics.enable()


def disable_all() -> None:
    """Disable tracing, metrics and profiling."""
    trace.disable()
    metrics.disable()
    profile.disable()


def reset_all() -> None:
    """Drop all recorded spans, metrics and profile captures."""
    trace.reset()
    metrics.reset()
    profile.reset()
