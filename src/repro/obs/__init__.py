"""Observability spine: tracing, metrics, logging, profiling, reporting.

``repro.obs`` is the shared instrumentation layer the model, experiment,
recommender, CLI and benchmark code all report through:

* :mod:`repro.obs.trace` — hierarchical spans with wall/CPU time and
  counters (``exp.<figure>.<stage>``, ``model.<name>.<method>``);
* :mod:`repro.obs.metrics` — named counter/gauge/histogram registry with
  snapshot/reset and JSON export;
* :mod:`repro.obs.logging` — structured logging (plain text + JSON lines);
* :mod:`repro.obs.instrument` — decorators and the ``GenerativeModel``
  mixin that auto-spans every model's core methods;
* :mod:`repro.obs.profile` — opt-in cProfile capture + the sampling
  wall-clock profiler for live services;
* :mod:`repro.obs.report` — the span-tree/metrics/profile timing report;
* :mod:`repro.obs.context` — request scopes: ``request_id``/``trace_id``
  minting plus per-request span capture;
* :mod:`repro.obs.prom` — Prometheus/OpenMetrics text exposition and a
  strict parser for CI validation;
* :mod:`repro.obs.slo` — multi-window burn-rate SLO monitoring;
* :mod:`repro.obs.flight` — the flight recorder of slowest/failed
  requests;
* :mod:`repro.obs.top` — the ``repro obs top`` terminal dashboard.

Everything is **off by default** and the disabled paths cost a single flag
check, so production code keeps its instrumentation permanently in place.
Turn it on with :func:`enable_all` (the CLI's ``--trace`` does this) and
collect with :func:`repro.obs.report.timing_report`.
"""

from __future__ import annotations

from repro.obs import context, flight, instrument, metrics, profile, prom, report, slo, top, trace
from repro.obs.context import RequestContext, current_request_id, request_scope
from repro.obs.flight import FlightRecorder
from repro.obs.instrument import InstrumentedModel, traced
from repro.obs.logging import JsonLinesFormatter, configure as configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.report import render_json, render_text, timing_report
from repro.obs.slo import Objective, SLOMonitor
from repro.obs.trace import Span, TraceBuffer, add_counter, current_span, span

__all__ = [
    # submodules
    "trace",
    "metrics",
    "instrument",
    "profile",
    "report",
    "context",
    "flight",
    "prom",
    "slo",
    "top",
    # tracing
    "Span",
    "TraceBuffer",
    "span",
    "current_span",
    "add_counter",
    # request context
    "RequestContext",
    "request_scope",
    "current_request_id",
    # metrics
    "MetricsRegistry",
    "get_registry",
    # SLOs + flight recorder
    "Objective",
    "SLOMonitor",
    "FlightRecorder",
    # logging
    "JsonLinesFormatter",
    "configure_logging",
    "get_logger",
    # instrumentation
    "InstrumentedModel",
    "traced",
    # reporting
    "render_text",
    "render_json",
    "timing_report",
    # lifecycle
    "enable_all",
    "disable_all",
    "reset_all",
]


def enable_all() -> None:
    """Enable tracing and metrics together (profiling stays opt-in)."""
    trace.enable()
    metrics.enable()


def disable_all() -> None:
    """Disable tracing, metrics and profiling."""
    trace.disable()
    metrics.disable()
    profile.disable()


def reset_all() -> None:
    """Drop all recorded spans, metrics and profile captures."""
    trace.reset()
    metrics.reset()
    profile.reset()
